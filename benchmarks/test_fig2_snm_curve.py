"""Benchmark: reproduce Fig. 2b (SNM degradation vs duty-cycle)."""

from conftest import run_once

from repro.experiments.fig2 import render_fig2, run_fig2_snm_curve


def test_fig2b_snm_degradation_curve(benchmark, record_result):
    rows = run_once(benchmark, run_fig2_snm_curve, 41)
    degradation = [row["snm_degradation_percent"] for row in rows]

    # The curve is U-shaped with the paper's anchor values: 10.82% at a 50%
    # duty-cycle and 26.12% at the extremes.
    assert abs(min(degradation) - 10.82) < 1e-6
    assert abs(degradation[0] - 26.12) < 1e-6
    assert abs(degradation[-1] - 26.12) < 1e-6
    assert degradation.index(min(degradation)) == len(rows) // 2
    # Monotonically decreasing to the middle, then increasing.
    middle = len(rows) // 2
    assert all(a >= b for a, b in zip(degradation[:middle], degradation[1:middle + 1]))
    assert all(a <= b for a, b in zip(degradation[middle:-1], degradation[middle + 1:]))

    record_result("fig2b", render_fig2(21), rows)
