"""Ablation benchmarks: enable-bit granularity, inversion aliasing and the
device-model dependence of the conclusions."""

from conftest import run_once

from repro.experiments.ablations import (
    run_device_model_comparison,
    run_enable_granularity_sweep,
    run_inversion_granularity_comparison,
)
from repro.utils.tables import AsciiTable


def test_ablation_enable_granularity(benchmark, record_result):
    """One enable bit per 64-bit transfer is enough: aging stays near-minimal
    while the metadata overhead drops by the group factor."""
    results = run_once(benchmark, run_enable_granularity_sweep,
                       "alexnet", "int8_symmetric", (1, 2, 8, 64))
    sizes = sorted(results)
    means = [results[size]["mean_snm_degradation_percent"] for size in sizes]
    overheads = [results[size]["metadata_bits_per_word"] for size in sizes]
    assert max(means) - min(means) < 1.0          # aging quality barely changes
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[-1] < overheads[0] / 32

    table = AsciiTable(["words per enable", "mean SNM deg. [%]", "metadata bits/word"],
                       title="Ablation — enable-signal granularity")
    for size in sizes:
        table.add_row([size, results[size]["mean_snm_degradation_percent"],
                       results[size]["metadata_bits_per_word"]])
    record_result("ablation_enable_granularity", table.render(), results)


def test_ablation_inversion_aliasing(benchmark, record_result):
    """The classic inversion scheme only works when its toggle actually
    alternates per memory location; the realistic write-stream toggle aliases
    with the periodic DNN weight stream (Sec. III-B discussion)."""
    results = run_once(benchmark, run_inversion_granularity_comparison, "alexnet", "float32")
    assert (results["location"]["mean_snm_degradation_percent"]
            <= results["write"]["mean_snm_degradation_percent"] + 1e-9)
    assert (results["location"]["percent_cells_at_worst"]
            <= results["write"]["percent_cells_at_worst"] + 1e-9)

    table = AsciiTable(["inversion granularity", "mean SNM deg. [%]", "% cells at worst"],
                       title="Ablation — periodic-inversion aliasing (float32 AlexNet)")
    for granularity, entry in results.items():
        table.add_row([granularity, entry["mean_snm_degradation_percent"],
                       entry["percent_cells_at_worst"]])
    record_result("ablation_inversion_aliasing", table.render(), results)


def test_ablation_device_model_independence(benchmark, record_result):
    """The policy ranking holds under a different device aging model,
    supporting the paper's claim that DNN-Life is orthogonal to it."""
    results = run_once(benchmark, run_device_model_comparison)
    for model_name, per_policy in results.items():
        assert (per_policy["dnn_life"]["mean_snm_degradation_percent"]
                < per_policy["none"]["mean_snm_degradation_percent"]), model_name

    table = AsciiTable(["device model", "policy", "mean SNM deg. [%]"],
                       title="Ablation — device-model independence")
    for model_name, per_policy in results.items():
        for policy_name, entry in per_policy.items():
            table.add_row([model_name, policy_name, entry["mean_snm_degradation_percent"]])
    record_result("ablation_device_model", table.render(), results)
