"""Benchmark: reproduce Fig. 9 (SNM-degradation histograms of the baseline
accelerator's 512 KB weight memory running AlexNet, for three data formats and
six mitigation configurations)."""

import pytest

from conftest import run_once

from repro.aging.snm import BEST_SNM_DEGRADATION_PERCENT, WORST_SNM_DEGRADATION_PERCENT
from repro.experiments.fig9 import fig9_headline_claims, render_fig9, run_fig9_baseline_alexnet


def _mean(per_policy, label):
    return per_policy[label]["summary"]["mean_snm_degradation_percent"]


@pytest.mark.slow
def test_fig9_baseline_accelerator_alexnet(benchmark, record_result):
    results = run_once(benchmark, run_fig9_baseline_alexnet)
    claims = fig9_headline_claims(results)

    labels = list(next(iter(results.values())))
    dnn_life_balanced = [l for l in labels if "bias=0.7" in l and "without" not in l][0]
    dnn_life_unbalanced = [l for l in labels if "bias=0.7" in l and "without" in l][0]
    dnn_life_ideal = [l for l in labels if "bias=0.5" in l][0]

    for format_name, per_policy in results.items():
        best = BEST_SNM_DEGRADATION_PERCENT
        worst = WORST_SNM_DEGRADATION_PERCENT

        # (8)-(10): DNN-Life with bias balancing drives every cell close to
        # the minimal degradation for every data representation format.
        assert _mean(per_policy, dnn_life_balanced) < best + 2.0
        assert per_policy[dnn_life_balanced]["summary"]["max_snm_degradation_percent"] < worst - 5
        assert _mean(per_policy, dnn_life_ideal) < best + 2.0

        # (11) vs (8): a biased TRBG without bias balancing mitigates less.
        assert _mean(per_policy, dnn_life_unbalanced) > _mean(per_policy, dnn_life_balanced)

        # DNN-Life is never worse than any of the classic schemes.
        assert _mean(per_policy, dnn_life_balanced) <= _mean(per_policy, "none") + 1e-9
        assert _mean(per_policy, dnn_life_balanced) <= _mean(per_policy, "inversion") + 1e-9
        assert _mean(per_policy, dnn_life_balanced) <= _mean(per_policy, "barrel shifter") + 1e-9

    # (2): for the float32 representation the classic inversion scheme leaves
    # a tail of cells at the highest degradation level (the biased exponent
    # bit columns), unlike DNN-Life.
    fp32 = results["float32"]
    assert fp32["inversion"]["summary"]["percent_cells_near_worst"] > 1.0
    assert fp32[dnn_life_balanced]["summary"]["percent_cells_near_worst"] < 0.5

    # Without any mitigation the float32 memory ages significantly more than
    # the symmetric int8 memory (whose bit distribution is nearly balanced).
    assert (_mean(results["float32"], "none")
            > _mean(results["int8_symmetric"], "none"))

    record_result("fig9", render_fig9(), {"claims": claims, "results": results})
