"""Throughput micro-benchmarks of the simulation engines and transducers.

Unlike the figure/table benchmarks (which run once and validate the
reproduction), these measure steady-state throughput of the performance-
critical kernels, so pytest-benchmark's statistics are meaningful here.
"""

import numpy as np
import pytest

from repro.core.encoder import WriteDataEncoder
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy, PeriodicInversionPolicy
from repro.core.simulation import AgingSimulator
from repro.quantization.bitops import unpack_bits
from repro.quantization.formats import get_format


@pytest.fixture(scope="module")
def block_words():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=65536, dtype=np.uint64)


def test_throughput_wde_encode(benchmark, block_words):
    encoder = WriteDataEncoder(8)
    enables = np.random.default_rng(1).integers(0, 2, size=block_words.size, dtype=np.uint8)
    result = benchmark(encoder.encode, block_words, enables)
    assert result.size == block_words.size


def test_throughput_unpack_bits(benchmark, block_words):
    result = benchmark(unpack_bits, block_words, 8)
    assert result.shape == (block_words.size, 8)


def test_throughput_policy_encode_dnn_life(benchmark, block_words):
    policy = DnnLifePolicy(8, seed=0)
    encoded, metadata = benchmark(policy.encode_block, block_words, 0)
    assert np.array_equal(policy.decode_block(encoded, metadata), block_words)


def test_throughput_policy_encode_inversion(benchmark, block_words):
    policy = PeriodicInversionPolicy(8)
    encoded, metadata = benchmark(policy.encode_block, block_words, 0)
    assert encoded.size == block_words.size


def test_throughput_quantization_int8(benchmark):
    values = np.random.default_rng(2).normal(size=1_000_000).astype(np.float32) * 0.05
    data_format = get_format("int8_symmetric")
    words = benchmark(data_format.to_words, values)
    assert words.size == values.size


def test_throughput_fast_aging_simulator(benchmark, tiny_scheduler_factory):
    scheduler = tiny_scheduler_factory()
    simulator = AgingSimulator(scheduler, NoMitigationPolicy(), num_inferences=100, seed=0)
    result = benchmark(simulator.run)
    assert result.duty_cycles.shape[0] == scheduler.geometry.rows


@pytest.fixture(scope="module")
def tiny_scheduler_factory():
    from repro.accelerator.baseline import BaselineAccelerator
    from repro.accelerator.config import AcceleratorConfig
    from repro.nn.models import custom_mnist_cnn
    from repro.nn.weights import attach_synthetic_weights

    def build():
        network = attach_synthetic_weights(custom_mnist_cnn(), seed=0)
        config = AcceleratorConfig(name="bench", weight_memory_bytes=32 * 1024,
                                   activation_memory_bytes=1024 * 1024,
                                   num_pes=8, multipliers_per_pe=8)
        return BaselineAccelerator(config=config).build_scheduler(network, "int8_symmetric")

    return build
