"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
timing recorded by pytest-benchmark, each benchmark:

* prints the reproduced rows/series (visible with ``pytest -s``);
* writes the rendered text and the machine-readable JSON result to
  ``results/`` so the reproduction can be inspected after the run.

Benchmarks run the *quick* experiment configuration by default (reduced
networks, 20 inference epochs) so the whole suite finishes in a few minutes;
set ``REPRO_FULL_EXPERIMENTS=1`` to run the paper-scale configurations.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.utils.serialization import save_json

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendered text and JSON payload to results/."""

    def _record(name: str, rendered: str, payload=None) -> None:
        text_path = results_dir / f"{name}.txt"
        text_path.write_text(rendered + "\n", encoding="utf-8")
        if payload is not None:
            save_json(payload, results_dir / f"{name}.json")
        print(f"\n{rendered}\n[written to {text_path}]")

    return _record


def run_once(benchmark, function, *args, **kwargs):
    """Run a (potentially expensive) experiment exactly once under timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
