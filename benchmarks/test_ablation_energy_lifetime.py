"""Ablation benchmarks: per-inference energy overhead and lifetime extension."""

import pytest

from conftest import run_once

from repro.analysis.energy import energy_overhead_table
from repro.core.framework import DnnLife
from repro.experiments.ablations import run_energy_overhead_ablation, run_lifetime_improvement
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.utils.tables import AsciiTable


@pytest.mark.slow
def test_ablation_energy_overhead(benchmark, record_result):
    """DNN-Life's per-inference energy overhead stays in the low single-digit
    percent range of the weight-memory traffic, far below the barrel shifter."""
    report = run_once(benchmark, run_energy_overhead_ablation, "alexnet", "int8_symmetric", 10)

    assert report["dnn_life"]["overhead_percent_of_memory_energy"] < 5.0
    assert (report["dnn_life"]["overhead_percent_of_memory_energy"]
            < report["barrel_shifter"]["overhead_percent_of_memory_energy"] * 2)
    assert (report["dnn_life"]["transducer_energy_joules"]
            < report["barrel_shifter"]["transducer_energy_joules"])
    assert report["none"]["total_overhead_joules"] < report["dnn_life"]["total_overhead_joules"]

    network = attach_synthetic_weights(build_model("alexnet"), seed=0)
    framework = DnnLife(network, data_format="int8_symmetric", num_inferences=10, seed=0)
    record_result("ablation_energy_overhead", energy_overhead_table(framework).render(), report)


@pytest.mark.slow
def test_ablation_lifetime_improvement(benchmark, record_result):
    """Balancing the duty-cycle translates into a large lifetime extension at a
    fixed SNM-degradation budget (the t^(1/6) NBTI time dependence)."""
    result = run_once(benchmark, run_lifetime_improvement, "alexnet", "float32")

    assert result["dnn_life_lifetime_years"] > result["baseline_lifetime_years"]
    assert result["lifetime_improvement_factor"] > 5.0

    table = AsciiTable(["metric", "value"],
                       title="Ablation — weight-memory lifetime at a 15% SNM budget")
    for key, value in result.items():
        table.add_row([key, value])
    record_result("ablation_lifetime", table.render(), result)
