"""Benchmark: reproduce Fig. 11 (SNM-degradation histograms of the TPU-like
NPU's weight FIFO running AlexNet, VGG-16 and the custom MNIST network)."""

import pytest

from conftest import run_once

from repro.aging.snm import BEST_SNM_DEGRADATION_PERCENT, WORST_SNM_DEGRADATION_PERCENT
from repro.experiments.fig11 import fig11_headline_claims, render_fig11, run_fig11_tpu_networks


@pytest.mark.slow
def test_fig11_tpu_like_npu(benchmark, record_result):
    results = run_once(benchmark, run_fig11_tpu_networks)
    claims = fig11_headline_claims(results)

    best = BEST_SNM_DEGRADATION_PERCENT
    worst = WORST_SNM_DEGRADATION_PERCENT

    for network_name, per_network in claims.items():
        # (7)-(9): DNN-Life with bias balancing achieves near-minimal
        # degradation for every network and is the best policy overall.
        assert per_network["dnn_life_mean"] < best + 2.5
        assert per_network["dnn_life_is_best"]

    # (1)-(2): for the large networks (many FIFO tiles per inference) the
    # classic inversion scheme looks acceptable...
    assert claims["alexnet"]["inversion_mean"] < best + 4.0
    assert claims["vgg16"]["inversion_mean"] < best + 4.0
    # (3): ...but it collapses on the small custom network, whose weights
    # occupy the FIFO without ever rotating: almost every cell ends up at the
    # worst degradation level.
    assert claims["custom_mnist"]["inversion_mean"] > worst - 2.0
    assert claims["custom_mnist"]["no_mitigation_mean"] > worst - 2.0

    # (4)-(6): the barrel shifter is sub-optimal on the custom network too.
    assert (claims["custom_mnist"]["barrel_shifter_mean"]
            > claims["custom_mnist"]["dnn_life_mean"])

    record_result("fig11", render_fig11(), {"claims": claims, "results": results})
