"""Benchmark: reproduce Fig. 6 (weight-bit distributions of AlexNet / VGG-16
under float32, int8-symmetric and int8-asymmetric representations)."""

import pytest

from conftest import run_once

from repro.experiments.fig6 import render_fig6, run_fig6_bit_distributions


@pytest.mark.slow
def test_fig6_bit_distributions(benchmark, record_result):
    results = run_once(benchmark, run_fig6_bit_distributions)

    for network_name, per_format in results.items():
        float32 = per_format["float32"]
        symmetric = per_format["int8_symmetric"]
        asymmetric = per_format["int8_asymmetric"]

        # Observation 1 (paper Sec. III-A): low (mantissa) bit-locations of the
        # float32 representation sit near probability 0.5, while the upper
        # exponent bit-locations are strongly biased.
        assert abs(float32.probabilities[0] - 0.5) < 0.1
        assert abs(float32.probabilities[5] - 0.5) < 0.1
        assert float32.probabilities[30] < 0.05          # exponent MSB ~ never 1
        assert float32.max_deviation_from_half > 0.4

        # Observation 2: only the symmetric 8-bit representation comes close to
        # a balanced distribution at every bit-location.
        assert symmetric.max_deviation_from_half < float32.max_deviation_from_half
        assert symmetric.max_deviation_from_half < asymmetric.max_deviation_from_half + 0.05

        # Observation 3: the *average* probability of a '1' is not guaranteed
        # to be 0.5 either; the asymmetric representation deviates the most.
        assert abs(symmetric.average_probability - 0.5) < 0.12
        assert (abs(asymmetric.average_probability - 0.5)
                >= abs(symmetric.average_probability - 0.5) - 0.02)

    payload = {
        network: {fmt: result.probabilities.tolist() for fmt, result in per_format.items()}
        for network, per_format in results.items()
    }
    record_result("fig6", render_fig6(), payload)
