"""Benchmark: reproduce Fig. 7 (probabilistic duty-cycle model, Eq. 1)."""

from conftest import run_once

from repro.experiments.fig7 import (
    render_fig7,
    run_fig7_case_study,
    run_fig7_probabilistic_model,
)


def test_fig7_tail_probability_curves(benchmark, record_result):
    results = run_once(benchmark, run_fig7_probabilistic_model, 0.5)

    k20 = {round(row["b_over_k"], 3): row["probability"] for row in results[20]}
    k160 = {round(row["b_over_k"], 3): row["probability"] for row in results[160]}

    # Paper annotation (a): P > 0.1 at b/K = 0.3 for K = 20.
    assert k20[0.3] > 0.1
    # Paper annotation (b): the probability collapses once K grows to 160.
    assert k160[0.3] < 1e-3
    # Both curves are monotone in b/K and end at exactly 1 at b/K = 0.5.
    assert k20[0.5] == 1.0 and k160[0.5] == 1.0
    for curve in (results[20], results[160]):
        probabilities = [row["probability"] for row in curve]
        assert all(a <= b + 1e-12 for a, b in zip(probabilities, probabilities[1:]))
    # For every common b/K value below 0.5, K = 160 is at most K = 20.
    for key, value in k160.items():
        if key in k20 and key < 0.5:
            assert value <= k20[key] + 1e-12

    record_result("fig7", render_fig7(), {"curves": results,
                                          "case_study": run_fig7_case_study()})
