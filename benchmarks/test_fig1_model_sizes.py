"""Benchmark: reproduce Fig. 1 (model size/accuracy and access energy)."""

from conftest import run_once

from repro.experiments.fig1 import render_fig1, run_fig1_access_energy, run_fig1_model_comparison


def test_fig1a_model_size_accuracy(benchmark, record_result):
    rows = run_once(benchmark, run_fig1_model_comparison)
    by_name = {row["network"]: row for row in rows}

    # Shape of the paper's Fig. 1a: VGG-16 is the largest model by far,
    # GoogLeNet the smallest; accuracy increases from AlexNet to ResNet-152.
    assert by_name["vgg16"]["size_mb_float32"] > 500
    assert by_name["alexnet"]["size_mb_float32"] > 200
    assert by_name["googlenet"]["size_mb_float32"] < 40
    assert (by_name["resnet152"]["top5_accuracy_percent"]
            > by_name["vgg16"]["top5_accuracy_percent"]
            > by_name["alexnet"]["top5_accuracy_percent"])

    record_result("fig1", render_fig1(),
                  {"fig1a": rows, "fig1b": run_fig1_access_energy()})


def test_fig1b_access_energy(benchmark, record_result):
    energy = run_once(benchmark, run_fig1_access_energy)
    # DRAM accesses cost roughly two orders of magnitude more energy than a
    # small on-chip SRAM access (the motivation for large on-chip buffers).
    assert energy["dram_to_sram_ratio"] > 50
    record_result("fig1b_access_energy", str(energy), energy)
