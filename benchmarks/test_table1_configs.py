"""Benchmark: reproduce Table I (hardware configurations used in evaluation)."""

from conftest import run_once

from repro.experiments.table1 import render_table1, run_table1_configurations


def test_table1_hardware_configurations(benchmark, record_result):
    rows = run_once(benchmark, run_table1_configurations)
    by_name = {row["name"]: row for row in rows}

    baseline = by_name["baseline"]
    assert baseline["weight_memory_KB"] == 512
    assert baseline["activation_memory_MB"] == 4
    assert baseline["num_pes"] == 8 and baseline["multipliers_per_pe"] == 8
    assert baseline["networks"] == ["alexnet"]

    tpu = by_name["tpu_like_npu"]
    assert tpu["weight_memory_KB"] == 256
    assert tpu["activation_memory_MB"] == 24
    assert tpu["parallel_filters_f"] == 256
    assert tpu["macs_per_cycle"] == 256 * 256
    assert set(tpu["networks"]) == {"alexnet", "vgg16", "custom_mnist"}

    record_result("table1", render_table1(), rows)
