"""Ablation benchmark: TRBG bias tolerance and the bias-balancing register."""

import pytest

from conftest import run_once

from repro.aging.snm import BEST_SNM_DEGRADATION_PERCENT
from repro.experiments.ablations import run_balance_register_sweep, run_bias_sweep
from repro.utils.tables import AsciiTable


@pytest.mark.slow
def test_ablation_trbg_bias_without_balancing(benchmark, record_result):
    """Without bias balancing, aging mitigation degrades as the TRBG drifts."""
    results = run_once(benchmark, run_bias_sweep,
                       "alexnet", "int8_asymmetric", (0.5, 0.6, 0.7, 0.8, 0.9), False)
    means = [results[bias]["mean_snm_degradation_percent"] for bias in sorted(results)]
    # Monotone degradation with increasing bias; 0.5 is near-optimal.
    assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
    assert means[0] < BEST_SNM_DEGRADATION_PERCENT + 2.0
    assert means[-1] > means[0] + 2.0

    table = AsciiTable(["TRBG bias", "mean SNM deg. [%]", "max SNM deg. [%]"],
                       title="Ablation — TRBG bias without bias balancing")
    for bias in sorted(results):
        table.add_row([bias, results[bias]["mean_snm_degradation_percent"],
                       results[bias]["max_snm_degradation_percent"]])
    record_result("ablation_trbg_bias", table.render(), results)


@pytest.mark.slow
def test_ablation_balance_register_size(benchmark, record_result):
    """Any reasonably sized bias-balancing register recovers a biased TRBG."""
    results = run_once(benchmark, run_balance_register_sweep,
                       "alexnet", "int8_symmetric", (1, 2, 4, 8), 0.7)
    for bits, entry in results.items():
        assert entry["mean_snm_degradation_percent"] < BEST_SNM_DEGRADATION_PERCENT + 2.5, bits

    table = AsciiTable(["register bits M", "mean SNM deg. [%]", "max SNM deg. [%]"],
                       title="Ablation — bias-balancing register size (TRBG bias = 0.7)")
    for bits in sorted(results):
        table.add_row([bits, results[bits]["mean_snm_degradation_percent"],
                       results[bits]["max_snm_degradation_percent"]])
    record_result("ablation_balance_register", table.render(), results)
