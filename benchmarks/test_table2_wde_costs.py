"""Benchmark: reproduce Table II (delay/power/area of the three 64-bit WDEs)."""

from conftest import run_once

from repro.experiments.table2 import render_table2, run_table2_wde_costs, table2_relative_costs


def test_table2_wde_hardware_costs(benchmark, record_result):
    rows = run_once(benchmark, run_table2_wde_costs)
    by_design = {row["design"]: row for row in rows}
    barrel = by_design["Barrel Shifter based WDE"]
    inversion = by_design["Inversion based WDE"]
    proposed = by_design["Proposed WDE with Aging Mitigation Controller"]

    # Shape of Table II: the barrel-shifter WDE is one to two orders of
    # magnitude more expensive than the XOR-based designs in both area and
    # power, and it has the longest critical path; the proposed WDE adds only
    # a small controller on top of the inversion WDE.
    assert barrel["area_cell_units"] / inversion["area_cell_units"] > 20
    assert barrel["power_nw"] / inversion["power_nw"] > 10
    assert barrel["delay_ps"] > inversion["delay_ps"]
    assert barrel["delay_ps"] > proposed["delay_ps"]
    assert 1.0 < proposed["area_cell_units"] / inversion["area_cell_units"] < 2.0
    assert 1.0 < proposed["power_nw"] / inversion["power_nw"] < 2.0

    # Absolute areas land within ~3x of the paper's synthesis results.
    for row in rows:
        assert row["paper_area_cell_units"] / 3 < row["area_cell_units"] \
            < row["paper_area_cell_units"] * 3

    # Relative costs track the paper's ratios.
    relative = table2_relative_costs()
    barrel_rel = relative["Barrel Shifter based WDE"]
    assert barrel_rel["area_vs_inversion"] > 0.5 * barrel_rel["paper_area_vs_inversion"]

    record_result("table2", render_table2(), rows)
