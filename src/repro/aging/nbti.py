"""Device-level NBTI threshold-voltage shift model.

Negative Bias Temperature Instability gradually increases the threshold
voltage of a PMOS transistor while it is under negative gate-to-source bias
(for a 6T-SRAM pull-up: while the cell node it drives stores the corresponding
value).  Removing the stress partially anneals the damage, which is why the
*long-term average* stress fraction (the cell duty-cycle) is what matters
(Abella et al., "Penelope: the NBTI-aware processor").

The model implemented here is the standard long-term reaction–diffusion form

    dVth(t) = A * exp(-Ea / (k * T)) * (alpha * t) ** n

with ``alpha`` the stress (duty-cycle) fraction, ``n ~ 1/6`` and an Arrhenius
temperature acceleration term.  It exists for two purposes:

* it provides a *physics-style* alternative backend for the duty-cycle → SNM
  mapping (:class:`ReactionDiffusionSnmModel`), demonstrating that the
  DNN-Life framework is agnostic to the device model, exactly as the paper
  claims;
* its ΔVth output feeds the lifetime/guard-band estimator.

Absolute values are calibrated against the paper's worst-case anchor
(26.12% SNM degradation after 7 years at 100% stress).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.snm import (
    REFERENCE_LIFETIME_YEARS,
    WORST_SNM_DEGRADATION_PERCENT,
    SnmDegradationModel,
)
from repro.utils.units import years_to_seconds
from repro.utils.validation import check_in_range, check_positive

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5


@dataclass(frozen=True)
class NbtiDeviceModel:
    """Long-term NBTI ΔVth model for one PMOS transistor.

    Attributes
    ----------
    prefactor_volts:
        Technology-dependent prefactor ``A`` (calibrated so that 7 years of
        continuous stress at the nominal temperature gives ``reference_dvth``).
    activation_energy_ev:
        Arrhenius activation energy (typically ~0.1 eV for NBTI).
    time_exponent:
        The ``n`` in ``t**n`` (reaction–diffusion predicts 1/6).
    temperature_kelvin:
        Nominal operating temperature.
    """

    activation_energy_ev: float = 0.1
    time_exponent: float = 1.0 / 6.0
    temperature_kelvin: float = 358.15  # 85 C, typical worst-case operating corner
    reference_dvth_volts: float = 0.05  # ~50 mV after 7 years of continuous stress
    reference_years: float = REFERENCE_LIFETIME_YEARS

    def __post_init__(self) -> None:
        check_positive(self.time_exponent, "time_exponent")
        check_positive(self.temperature_kelvin, "temperature_kelvin")
        check_positive(self.reference_dvth_volts, "reference_dvth_volts")

    def _arrhenius(self, temperature_kelvin: float) -> float:
        return float(np.exp(-self.activation_energy_ev / (BOLTZMANN_EV * temperature_kelvin)))

    @property
    def prefactor_volts(self) -> float:
        """Prefactor ``A`` solved from the reference point."""
        seconds = years_to_seconds(self.reference_years)
        return self.reference_dvth_volts / (
            self._arrhenius(self.temperature_kelvin) * seconds ** self.time_exponent
        )

    def delta_vth(self, stress_fraction: np.ndarray, years: float,
                  temperature_kelvin: float = None) -> np.ndarray:
        """Threshold-voltage shift (volts) after ``years`` at the given stress.

        ``stress_fraction`` is the long-term fraction of time the transistor
        is under negative bias (the cell duty-cycle for P1, its complement for
        P2).
        """
        stress = np.asarray(stress_fraction, dtype=np.float64)
        if np.any((stress < -1e-12) | (stress > 1.0 + 1e-12)):
            raise ValueError("stress_fraction must lie within [0, 1]")
        stress = np.clip(stress, 0.0, 1.0)
        check_in_range(years, "years", low=0.0)
        temperature = temperature_kelvin or self.temperature_kelvin
        seconds = years_to_seconds(years)
        effective_time = stress * seconds
        return (self.prefactor_volts * self._arrhenius(temperature)
                * np.power(effective_time, self.time_exponent))

    def cell_worst_delta_vth(self, duty_cycle: np.ndarray, years: float) -> np.ndarray:
        """ΔVth of the most-aged PMOS of a 6T cell with the given duty-cycle."""
        duty = np.asarray(duty_cycle, dtype=np.float64)
        return np.maximum(self.delta_vth(duty, years), self.delta_vth(1.0 - duty, years))


@dataclass(frozen=True)
class ReactionDiffusionSnmModel(SnmDegradationModel):
    """SNM degradation derived from the ΔVth of the most-aged PMOS.

    SNM loss is taken proportional to the worst-transistor ΔVth, calibrated so
    that 100% duty-cycle after the reference lifetime matches the paper's
    worst-case anchor.  Note that, unlike :class:`CalibratedSnmModel`, this
    model is *not* forced through the 50%-duty anchor: it illustrates that the
    framework accepts alternative device models, and ablation benchmarks use
    it to show the proposed mitigation conclusions are model-independent.
    """

    device: NbtiDeviceModel = NbtiDeviceModel()
    worst_percent: float = WORST_SNM_DEGRADATION_PERCENT
    reference_years: float = REFERENCE_LIFETIME_YEARS

    def degradation_percent(self, duty_cycle: np.ndarray,
                            years: float = REFERENCE_LIFETIME_YEARS) -> np.ndarray:
        duty = np.asarray(duty_cycle, dtype=np.float64)
        worst_dvth_reference = self.device.delta_vth(np.asarray([1.0]), self.reference_years)[0]
        scale = self.worst_percent / worst_dvth_reference
        return self.device.cell_worst_delta_vth(duty, years) * scale
