"""Effective-stress aggregation across lifetime phases.

The single-stream simulators characterise a memory by *one* duty-cycle per
cell, implicitly assuming the whole lifetime looks like the simulated stream
at one temperature.  A :class:`~repro.scenario.phases.LifetimeScenario`
breaks that assumption: each phase runs a different workload for a different
fraction of the lifetime at its own thermal corner.  This module provides the
aggregation that folds such a timeline back into the quantity every
:class:`~repro.aging.snm.SnmDegradationModel` consumes.

The composition rule follows from the long-term NBTI form used throughout
the repo, ``dVth = A * exp(-Ea/kT) * (duty * t) ** n``: a phase of ``y``
years at temperature ``T`` contributes the same damage as
``y * (arr(T) / arr(T_ref)) ** (1/n)`` years at the reference temperature
(:meth:`ArrheniusTimeScaling.time_factor`), because the Arrhenius prefactor
can be absorbed into the ``t ** n`` power.  Stress-time is therefore additive
in *reference-equivalent* years, and the whole timeline collapses to

* ``effective_years`` — the sum of every phase's equivalent years, and
* ``effective_duty``  — the equivalent-years-weighted mean of the per-phase
  duty-cycles (per cell),

which existing models evaluate unchanged via
``degradation_percent(effective_duty, effective_years)``.  The weighted mean
commutes with the complement (``1 - effective_duty`` aggregates the
complementary duties), so the two PMOS transistors of a 6T cell stay
consistent.  A single phase at the reference temperature degenerates to the
classic ``(duty, years)`` pair bit-for-bit — the weights are normalised
before the blend, so the one-phase blend multiplies by exactly ``1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.aging.nbti import BOLTZMANN_EV
from repro.utils.validation import check_positive, check_temperature_celsius

#: Nominal worst-case operating corner the paper's anchors are stated at.
DEFAULT_REFERENCE_TEMPERATURE_C = 85.0

__all__ = [
    "ArrheniusTimeScaling",
    "PhaseStress",
    "StressTimeline",
    "DEFAULT_REFERENCE_TEMPERATURE_C",
    "aggregate_stress",
    "scaling_for_model",
]


def _celsius_to_kelvin(temperature_c: float) -> float:
    return check_temperature_celsius(temperature_c) + 273.15


@dataclass(frozen=True)
class ArrheniusTimeScaling:
    """Maps phase time at temperature ``T`` to reference-equivalent time.

    ``time_factor(T)`` is the factor by which a year at ``T`` counts towards
    the ``t ** n`` damage power relative to a year at
    ``reference_temperature_c``: ``(arr(T) / arr(T_ref)) ** (1 / n)`` with
    ``arr(T) = exp(-Ea / kT)``.  At the reference temperature the factor is
    exactly ``1.0``, which is what keeps single-phase scenarios bit-identical
    to the classic single-stream accounting.
    """

    activation_energy_ev: float = 0.1
    time_exponent: float = 1.0 / 6.0
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        check_positive(self.time_exponent, "time_exponent")
        _celsius_to_kelvin(self.reference_temperature_c)

    def _arrhenius(self, temperature_c: float) -> float:
        kelvin = _celsius_to_kelvin(temperature_c)
        return float(np.exp(-self.activation_energy_ev / (BOLTZMANN_EV * kelvin)))

    def time_factor(self, temperature_c: float) -> float:
        """Reference-equivalent years contributed by one year at ``temperature_c``."""
        if float(temperature_c) == self.reference_temperature_c:
            return 1.0
        ratio = self._arrhenius(temperature_c) / self._arrhenius(self.reference_temperature_c)
        return float(ratio ** (1.0 / self.time_exponent))

    def describe(self) -> dict:
        """Machine-readable description (serialised into scenario payloads)."""
        return {
            "activation_energy_ev": self.activation_energy_ev,
            "time_exponent": self.time_exponent,
            "reference_temperature_c": self.reference_temperature_c,
        }


@dataclass
class PhaseStress:
    """Per-cell stress contribution of one lifetime phase.

    ``duty`` is the per-cell duty-cycle the phase's workload produced (any
    shape), ``years`` its wall-clock share of the lifetime and
    ``temperature_c`` the thermal corner it ran at.
    """

    duty: np.ndarray
    years: float
    temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    #: Free-form label carried into reports ("phase 2: alexnet/int8").
    label: str = ""

    def __post_init__(self) -> None:
        self.duty = np.asarray(self.duty, dtype=np.float64)
        check_positive(self.years, "years")
        _celsius_to_kelvin(self.temperature_c)


def aggregate_stress(phases: Sequence[PhaseStress],
                     scaling: Optional[ArrheniusTimeScaling] = None
                     ) -> Tuple[np.ndarray, float]:
    """Collapse per-phase ``(duty, years, temperature)`` stress into one pair.

    Returns ``(effective_duty, effective_years)`` such that
    ``model.degradation_percent(effective_duty, effective_years)`` is the
    degradation accumulated over the whole timeline, for any model of the
    ``A * arr(T) * (duty * t) ** n`` family.

    The blend is computed with weights normalised to sum to 1, so a single
    phase at the reference temperature returns its duty array bit-for-bit
    (multiplied by exactly ``1.0``) and ``years`` unchanged.
    """
    phases = list(phases)
    if not phases:
        raise ValueError("aggregate_stress requires at least one phase")
    scaling = scaling or ArrheniusTimeScaling()
    shape = phases[0].duty.shape
    for index, phase in enumerate(phases):
        if phase.duty.shape != shape:
            raise ValueError(
                f"phase {index} duty shape {phase.duty.shape} does not match "
                f"phase 0 shape {shape}; all phases must cover the same cells")
    weights = [phase.years * scaling.time_factor(phase.temperature_c)
               for phase in phases]
    effective_years = float(sum(weights))
    if not effective_years > 0:  # also rejects NaN
        raise ValueError("effective stress-time must be positive")
    effective_duty = (weights[0] / effective_years) * phases[0].duty
    for weight, phase in zip(weights[1:], phases[1:]):
        effective_duty = effective_duty + (weight / effective_years) * phase.duty
    return effective_duty, effective_years


@dataclass
class StressTimeline:
    """Accumulates :class:`PhaseStress` entries and aggregates on demand."""

    scaling: ArrheniusTimeScaling = field(default_factory=ArrheniusTimeScaling)
    phases: List[PhaseStress] = field(default_factory=list)

    def add(self, duty: np.ndarray, years: float,
            temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C,
            label: str = "") -> PhaseStress:
        """Append one phase's stress contribution."""
        phase = PhaseStress(duty=duty, years=years,
                            temperature_c=temperature_c, label=label)
        self.phases.append(phase)
        return phase

    @property
    def wall_years(self) -> float:
        """Wall-clock span of the recorded timeline."""
        return float(sum(phase.years for phase in self.phases))

    def effective(self) -> Tuple[np.ndarray, float]:
        """``(effective_duty, effective_years)`` of the recorded timeline."""
        return aggregate_stress(self.phases, self.scaling)


def scaling_for_model(snm_model) -> ArrheniusTimeScaling:
    """Derive the time scaling consistent with an SNM model's device physics.

    A model exposing a ``device`` (the reaction–diffusion backend) contributes
    its activation energy, time exponent and nominal temperature; otherwise
    the model's ``time_exponent`` (if any) is honoured and the NBTI defaults
    fill the rest, so the calibrated power-law model composes identically to
    the physics-style one.
    """
    device = getattr(snm_model, "device", None)
    if device is not None:
        return ArrheniusTimeScaling(
            activation_energy_ev=float(device.activation_energy_ev),
            time_exponent=float(device.time_exponent),
            reference_temperature_c=float(device.temperature_kelvin) - 273.15,
        )
    return ArrheniusTimeScaling(
        time_exponent=float(getattr(snm_model, "time_exponent", 1.0 / 6.0)))
