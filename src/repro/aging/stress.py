"""Effective-stress aggregation across lifetime phases.

The single-stream simulators characterise a memory by *one* duty-cycle per
cell, implicitly assuming the whole lifetime looks like the simulated stream
at one temperature.  A :class:`~repro.scenario.phases.LifetimeScenario`
breaks that assumption: each phase runs a different workload for a different
fraction of the lifetime at its own thermal corner.  This module provides the
aggregation that folds such a timeline back into the quantity every
:class:`~repro.aging.snm.SnmDegradationModel` consumes.

The composition rule follows from the long-term NBTI form used throughout
the repo, ``dVth = A * exp(-Ea/kT) * (duty * t) ** n``: a phase of ``y``
years at temperature ``T`` contributes the same damage as
``y * (arr(T) / arr(T_ref)) ** (1/n)`` years at the reference temperature
(:meth:`ArrheniusTimeScaling.time_factor`), because the Arrhenius prefactor
can be absorbed into the ``t ** n`` power.  Stress-time is therefore additive
in *reference-equivalent* years, and the whole timeline collapses to

* ``effective_years`` — the sum of every phase's equivalent years, and
* ``effective_duty``  — the equivalent-years-weighted mean of the per-phase
  duty-cycles (per cell),

which existing models evaluate unchanged via
``degradation_percent(effective_duty, effective_years)``.  The weighted mean
commutes with the complement (``1 - effective_duty`` aggregates the
complementary duties), so the two PMOS transistors of a 6T cell stay
consistent.  A single phase at the reference temperature degenerates to the
classic ``(duty, years)`` pair bit-for-bit — the weights are normalised
before the blend, so the one-phase blend multiplies by exactly ``1.0``.

**Voltage (DVFS) composition.**  The same absorption argument extends to the
supply voltage: long-term NBTI carries an exponential voltage-acceleration
prefactor, ``dVth = A * exp(gamma * V) * exp(-Ea/kT) * (duty * t) ** n``, so
a phase running at ``V`` contributes ``(exp(gamma * (V - V_ref))) ** (1/n)``
reference-equivalent years per wall-clock year on top of the thermal factor.
Both factors are exactly ``1.0`` at the reference corner, which keeps every
pre-DVFS scenario bit-identical.  Phases carry their voltage in
:attr:`PhaseStress.voltage_v`; callers that never set it get the reference
corner and the exact legacy weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.aging.nbti import BOLTZMANN_EV
from repro.utils.validation import (
    check_positive,
    check_positive_finite,
    check_temperature_celsius,
)

#: Nominal worst-case operating corner the paper's anchors are stated at.
DEFAULT_REFERENCE_TEMPERATURE_C = 85.0

#: Nominal supply voltage the paper's anchors are stated at (volts).
DEFAULT_REFERENCE_VOLTAGE_V = 0.9

#: Nominal clock the epoch→wall-clock mapping is stated at (GHz).
DEFAULT_REFERENCE_FREQUENCY_GHZ = 1.0

#: Default NBTI voltage-acceleration exponent ``gamma`` (1/V): damage scales
#: as ``exp(gamma * (V - V_ref))`` before the ``t ** n`` absorption.
DEFAULT_VOLTAGE_ACCELERATION_PER_V = 6.0

__all__ = [
    "ArrheniusTimeScaling",
    "PhaseStress",
    "StressTimeline",
    "DEFAULT_REFERENCE_TEMPERATURE_C",
    "DEFAULT_REFERENCE_VOLTAGE_V",
    "DEFAULT_REFERENCE_FREQUENCY_GHZ",
    "DEFAULT_VOLTAGE_ACCELERATION_PER_V",
    "aggregate_stress",
    "scaling_for_model",
]


def _celsius_to_kelvin(temperature_c: float) -> float:
    return check_temperature_celsius(temperature_c) + 273.15


@dataclass(frozen=True)
class ArrheniusTimeScaling:
    """Maps phase time at temperature ``T`` to reference-equivalent time.

    ``time_factor(T, V)`` is the factor by which a year at ``(T, V)`` counts
    towards the ``t ** n`` damage power relative to a year at the reference
    corner: ``(arr(T) / arr(T_ref)) ** (1 / n)`` with ``arr(T) = exp(-Ea /
    kT)``, times the voltage acceleration ``exp(gamma * (V - V_ref)) ** (1 /
    n)``.  Each factor is exactly ``1.0`` at its reference value (the
    computation is skipped entirely, not merely close to one), which is what
    keeps single-phase and pre-DVFS scenarios bit-identical to the classic
    single-stream accounting.
    """

    activation_energy_ev: float = 0.1
    time_exponent: float = 1.0 / 6.0
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    voltage_acceleration_per_v: float = DEFAULT_VOLTAGE_ACCELERATION_PER_V
    reference_voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V

    def __post_init__(self) -> None:
        check_positive(self.time_exponent, "time_exponent")
        _celsius_to_kelvin(self.reference_temperature_c)
        check_positive(self.reference_voltage_v, "reference_voltage_v")
        if not np.isfinite(self.voltage_acceleration_per_v):
            raise ValueError("voltage_acceleration_per_v must be finite")

    def _arrhenius(self, temperature_c: float) -> float:
        kelvin = _celsius_to_kelvin(temperature_c)
        return float(np.exp(-self.activation_energy_ev / (BOLTZMANN_EV * kelvin)))

    def voltage_factor(self, voltage_v: float) -> float:
        """Reference-equivalent years per year at supply ``voltage_v``."""
        voltage = check_positive_finite(voltage_v, "voltage")
        if voltage == self.reference_voltage_v:
            return 1.0
        acceleration = np.exp(self.voltage_acceleration_per_v
                              * (voltage - self.reference_voltage_v))
        return float(acceleration ** (1.0 / self.time_exponent))

    def time_factor(self, temperature_c: float,
                    voltage_v: Optional[float] = None) -> float:
        """Reference-equivalent years contributed by one year at the corner.

        ``voltage_v=None`` (or the reference voltage) contributes no voltage
        term at all, so legacy thermal-only callers get bitwise-unchanged
        factors.
        """
        if float(temperature_c) == self.reference_temperature_c:
            factor = 1.0
        else:
            ratio = (self._arrhenius(temperature_c)
                     / self._arrhenius(self.reference_temperature_c))
            factor = float(ratio ** (1.0 / self.time_exponent))
        if voltage_v is not None and float(voltage_v) != self.reference_voltage_v:
            factor *= self.voltage_factor(voltage_v)
        return factor

    def time_factor_array(self, temperature_c: np.ndarray,
                          voltage_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time_factor` over arrays of corners.

        Broadcasts ``temperature_c`` against ``voltage_v`` and evaluates both
        acceleration terms elementwise — the fleet engine's whole
        ``(device, phase)`` corner grid in one call.  Entries exactly at a
        reference value are pinned to exactly ``1.0`` (``np.where``, not
        merely a computation that lands close), preserving the scalar
        method's bit-identity guarantee for reference-corner devices.
        """
        temperature = np.asarray(temperature_c, dtype=np.float64)
        voltage = np.asarray(voltage_v, dtype=np.float64)
        if not np.all(voltage > 0):  # matches check_positive_finite, arrays
            raise ValueError("voltage must be positive and finite")
        kelvin = temperature + 273.15
        if not np.all(kelvin > 0):
            raise ValueError("temperature must be above absolute zero")
        ratio = (np.exp(-self.activation_energy_ev / (BOLTZMANN_EV * kelvin))
                 / self._arrhenius(self.reference_temperature_c))
        thermal = np.where(temperature == self.reference_temperature_c, 1.0,
                           ratio ** (1.0 / self.time_exponent))
        acceleration = np.exp(self.voltage_acceleration_per_v
                              * (voltage - self.reference_voltage_v))
        voltage_term = np.where(voltage == self.reference_voltage_v, 1.0,
                                acceleration ** (1.0 / self.time_exponent))
        return thermal * voltage_term

    def describe(self) -> dict:
        """Machine-readable description (serialised into scenario payloads)."""
        return {
            "activation_energy_ev": self.activation_energy_ev,
            "time_exponent": self.time_exponent,
            "reference_temperature_c": self.reference_temperature_c,
            "voltage_acceleration_per_v": self.voltage_acceleration_per_v,
            "reference_voltage_v": self.reference_voltage_v,
        }


@dataclass
class PhaseStress:
    """Per-cell stress contribution of one lifetime phase.

    ``duty`` is the per-cell duty-cycle the phase's workload produced (any
    shape), ``years`` its wall-clock share of the lifetime,
    ``temperature_c`` the thermal corner it ran at and ``voltage_v`` its
    supply voltage (the reference voltage unless the phase names a DVFS
    operating point).
    """

    duty: np.ndarray
    years: float
    temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    #: Free-form label carried into reports ("phase 2: alexnet/int8").
    label: str = ""
    voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V

    def __post_init__(self) -> None:
        self.duty = np.asarray(self.duty, dtype=np.float64)
        check_positive(self.years, "years")
        _celsius_to_kelvin(self.temperature_c)
        check_positive_finite(self.voltage_v, "voltage_v")


def aggregate_stress(phases: Sequence[PhaseStress],
                     scaling: Optional[ArrheniusTimeScaling] = None
                     ) -> Tuple[np.ndarray, float]:
    """Collapse per-phase ``(duty, years, temperature)`` stress into one pair.

    Returns ``(effective_duty, effective_years)`` such that
    ``model.degradation_percent(effective_duty, effective_years)`` is the
    degradation accumulated over the whole timeline, for any model of the
    ``A * exp(gamma * V) * arr(T) * (duty * t) ** n`` family (each phase's
    voltage enters through :meth:`ArrheniusTimeScaling.time_factor`).

    The blend is computed with weights normalised to sum to 1, so a single
    phase at the reference operating point returns its duty array bit-for-bit
    (multiplied by exactly ``1.0``) and ``years`` unchanged.
    """
    phases = list(phases)
    if not phases:
        raise ValueError("aggregate_stress requires at least one phase")
    scaling = scaling or ArrheniusTimeScaling()
    shape = phases[0].duty.shape
    for index, phase in enumerate(phases):
        if phase.duty.shape != shape:
            raise ValueError(
                f"phase {index} duty shape {phase.duty.shape} does not match "
                f"phase 0 shape {shape}; all phases must cover the same cells")
    weights = [phase.years * scaling.time_factor(phase.temperature_c,
                                                 phase.voltage_v)
               for phase in phases]
    effective_years = float(sum(weights))
    if not effective_years > 0:  # also rejects NaN
        raise ValueError("effective stress-time must be positive")
    effective_duty = (weights[0] / effective_years) * phases[0].duty
    for weight, phase in zip(weights[1:], phases[1:]):
        effective_duty = effective_duty + (weight / effective_years) * phase.duty
    return effective_duty, effective_years


@dataclass
class StressTimeline:
    """Accumulates :class:`PhaseStress` entries and aggregates on demand."""

    scaling: ArrheniusTimeScaling = field(default_factory=ArrheniusTimeScaling)
    phases: List[PhaseStress] = field(default_factory=list)

    def add(self, duty: np.ndarray, years: float,
            temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C,
            label: str = "",
            voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V) -> PhaseStress:
        """Append one phase's stress contribution."""
        phase = PhaseStress(duty=duty, years=years,
                            temperature_c=temperature_c, label=label,
                            voltage_v=voltage_v)
        self.phases.append(phase)
        return phase

    @property
    def wall_years(self) -> float:
        """Wall-clock span of the recorded timeline."""
        return float(sum(phase.years for phase in self.phases))

    def effective(self) -> Tuple[np.ndarray, float]:
        """``(effective_duty, effective_years)`` of the recorded timeline."""
        return aggregate_stress(self.phases, self.scaling)


def scaling_for_model(snm_model: object) -> ArrheniusTimeScaling:
    """Derive the time scaling consistent with an SNM model's device physics.

    A model exposing a ``device`` (the reaction–diffusion backend) contributes
    its activation energy, time exponent and nominal temperature; otherwise
    the model's ``time_exponent`` (if any) is honoured and the NBTI defaults
    fill the rest, so the calibrated power-law model composes identically to
    the physics-style one.
    """
    device = getattr(snm_model, "device", None)
    if device is not None:
        return ArrheniusTimeScaling(
            activation_energy_ev=float(device.activation_energy_ev),
            time_exponent=float(device.time_exponent),
            reference_temperature_c=float(device.temperature_kelvin) - 273.15,
        )
    return ArrheniusTimeScaling(
        time_exponent=float(getattr(snm_model, "time_exponent", 1.0 / 6.0)))
