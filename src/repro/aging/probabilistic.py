"""The paper's probabilistic duty-cycle model (Sec. III-B, Eqs. 1-2, Fig. 7).

With the Fig. 5 dataflow, one on-chip memory cell is only ever written with
``K`` different bits (one per block mapping), each an independent Bernoulli
draw with probability ``rho`` of being '1'.  Equation (1) gives the
probability that such a cell ends up with a duty-cycle at most ``b/K`` or at
least ``1 - b/K`` — i.e. badly unbalanced in either direction — and Equation
(2) lifts that to the probability that at least ``n`` of the ``I x J`` cells
of the memory are that unbalanced.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from repro.utils.validation import check_positive_int, check_probability


def duty_cycle_tail_probability(num_blocks: int, rho: float, b: int) -> float:
    """Equation (1): P(duty <= b/K or duty >= 1 - b/K).

    Parameters
    ----------
    num_blocks:
        ``K``, the number of distinct bits written to the cell per lifetime
        pattern.
    rho:
        Probability that any written bit is '1'.
    b:
        Tail width parameter, ``0 <= b <= floor(K / 2)``.

    Notes
    -----
    As in the paper, the special case ``b/K == 0.5`` returns exactly 1 (every
    duty-cycle trivially satisfies ``duty <= 0.5 or duty >= 0.5``).
    """
    check_positive_int(num_blocks, "num_blocks")
    check_probability(rho, "rho")
    if b < 0 or b > num_blocks // 2:
        raise ValueError(f"b must lie in [0, floor(K/2)] = [0, {num_blocks // 2}], got {b}")
    if 2 * b == num_blocks:
        return 1.0
    lower_tail = stats.binom.cdf(b, num_blocks, rho)
    upper_tail = stats.binom.sf(num_blocks - b - 1, num_blocks, rho)
    return float(lower_tail + upper_tail)


def probability_at_least_n_cells(num_cells: int, cell_probability: float, n: int) -> float:
    """Equation (2): P(at least ``n`` of ``I x J`` cells are unbalanced)."""
    check_positive_int(num_cells, "num_cells")
    check_probability(cell_probability, "cell_probability")
    if n < 0 or n > num_cells:
        raise ValueError(f"n must lie in [0, {num_cells}], got {n}")
    if n == 0:
        return 1.0
    return float(stats.binom.sf(n - 1, num_cells, cell_probability))


def expected_cells_at_tail(num_cells: int, cell_probability: float) -> float:
    """Expected number of cells whose duty-cycle falls in the tail."""
    check_positive_int(num_cells, "num_cells")
    check_probability(cell_probability, "cell_probability")
    return num_cells * cell_probability


def fig7_sweep(num_blocks: int, rho: float = 0.5) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig. 7 curves: Eq. (1) evaluated for every ``b`` in ``0..floor(K/2)``.

    Returns ``(b_over_k, probability)`` arrays.
    """
    b_values = np.arange(num_blocks // 2 + 1)
    probabilities = np.array([
        duty_cycle_tail_probability(num_blocks, rho, int(b)) for b in b_values
    ])
    return b_values / num_blocks, probabilities


def effective_num_blocks_with_shifts(num_blocks: int, num_shifts: int) -> int:
    """Effective ``K`` if a mitigation scheme adds ``num_shifts`` extra mappings.

    The paper's example: 7 extra shift positions turn K=20 into K=160,
    assuming the shifted bits are independent.
    """
    check_positive_int(num_blocks, "num_blocks")
    if num_shifts < 0:
        raise ValueError("num_shifts must be non-negative")
    return num_blocks * (num_shifts + 1)


def empirical_tail_probability(duty_cycles: np.ndarray, b_over_k: float) -> float:
    """Empirical counterpart of Eq. (1) measured on simulated duty-cycles.

    Used by the validation tests that check the Monte-Carlo memory simulation
    against the analytic model.
    """
    duty = np.asarray(duty_cycles, dtype=np.float64).reshape(-1)
    if duty.size == 0:
        raise ValueError("duty_cycles must not be empty")
    check_probability(b_over_k, "b_over_k")
    tail = (duty <= b_over_k + 1e-12) | (duty >= 1.0 - b_over_k - 1e-12)
    return float(tail.mean())


def analytic_duty_cycle_histogram(num_blocks: int, rho: float,
                                  bin_edges: Sequence[float]) -> np.ndarray:
    """Probability mass of the duty-cycle landing in each ``[lo, hi)`` bin.

    The duty-cycle of a cell after ``K`` independent writes is ``i / K`` with
    ``i ~ Binomial(K, rho)``; this helper aggregates that distribution into
    arbitrary bins (used to predict Fig. 9 histograms analytically).
    """
    check_positive_int(num_blocks, "num_blocks")
    check_probability(rho, "rho")
    edges = np.asarray(bin_edges, dtype=np.float64)
    support = np.arange(num_blocks + 1) / num_blocks
    pmf = stats.binom.pmf(np.arange(num_blocks + 1), num_blocks, rho)
    masses = np.zeros(edges.size - 1)
    for index, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
        if index == edges.size - 2:
            mask = (support >= low) & (support <= high)
        else:
            mask = (support >= low) & (support < high)
        masses[index] = pmf[mask].sum()
    return masses
