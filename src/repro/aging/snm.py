"""Duty-cycle → SNM degradation models.

The paper quantifies NBTI aging of a 6T-SRAM cell through the degradation of
its Static Noise Margin (SNM) after 7 years of operation, as a function of the
cell's lifetime duty-cycle (fraction of time storing a '1').  The two anchor
points it states for the underlying device model (Sec. V-A) are:

* best case, 50% duty-cycle: **10.82%** SNM degradation;
* worst case, 0% or 100% duty-cycle: **26.12%** SNM degradation.

:class:`CalibratedSnmModel` interpolates between those anchors with a power
law in the worst-transistor stress fraction ``m = max(d, 1 - d)``:

    degradation(d) = worst * m ** gamma,      gamma = log2(worst / best)

which by construction reproduces both anchors and is monotonic in ``m``
(Fig. 2b shape).  The model is deliberately pluggable — the paper notes its
technique is orthogonal to the device model — so any other implementation of
:class:`SnmDegradationModel` (e.g. the physics-style model in
:mod:`repro.aging.nbti`) can be swapped in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

#: Anchor values stated in the paper (Sec. V-A), in percent after 7 years.
BEST_SNM_DEGRADATION_PERCENT = 10.82
WORST_SNM_DEGRADATION_PERCENT = 26.12
#: Lifetime after which the anchors are specified.
REFERENCE_LIFETIME_YEARS = 7.0
#: Time-dependence exponent of long-term NBTI degradation (t^1/6 law).
TIME_EXPONENT = 1.0 / 6.0


class SnmDegradationModel(abc.ABC):
    """Interface of duty-cycle → SNM-degradation models."""

    @abc.abstractmethod
    def degradation_percent(self, duty_cycle: np.ndarray,
                            years: float = REFERENCE_LIFETIME_YEARS) -> np.ndarray:
        """SNM degradation (percent) for each duty-cycle after ``years`` years."""

    def worst_case_percent(self, years: float = REFERENCE_LIFETIME_YEARS) -> float:
        """Degradation of a cell stuck at one value for its whole lifetime."""
        return float(self.degradation_percent(np.asarray([1.0]), years)[0])

    def best_case_percent(self, years: float = REFERENCE_LIFETIME_YEARS) -> float:
        """Degradation of a perfectly balanced cell."""
        return float(self.degradation_percent(np.asarray([0.5]), years)[0])


@dataclass(frozen=True)
class CalibratedSnmModel(SnmDegradationModel):
    """Power-law model calibrated to the paper's two anchor points."""

    best_percent: float = BEST_SNM_DEGRADATION_PERCENT
    worst_percent: float = WORST_SNM_DEGRADATION_PERCENT
    reference_years: float = REFERENCE_LIFETIME_YEARS
    time_exponent: float = TIME_EXPONENT

    def __post_init__(self) -> None:
        check_positive(self.best_percent, "best_percent")
        check_positive(self.worst_percent, "worst_percent")
        if self.worst_percent <= self.best_percent:
            raise ValueError("worst_percent must exceed best_percent")
        check_positive(self.reference_years, "reference_years")

    @property
    def gamma(self) -> float:
        """Exponent of the stress-fraction power law."""
        return float(np.log2(self.worst_percent / self.best_percent))

    def degradation_percent(self, duty_cycle: np.ndarray,
                            years: float = REFERENCE_LIFETIME_YEARS) -> np.ndarray:
        duty = np.asarray(duty_cycle, dtype=np.float64)
        if np.any((duty < -1e-9) | (duty > 1.0 + 1e-9)):
            raise ValueError("duty-cycle values must lie within [0, 1]")
        duty = np.clip(duty, 0.0, 1.0)
        stress = np.maximum(duty, 1.0 - duty)
        base = self.worst_percent * np.power(stress, self.gamma)
        time_scale = (years / self.reference_years) ** self.time_exponent
        return base * time_scale

    def stress_fraction_for_degradation(self, degradation_percent: float,
                                        years: float = REFERENCE_LIFETIME_YEARS) -> float:
        """Invert the model: stress fraction that yields a given degradation."""
        time_scale = (years / self.reference_years) ** self.time_exponent
        value = degradation_percent / (self.worst_percent * time_scale)
        if value <= 0:
            raise ValueError("degradation_percent must be positive")
        return float(np.clip(value ** (1.0 / self.gamma), 0.0, 1.0))


def default_snm_model() -> CalibratedSnmModel:
    """The model used by all experiments unless a different one is injected."""
    return CalibratedSnmModel()


# --------------------------------------------------------------------------- #
# Histogram helpers (Fig. 9 / Fig. 11 rendering)
# --------------------------------------------------------------------------- #
def default_degradation_bins(model: SnmDegradationModel = None,
                             num_bins: int = 8) -> np.ndarray:
    """Bin edges spanning the reachable degradation range (best..worst)."""
    model = model or default_snm_model()
    low = model.best_case_percent()
    high = model.worst_case_percent()
    edges = np.linspace(low, high, num_bins + 1)
    # Tiny epsilon so the exact best/worst values fall inside the outer bins.
    edges[0] -= 1e-9
    edges[-1] += 1e-9
    return edges


def degradation_histogram(degradation_percent: np.ndarray,
                          bin_edges: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of cell degradations as percentages of the cell population.

    Returns ``(percent_of_cells_per_bin, bin_edges)``; values outside the
    edges are clipped into the first/last bins so no cell is dropped.
    """
    values = np.asarray(degradation_percent, dtype=np.float64).reshape(-1)
    edges = np.asarray(bin_edges, dtype=np.float64)
    if values.size == 0:
        return np.zeros(edges.size - 1), edges
    clipped = np.clip(values, edges[0], edges[-1])
    counts, _ = np.histogram(clipped, bins=edges)
    return counts / values.size * 100.0, edges


def bin_labels(bin_edges: Sequence[float]) -> list:
    """Human-readable labels for histogram bins ("10.8-12.7%")."""
    edges = np.asarray(bin_edges, dtype=np.float64)
    return [f"{low:.1f}-{high:.1f}%" for low, high in zip(edges[:-1], edges[1:])]
