"""NBTI aging substrate.

Contains the device-level and statistical models that turn per-cell
duty-cycles into aging metrics:

* :mod:`repro.aging.nbti` — long-term NBTI threshold-voltage shift model
  (reaction–diffusion style) for a single PMOS transistor;
* :mod:`repro.aging.snm` — duty-cycle → Static Noise Margin (SNM) degradation
  after 7 years, calibrated to the anchor points stated in the paper
  (10.82% at 50% duty-cycle, 26.12% at 0%/100%);
* :mod:`repro.aging.probabilistic` — the paper's probabilistic model, Eq. (1)
  and Eq. (2), used for the Fig. 7 analysis;
* :mod:`repro.aging.lifetime` — lifetime / guard-band estimation built on top
  of the SNM model (extension);
* :mod:`repro.aging.stress` — effective-stress aggregation folding per-phase
  (duty, years, temperature) timelines into the single (duty, years) pair the
  SNM models consume (extension, backs :mod:`repro.scenario`).
"""

from repro.aging.lifetime import LifetimeEstimator
from repro.aging.nbti import NbtiDeviceModel, ReactionDiffusionSnmModel
from repro.aging.probabilistic import (
    duty_cycle_tail_probability,
    expected_cells_at_tail,
    fig7_sweep,
    probability_at_least_n_cells,
)
from repro.aging.snm import (
    BEST_SNM_DEGRADATION_PERCENT,
    WORST_SNM_DEGRADATION_PERCENT,
    CalibratedSnmModel,
    SnmDegradationModel,
    default_snm_model,
)
from repro.aging.stress import (
    DEFAULT_REFERENCE_TEMPERATURE_C,
    ArrheniusTimeScaling,
    PhaseStress,
    StressTimeline,
    aggregate_stress,
    scaling_for_model,
)

__all__ = [
    "DEFAULT_REFERENCE_TEMPERATURE_C",
    "ArrheniusTimeScaling",
    "PhaseStress",
    "StressTimeline",
    "aggregate_stress",
    "scaling_for_model",
    "LifetimeEstimator",
    "NbtiDeviceModel",
    "ReactionDiffusionSnmModel",
    "duty_cycle_tail_probability",
    "expected_cells_at_tail",
    "fig7_sweep",
    "probability_at_least_n_cells",
    "BEST_SNM_DEGRADATION_PERCENT",
    "WORST_SNM_DEGRADATION_PERCENT",
    "CalibratedSnmModel",
    "SnmDegradationModel",
    "default_snm_model",
]
