"""Lifetime and guard-band estimation (extension).

The paper motivates aging mitigation with the observation that, without it,
the operating frequency of a device must be reduced by more than 20% over its
lifetime to absorb the NBTI-induced Vth shift.  This module provides the
inverse view used by the ablation benchmarks: given a maximum tolerable SNM
degradation (or frequency guard-band), how many years does a memory survive
under each mitigation policy?

Lifetime follows from the ``t**(1/6)`` time dependence of long-term NBTI: if a
cell reaches degradation ``D_ref`` after the reference lifetime, it reaches a
threshold ``D_max`` after ``T_ref * (D_max / D_ref) ** 6`` years.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.aging.snm import REFERENCE_LIFETIME_YEARS, SnmDegradationModel, default_snm_model
from repro.aging.stress import (
    ArrheniusTimeScaling,
    PhaseStress,
    aggregate_stress,
    scaling_for_model,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LifetimeEstimator:
    """Converts per-cell duty-cycles into lifetime estimates."""

    snm_model: SnmDegradationModel = None
    max_degradation_percent: float = 15.0
    reference_years: float = REFERENCE_LIFETIME_YEARS

    def __post_init__(self) -> None:
        check_positive(self.max_degradation_percent, "max_degradation_percent")
        if self.snm_model is None:
            object.__setattr__(self, "snm_model", default_snm_model())

    def cell_lifetimes_years(self, duty_cycles: np.ndarray) -> np.ndarray:
        """Years until each cell's SNM degradation reaches the threshold."""
        duty = np.asarray(duty_cycles, dtype=np.float64)
        reference_degradation = self.snm_model.degradation_percent(duty, self.reference_years)
        time_exponent = getattr(self.snm_model, "time_exponent", 1.0 / 6.0)
        with np.errstate(divide="ignore"):
            ratio = self.max_degradation_percent / reference_degradation
            return self.reference_years * np.power(ratio, 1.0 / time_exponent)

    def memory_lifetime_years(self, duty_cycles: np.ndarray) -> float:
        """Lifetime of the memory = lifetime of its most-aged cell."""
        lifetimes = self.cell_lifetimes_years(duty_cycles)
        return float(np.min(lifetimes)) if lifetimes.size else float("inf")

    # ------------------------------------------------------------------ #
    # Multi-phase (scenario) view: per-phase (duty, years, temperature,
    # voltage) — each phase's DVFS operating point rides in through
    # PhaseStress.voltage_v and the scaling's voltage-acceleration term.
    # ------------------------------------------------------------------ #
    def cell_lifetimes_years_phases(self, phases: Sequence[PhaseStress],
                                    scaling: Optional[ArrheniusTimeScaling] = None
                                    ) -> np.ndarray:
        """Wall-clock years of the *scenario mix* until each cell hits the threshold.

        The phase list is treated as a stationary workload mix: the timeline's
        effective duty-cycle stays what it is, but time advances
        ``effective_years / wall_years`` times faster than the wall clock
        (hot or overdriven phases accelerate damage, cool or undervolted
        ones slow it).  A single phase at the reference operating point
        reproduces :meth:`cell_lifetimes_years`.
        """
        scaling = scaling or scaling_for_model(self.snm_model)
        duty, effective_years = aggregate_stress(phases, scaling)
        wall_years = float(sum(phase.years for phase in phases))
        acceleration = effective_years / wall_years
        return self.cell_lifetimes_years(duty) / acceleration

    def memory_lifetime_years_phases(self, phases: Sequence[PhaseStress],
                                     scaling: Optional[ArrheniusTimeScaling] = None
                                     ) -> float:
        """Scenario-mix lifetime of the memory = lifetime of its most-aged cell."""
        lifetimes = self.cell_lifetimes_years_phases(phases, scaling)
        return float(np.min(lifetimes)) if lifetimes.size else float("inf")

    def lifetime_improvement(self, duty_cycles_baseline: np.ndarray,
                             duty_cycles_mitigated: np.ndarray) -> float:
        """Lifetime ratio (mitigated / baseline) — the headline metric."""
        baseline = self.memory_lifetime_years(duty_cycles_baseline)
        mitigated = self.memory_lifetime_years(duty_cycles_mitigated)
        if baseline <= 0:
            raise ValueError("baseline lifetime must be positive")
        return mitigated / baseline


def frequency_guardband_percent(snm_degradation_percent: np.ndarray,
                                sensitivity: float = 0.8) -> np.ndarray:
    """Approximate frequency guard-band required for a given SNM degradation.

    A simple proportional map (a 26% SNM loss corresponding to roughly the
    20%+ frequency derating quoted in the paper's introduction) used only for
    reporting; ``sensitivity`` is the derating per unit degradation.
    """
    degradation = np.asarray(snm_degradation_percent, dtype=np.float64)
    return degradation * sensitivity
