"""Content-addressed on-disk cache for experiment results.

The cache key is the SHA-256 digest of (experiment name, canonical JSON of
the fully-resolved parameters, code version), where the code version is a
digest over every ``*.py`` file of the installed :mod:`repro` package.  Any
change to the parameters *or to the code itself* therefore misses the cache,
while repeated ``dnn-life`` invocations and sweep jobs with identical inputs
are served from disk instead of re-simulating.

Entries are JSON files (one per key, sharded by the key's first two hex
characters) holding the experiment name, the parameters and the JSON-safe
payload, so a cache directory doubles as a browsable result archive.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.utils.serialization import canonical_json, to_jsonable

__all__ = ["ResultCache", "cache_key", "code_version", "default_cache_dir"]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "DNN_LIFE_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$DNN_LIFE_CACHE_DIR`` or ``~/.cache/dnn-life``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "dnn-life"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every python source file of the :mod:`repro` package.

    Computed once per process; editing any module of the library changes the
    version and therefore invalidates every cached result.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def cache_key(experiment: str, params: Mapping[str, Any],
              version: Optional[str] = None) -> str:
    """Content-addressed key of one (experiment, params, code version) run."""
    identity = {
        "experiment": experiment,
        "params": to_jsonable(dict(params)),
        "code_version": version if version is not None else code_version(),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk result store addressed by :func:`cache_key` digests.

    Writes are atomic (temp file + ``os.replace``), so concurrent sweep
    workers and parallel ``dnn-life`` invocations can share one directory.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- key/path layout ---------------------------------------------------- #
    def path_for(self, key: str) -> Path:
        """Path of the entry file for ``key`` (two-character shard dirs)."""
        return self.root / key[:2] / f"{key}.json"

    # -- accessors ----------------------------------------------------------- #
    def get(self, key: str) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Unreadable/corrupt entries count as misses (and are left on disk for
        inspection rather than silently deleted).
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any, experiment: str = "",
            params: Optional[Mapping[str, Any]] = None,
            normalized: bool = False) -> Path:
        """Store ``payload`` (made JSON-safe) under ``key`` atomically.

        ``normalized=True`` skips the :func:`to_jsonable` pass over the
        payload — callers that already normalised it (the experiment runner
        and the sweep workers do) avoid a redundant deep copy of large
        result trees.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "experiment": experiment,
            "params": to_jsonable(dict(params or {})),
            "code_version": code_version(),
            "payload": payload if normalized else to_jsonable(payload),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # -- maintenance --------------------------------------------------------- #
    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("??/*.json")

    def stats(self) -> Dict[str, Any]:
        """Entry count / on-disk size plus this process' hit/miss counters."""
        paths = list(self._entry_paths())
        return {
            "root": str(self.root),
            "entries": len(paths),
            "bytes": sum(path.stat().st_size for path in paths),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
