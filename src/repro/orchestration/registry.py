"""Experiment registry: one catalogue of every reproducible artifact.

Every figure/table/ablation driver in :mod:`repro.experiments` registers
itself here with a name, a parameter schema and quick/full configurations.
The CLI (``dnn-life run/sweep/list``) and the :class:`~repro.orchestration.sweep.SweepRunner`
resolve experiments exclusively through this registry, so adding a new
scenario to the whole tool-chain is one :func:`register_experiment` call.

Example
-------
>>> from repro.orchestration import REGISTRY, load_all_experiments
>>> load_all_experiments()
>>> spec = REGISTRY.get("fig9")
>>> sorted(spec.param_names())
['network_name', 'quick', 'seed']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ParamSpec",
    "ExperimentSpec",
    "ExperimentRegistry",
    "REGISTRY",
    "register_experiment",
    "load_all_experiments",
]

_TRUE_STRINGS = ("1", "true", "yes", "on")
_FALSE_STRINGS = ("0", "false", "no", "off")


@dataclass(frozen=True)
class ParamSpec:
    """Schema of one experiment parameter.

    Attributes
    ----------
    name:
        Keyword-argument name of the experiment's runner function.
    type:
        Scalar python type of the value (``bool``, ``int``, ``float``, ``str``).
    default:
        Value used when the parameter is not supplied.
    choices:
        Optional closed set of allowed values.
    help:
        One-line description shown by ``dnn-life list`` and ``--help``.
    flag:
        CLI flag (defaults to ``--<name with _ replaced by ->``); lets the
        runner keyword (e.g. ``data_format``) keep a short flag (``--format``).
    positive:
        Require numeric values to be strictly positive.  Enforced at schema
        validation time, so the CLI rejects e.g. ``--inferences 0`` with a
        one-line usage error before anything executes.
    validator:
        Optional callable run against every validated value; raises
        ``ValueError`` with a one-line message to reject it (used by the
        ``scenario`` experiment to parse the phase-spec mini-language at
        validation time).
    """

    name: str
    type: type
    default: Any
    choices: Optional[Tuple[Any, ...]] = None
    help: str = ""
    flag: Optional[str] = None
    positive: bool = False
    validator: Optional[Callable[[Any], Any]] = None

    @property
    def cli_flag(self) -> str:
        """The command-line flag exposing this parameter."""
        return self.flag or "--" + self.name.replace("_", "-")

    def parse(self, text: Any) -> Any:
        """Coerce a string (e.g. from ``--set key=value``) into the value."""
        if not isinstance(text, str):
            return self.validate(text)
        if self.type is bool:
            lowered = text.strip().lower()
            if lowered in _TRUE_STRINGS:
                return True
            if lowered in _FALSE_STRINGS:
                return False
            raise ValueError(f"parameter '{self.name}' expects a boolean, got '{text}'")
        return self.validate(self.type(text))

    def validate(self, value: Any) -> Any:
        """Type-check ``value`` (ints are accepted for float parameters)."""
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if self.type is not bool and isinstance(value, bool):
            raise TypeError(f"parameter '{self.name}' expects {self.type.__name__}, got bool")
        if not isinstance(value, self.type):
            raise TypeError(
                f"parameter '{self.name}' expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})")
        if self.choices is not None and value not in self.choices:
            allowed = ", ".join(repr(choice) for choice in self.choices)
            raise ValueError(f"parameter '{self.name}' must be one of {allowed}, got {value!r}")
        # `not value > 0` (rather than `value <= 0`) also rejects NaN.
        if self.positive and isinstance(value, (int, float)) and not value > 0:
            raise ValueError(f"parameter '{self.name}' must be > 0, got {value}")
        if self.validator is not None:
            try:
                self.validator(value)
            except ValueError as error:
                raise ValueError(f"parameter '{self.name}': {error}") from None
        return value


#: Renderer signature: ``(payload, params) -> ascii_text``.  ``payload`` is the
#: JSON-safe result of the runner (possibly loaded back from the cache).
Renderer = Callable[[Any, Dict[str, Any]], str]


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: runner + schema + paper artifact mapping.

    ``affinity`` names the parameters that determine the experiment's
    expensive shared state (for the aging experiments: the weight stream).
    The sweep runner keeps jobs whose affinity parameters agree on the same
    worker process, so per-process caches keyed on those parameters are hit
    instead of rebuilt.
    """

    name: str
    runner: Callable[..., Any]
    description: str
    artifact: str
    params: Tuple[ParamSpec, ...] = ()
    quick_config: Mapping[str, Any] = field(default_factory=dict)
    full_config: Mapping[str, Any] = field(default_factory=dict)
    renderer: Optional[Renderer] = None
    tags: Tuple[str, ...] = ()
    affinity: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for param in self.params:
            if param.name in seen:
                raise ValueError(f"experiment '{self.name}' declares parameter "
                                 f"'{param.name}' twice")
            seen.add(param.name)
        for name in self.affinity:
            if name not in seen:
                raise ValueError(f"experiment '{self.name}' declares affinity on "
                                 f"unknown parameter '{name}'")

    def affinity_key(self, params: Mapping[str, Any]) -> Tuple[Any, ...]:
        """The values of the affinity parameters within ``params``."""
        return tuple(params.get(name) for name in self.affinity)

    def param_names(self) -> Tuple[str, ...]:
        """Names of the declared parameters, in declaration order."""
        return tuple(param.name for param in self.params)

    def get_param(self, name: str) -> ParamSpec:
        """Look up one parameter spec by name."""
        for param in self.params:
            if param.name == name:
                return param
        known = ", ".join(self.param_names()) or "<none>"
        raise KeyError(f"experiment '{self.name}' has no parameter '{name}' "
                       f"(known parameters: {known})")

    def defaults(self) -> Dict[str, Any]:
        """Default value of every declared parameter."""
        return {param.name: param.default for param in self.params}

    def resolve(self, params: Optional[Mapping[str, Any]] = None,
                full: bool = False) -> Dict[str, Any]:
        """Build the fully-resolved, validated parameter dict of one run.

        Layering (later wins): declared defaults, then the quick or full
        configuration, then the caller's explicit ``params``.  The result is
        what the runner is called with and what the cache key is derived from.
        """
        resolved = self.defaults()
        resolved.update(self.full_config if full else self.quick_config)
        for key, value in (params or {}).items():
            spec = self.get_param(key)
            resolved[key] = spec.parse(value) if isinstance(value, str) else spec.validate(value)
        return resolved

    def run(self, **params: Any) -> Any:
        """Invoke the runner with validated parameters (no caching)."""
        return self.runner(**self.resolve(params))


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec` mapping with duplicate protection."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; re-registering a name with a different spec is an error."""
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing == spec:  # idempotent module re-import
                return existing
            raise ValueError(f"experiment '{spec.name}' is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """Look up a spec; raise ``KeyError`` naming the known experiments."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "<none registered>"
            raise KeyError(f"unknown experiment '{name}' "
                           f"(known experiments: {known})") from None

    def names(self) -> List[str]:
        """Sorted names of all registered experiments."""
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self._specs[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._specs)

    def describe(self) -> List[Dict[str, Any]]:
        """One machine-readable row per experiment (``dnn-life list --json``)."""
        return [
            {
                "name": spec.name,
                "artifact": spec.artifact,
                "description": spec.description,
                "params": {param.name: {"type": param.type.__name__,
                                        "default": param.default,
                                        "choices": list(param.choices) if param.choices else None,
                                        "help": param.help}
                           for param in spec.params},
                "tags": list(spec.tags),
            }
            for spec in self
        ]


#: The process-wide registry used by the CLI and the sweep runner.
REGISTRY = ExperimentRegistry()


def register_experiment(name: str, runner: Callable[..., Any], description: str,
                        artifact: str, params: Sequence[ParamSpec] = (),
                        quick_config: Optional[Mapping[str, Any]] = None,
                        full_config: Optional[Mapping[str, Any]] = None,
                        renderer: Optional[Renderer] = None,
                        tags: Sequence[str] = (),
                        affinity: Sequence[str] = (),
                        registry: Optional[ExperimentRegistry] = None) -> ExperimentSpec:
    """Register an experiment driver with the (default) registry.

    Called once at the bottom of every module in :mod:`repro.experiments`.
    """
    spec = ExperimentSpec(
        name=name,
        runner=runner,
        description=description,
        artifact=artifact,
        params=tuple(params),
        quick_config=dict(quick_config or {}),
        full_config=dict(full_config or {}),
        renderer=renderer,
        tags=tuple(tags),
        affinity=tuple(affinity),
    )
    return (registry or REGISTRY).register(spec)


#: Modules whose import populates the registry (self-registration at the
#: bottom of each module).  New experiment modules are added here once.
_EXPERIMENT_MODULES = (
    "repro.experiments.fig1",
    "repro.experiments.fig2",
    "repro.experiments.fig6",
    "repro.experiments.fig7",
    "repro.experiments.fig9",
    "repro.experiments.fig11",
    "repro.experiments.table1",
    "repro.experiments.table2",
    "repro.experiments.ablations",
    "repro.experiments.aging_point",
    "repro.experiments.leveling",
    "repro.experiments.fleet",
    "repro.experiments.scenario",
    "repro.experiments.workloads",
    "repro.experiments.workload",
)


def load_all_experiments() -> ExperimentRegistry:
    """Import every experiment module so their registrations run.

    Idempotent: python caches the imports and :meth:`ExperimentRegistry.register`
    tolerates identical re-registration.  Worker processes of the sweep runner
    call this before resolving their job's experiment.
    """
    import importlib

    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    return REGISTRY
