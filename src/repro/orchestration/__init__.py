"""Experiment orchestration: registry, result cache and parallel sweeps.

This subsystem turns the per-figure experiment drivers into one scalable
orchestration layer:

* :mod:`repro.orchestration.registry` — every figure/table/ablation driver
  self-registers with a name, parameter schema and quick/full configurations;
  the CLI dispatches through the registry instead of hand-wired functions.
* :mod:`repro.orchestration.cache` — a content-addressed on-disk result cache
  keyed by (experiment, parameters, code version), so repeated invocations
  and sweeps reuse prior results instead of re-simulating.
* :mod:`repro.orchestration.sweep` — grid expansion with deterministic
  per-job seeding and a pluggable executor backend (process pool, serial,
  optional dask.distributed) over stream-affinity batches.
* :mod:`repro.orchestration.runner` — the shared cached execution path.

Example
-------
>>> from repro.orchestration import ResultCache, SweepRunner
>>> runner = SweepRunner(cache=ResultCache("/tmp/dnn-life-cache"), max_workers=4)
>>> report = runner.run("aging", {"network": ["lenet5", "custom_mnist"],
...                               "policy": ["none", "dnn_life"]})  # doctest: +SKIP
>>> report.num_jobs  # doctest: +SKIP
4
"""

from repro.orchestration.cache import ResultCache, cache_key, code_version, default_cache_dir
from repro.orchestration.registry import (
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    ParamSpec,
    load_all_experiments,
    register_experiment,
)
from repro.orchestration.runner import ExperimentRun, render_experiment, run_experiment
from repro.orchestration.sweep import (
    SWEEP_BACKENDS,
    BatchOutcome,
    DaskSweepExecutor,
    ProcessPoolSweepExecutor,
    SerialSweepExecutor,
    SweepJob,
    SweepJobResult,
    SweepReport,
    SweepRunner,
    expand_grid,
    make_executor,
    split_grid_values,
)

__all__ = [
    "REGISTRY",
    "ExperimentRegistry",
    "ExperimentSpec",
    "ParamSpec",
    "load_all_experiments",
    "register_experiment",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "ExperimentRun",
    "run_experiment",
    "render_experiment",
    "SWEEP_BACKENDS",
    "BatchOutcome",
    "DaskSweepExecutor",
    "ProcessPoolSweepExecutor",
    "SerialSweepExecutor",
    "SweepJob",
    "SweepJobResult",
    "SweepReport",
    "SweepRunner",
    "expand_grid",
    "make_executor",
    "split_grid_values",
]
