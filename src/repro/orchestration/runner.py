"""Cached execution of registered experiments.

:func:`run_experiment` is the single execution path shared by the CLI verbs
(``dnn-life run`` and the per-experiment commands) and by the sweep workers:
resolve the spec, derive the content-addressed cache key, serve from the
:class:`~repro.orchestration.cache.ResultCache` on a hit, otherwise invoke
the runner and store the JSON-safe payload.

Payloads are *always* normalised through
:func:`repro.utils.serialization.to_jsonable` — cached and freshly-computed
runs therefore return byte-identical results, which is what makes sweep
outputs reproducible regardless of which jobs hit the cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.orchestration.cache import ResultCache, cache_key
from repro.orchestration.registry import ExperimentRegistry, load_all_experiments
from repro.utils.serialization import to_jsonable

__all__ = ["ExperimentRun", "resolve_params", "run_experiment", "render_experiment"]


def resolve_params(spec, params: Optional[Mapping[str, Any]] = None,
                   full: bool = False) -> Dict[str, Any]:
    """Resolve and normalise an experiment's parameters for execution/caching.

    Beyond :meth:`ExperimentSpec.resolve`, this folds environment-driven
    behaviour into the parameter dict: ``REPRO_FULL_EXPERIMENTS=1`` makes
    ``ExperimentScale.from_quick_flag`` run paper scale regardless of the
    quick flag, so ``quick`` is forced to ``False`` here — the cache key
    must match what actually runs.
    """
    resolved = spec.resolve(params, full=full)
    if "quick" in resolved and resolved["quick"]:
        from repro.experiments.common import full_experiments_requested

        if full_experiments_requested():
            resolved["quick"] = False
    return resolved


@dataclass
class ExperimentRun:
    """Outcome of one cached experiment execution."""

    experiment: str
    params: Dict[str, Any]
    payload: Any
    cache_key: str
    from_cache: bool
    seconds: float
    artifact: str = ""

    def describe(self) -> Dict[str, Any]:
        """JSON-safe record of the run (used by sweep reports)."""
        return {
            "experiment": self.experiment,
            "artifact": self.artifact,
            "params": to_jsonable(self.params),
            "cache_key": self.cache_key,
            "from_cache": self.from_cache,
            "seconds": self.seconds,
            "payload": self.payload,
        }


def run_experiment(name: str, params: Optional[Mapping[str, Any]] = None,
                   full: bool = False, cache: Optional[ResultCache] = None,
                   registry: Optional[ExperimentRegistry] = None) -> ExperimentRun:
    """Run one registered experiment, serving repeated runs from the cache.

    Parameters
    ----------
    name:
        Registered experiment name (see ``dnn-life list``).
    params:
        Parameter overrides; string values are parsed against the schema
        (so ``{"seed": "3"}`` from the CLI works like ``{"seed": 3}``).
    full:
        Apply the spec's full (paper-scale) configuration instead of the
        quick one before overlaying ``params``.
    cache:
        Result cache to consult/populate; ``None`` disables caching.
    registry:
        Registry to resolve ``name`` in (defaults to the global one, after
        importing all experiment modules).
    """
    if registry is None:
        registry = load_all_experiments()
    spec = registry.get(name)
    resolved = resolve_params(spec, params, full=full)
    # With caching disabled the key is never used — skip it so sweep workers
    # (which always run with cache=None) don't hash the package sources.
    key = cache_key(spec.name, resolved) if cache is not None else ""
    start = time.perf_counter()
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            return ExperimentRun(spec.name, resolved, payload, key, True,
                                 time.perf_counter() - start, spec.artifact)
    payload = to_jsonable(spec.runner(**resolved))
    if cache is not None:
        cache.put(key, payload, experiment=spec.name, params=resolved, normalized=True)
    return ExperimentRun(spec.name, resolved, payload, key, False,
                         time.perf_counter() - start, spec.artifact)


def render_experiment(run: ExperimentRun,
                      registry: Optional[ExperimentRegistry] = None) -> Optional[str]:
    """ASCII rendering of a run via the spec's renderer (``None`` if it has none)."""
    if registry is None:
        registry = load_all_experiments()
    spec = registry.get(run.experiment)
    if spec.renderer is None:
        return None
    return spec.renderer(run.payload, dict(run.params))
