"""Parameter-grid sweeps with a pluggable executor backend.

:class:`SweepRunner` expands a parameter grid (e.g. network × quantization
format × mitigation policy × memory geometry) into jobs, gives every job a
deterministic seed derived through :func:`repro.utils.rng.deterministic_hash_seed`,
serves previously-computed jobs from the result cache and hands the rest —
grouped into stream-affinity batches — to a *sweep executor*.

The executor protocol is one method::

    submit_batches(experiment, batches) -> Iterator[BatchOutcome]

where each batch is ``[(job_index, params), ...]`` and outcomes may arrive
in any order.  Three backends implement it:

* :class:`ProcessPoolSweepExecutor` (default) — the original
  :class:`concurrent.futures.ProcessPoolExecutor` single-host fan-out;
* :class:`SerialSweepExecutor` — everything inline in the calling process
  (debugging, coverage, deterministic smoke tests);
* :class:`DaskSweepExecutor` — ``dask.distributed`` cluster fan-out behind a
  guarded import (selecting it without dask installed is a one-line usage
  error, and remote workers fetch shared packed streams from the
  content-addressed stream store rather than shipping tensors).

Because every job runs through :func:`repro.orchestration.runner.run_experiment`,
a sweep job's payload is byte-identical to the payload of a single
``dnn-life run`` with the same parameters — on every backend.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from itertools import product
from typing import (Any, Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.orchestration.cache import ResultCache, cache_key
from repro.orchestration.registry import ExperimentRegistry, load_all_experiments
from repro.utils.rng import deterministic_hash_seed
from repro.utils.serialization import canonical_json

__all__ = ["expand_grid", "split_grid_values", "make_executor", "BatchOutcome",
           "DaskSweepExecutor", "ProcessPoolSweepExecutor",
           "SerialSweepExecutor", "SweepJob", "SweepJobResult", "SweepReport",
           "SweepRunner", "SWEEP_BACKENDS"]

#: Environment variable overriding the default worker count.
MAX_WORKERS_ENV = "DNN_LIFE_MAX_WORKERS"

#: The selectable sweep executor backends.
SWEEP_BACKENDS = ("process", "serial", "dask")

#: Characters a ``--grid`` value list may open with to declare an alternate
#: axis separator (sed-style), so values containing commas — multi-phase
#: scenario specs, ``@V:F`` operating-point suffixes — can ride a grid axis.
GRID_AXIS_SEPARATORS = (";", "|", "/")


def split_grid_values(text: str) -> List[str]:
    """Split one ``--grid PARAM=V1,V2,...`` value list into raw value strings.

    The default separator is the comma.  When the list's *first* character is
    one of :data:`GRID_AXIS_SEPARATORS`, that character is consumed as the
    axis separator instead (the sed ``s|…|…|`` convention), letting values
    that legitimately contain commas ride a grid axis::

        --grid policy=none,inversion                       # plain commas
        --grid "spec=;lenet5:int8:none:5,idle:3;lenet5:int8:inversion:5"
                                                           # ';' separates two
                                                           # multi-phase specs

    Empty values are dropped; a list that declares a separator but carries
    no values splits to ``[]``, which the CLI reports as a one-line usage
    error (exit 2).
    """
    if text[:1] in GRID_AXIS_SEPARATORS:
        separator = text[0]
        parts = text[1:].split(separator)
    else:
        parts = text.split(",")
    return [part for part in (piece.strip() for piece in parts) if part]


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{param: [values...]}`` into the cartesian product of points.

    The expansion order is deterministic: axes vary slowest-first in the
    order the mapping lists them (like nested for-loops), so job indices —
    and therefore derived per-job seeds — are stable across invocations.
    """
    if not grid:
        return [{}]
    axes: List[Tuple[str, List[Any]]] = []
    for name, values in grid.items():
        values = list(values)
        if not values:
            raise ValueError(f"grid axis '{name}' has no values")
        axes.append((name, values))
    names = [name for name, _ in axes]
    return [dict(zip(names, point)) for point in product(*(values for _, values in axes))]


@dataclass(frozen=True)
class SweepJob:
    """One grid point, fully resolved and content-addressed."""

    index: int
    experiment: str
    params: Dict[str, Any]
    cache_key: str


@dataclass
class SweepJobResult:
    """Outcome of one sweep job (``error`` set and ``payload`` ``None`` on failure)."""

    job: SweepJob
    payload: Any
    from_cache: bool
    seconds: float
    worker_pid: int
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether the job raised instead of producing a payload."""
        return self.error is not None

    def describe(self) -> Dict[str, Any]:
        """JSON-safe record of the job result."""
        return {
            "index": self.job.index,
            "experiment": self.job.experiment,
            "params": self.job.params,
            "cache_key": self.job.cache_key,
            "from_cache": self.from_cache,
            "seconds": self.seconds,
            "worker_pid": self.worker_pid,
            "error": self.error,
            "payload": self.payload,
        }


@dataclass
class SweepReport:
    """Results and execution statistics of one sweep."""

    experiment: str
    grid: Dict[str, List[Any]]
    results: List[SweepJobResult] = field(default_factory=list)
    seconds: float = 0.0
    backend: str = "process"
    #: Stream-store counter totals aggregated across the parent process and
    #: every worker batch (``None`` when the store is disabled everywhere).
    stream_store: Optional[Dict[str, Any]] = None

    @property
    def num_jobs(self) -> int:
        """Total number of grid points."""
        return len(self.results)

    @property
    def num_from_cache(self) -> int:
        """Jobs served from the result cache."""
        return sum(1 for result in self.results if result.from_cache)

    @property
    def num_computed(self) -> int:
        """Jobs actually (re)simulated (successfully)."""
        return self.num_jobs - self.num_from_cache - self.num_failed

    @property
    def num_failed(self) -> int:
        """Jobs that raised instead of producing a payload."""
        return sum(1 for result in self.results if result.failed)

    @property
    def worker_pids(self) -> List[int]:
        """Distinct process ids that successfully computed jobs."""
        return sorted({result.worker_pid for result in self.results
                       if not result.from_cache and not result.failed})

    def payloads(self) -> List[Any]:
        """Per-job payloads in grid order."""
        return [result.payload for result in self.results]

    def summary(self) -> Dict[str, Any]:
        """JSON-safe report: statistics plus every job's params and payload."""
        return {
            "experiment": self.experiment,
            "grid": self.grid,
            "num_jobs": self.num_jobs,
            "num_from_cache": self.num_from_cache,
            "num_computed": self.num_computed,
            "num_failed": self.num_failed,
            "worker_pids": self.worker_pids,
            "seconds": self.seconds,
            "backend": self.backend,
            "stream_store": self.stream_store,
            "jobs": [result.describe() for result in self.results],
        }


def _default_max_workers(num_jobs: int) -> int:
    """Worker-count default: env override, else min(#jobs, max(cpus, 2), 8)."""
    override = os.environ.get(MAX_WORKERS_ENV)
    if override:
        return max(int(override), 1)
    cpus = os.cpu_count() or 1
    return max(1, min(num_jobs, max(cpus, 2), 8))


def _execute_job_batch(experiment: str,
                       batch: List[Tuple[int, Dict[str, Any]]]
                       ) -> List[Tuple[int, Any, float, int, Optional[str]]]:
    """Worker entry point: run a batch of jobs sharing stream affinity.

    Jobs in one batch agree on the experiment's affinity parameters, so
    running them back-to-back in one process lets process-local caches (the
    aging experiments' weight-stream cache) serve every job after the first.
    Failures are isolated per job: each outcome carries either a payload or
    an error string.
    """
    from repro.orchestration.runner import run_experiment

    outcomes: List[Tuple[int, Any, float, int, Optional[str]]] = []
    for index, params in batch:
        try:
            run = run_experiment(experiment, params, cache=None)
            outcomes.append((index, run.payload, run.seconds, os.getpid(), None))
        except Exception as error:  # job failure must not kill its batch
            outcomes.append((index, None, 0.0, os.getpid(),
                             f"{type(error).__name__}: {error}"))
    return outcomes


#: One batch as handed to an executor: ``[(job index, resolved params), ...]``.
JobBatch = List[Tuple[int, Dict[str, Any]]]

#: Per-job outcome tuple: ``(index, payload, seconds, pid, error)``.
JobOutcome = Tuple[int, Any, float, int, Optional[str]]


@dataclass
class BatchOutcome:
    """Result of one dispatched batch, as yielded by an executor.

    ``outcomes`` carries per-job results when the batch ran (individual jobs
    may still have failed — their ``error`` slot is set); ``error`` is set
    instead when the whole batch was lost (dead worker, serialization
    failure).  ``stream_store`` is the batch's stream-store counter delta,
    measured inside the process that ran it.
    """

    batch: JobBatch
    outcomes: Optional[List[JobOutcome]] = None
    error: Optional[str] = None
    stream_store: Optional[Dict[str, Any]] = None


def _execute_job_batch_tracked(experiment: str, batch: JobBatch
                               ) -> Tuple[List[JobOutcome],
                                          Optional[Dict[str, Any]]]:
    """Run a batch and sample the stream-store counter delta around it.

    In a fresh worker process the "before" snapshot is all zeros, so the
    delta equals the worker's absolute counters; inline (serial backend) it
    isolates this batch's traffic from earlier batches in the same process.
    """
    from repro.streamstore import stream_store_stats, stream_store_stats_delta

    before = stream_store_stats()
    outcomes = _execute_job_batch(experiment, batch)
    delta = stream_store_stats_delta(before, stream_store_stats())
    return outcomes, delta


class SerialSweepExecutor:
    """Run every batch inline in the calling process.

    The debugging/coverage backend: no fork, no pickling, deterministic
    ordering — and the same per-job isolation semantics as the process
    backend, because it reuses the identical batch entry point.
    """

    name = "serial"

    def submit_batches(self, experiment: str, batches: Iterable[JobBatch]
                       ) -> Iterator[BatchOutcome]:
        """Yield each batch's outcome, in submission order."""
        for batch in batches:
            try:
                outcomes, stats = _execute_job_batch_tracked(experiment, batch)
            except Exception as error:  # pragma: no cover - defensive
                yield BatchOutcome(batch=batch,
                                   error=f"{type(error).__name__}: {error}")
                continue
            yield BatchOutcome(batch=batch, outcomes=outcomes,
                               stream_store=stats)


class ProcessPoolSweepExecutor:
    """Fan batches out across a single-host process pool (the default)."""

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def submit_batches(self, experiment: str, batches: Iterable[JobBatch]
                       ) -> Iterator[BatchOutcome]:
        """Yield batch outcomes as workers complete them (any order)."""
        batches = list(batches)
        if not batches:
            return
        max_workers = (self.max_workers if self.max_workers
                       else _default_max_workers(len(batches)))
        max_workers = min(max_workers, len(batches))
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_job_batch_tracked, experiment, batch): batch
                for batch in batches
            }
            for future in concurrent.futures.as_completed(futures):
                batch = futures[future]
                try:
                    outcomes, stats = future.result()
                except Exception as error:  # a dead worker fails its batch only
                    yield BatchOutcome(batch=batch,
                                       error=f"{type(error).__name__}: {error}")
                    continue
                yield BatchOutcome(batch=batch, outcomes=outcomes,
                                   stream_store=stats)


class DaskSweepExecutor:
    """Fan batches out across a ``dask.distributed`` cluster.

    The import is constructor-guarded: selecting this backend without dask
    installed raises a :class:`ValueError` the CLI maps to a one-line usage
    error, and the rest of the library never imports dask.  Workers run the
    same batch entry point as the process backend; packed streams are not
    shipped over the wire — each worker resolves them via its own stream
    store (``DNN_LIFE_STREAM_STORE`` must point at storage shared with the
    cluster, which is what the content-addressed keys are for).
    """

    name = "dask"

    def __init__(self, max_workers: Optional[int] = None,
                 scheduler_address: Optional[str] = None):
        try:
            import dask.distributed  # noqa: F401 - availability probe only
        except ImportError:
            raise ValueError(
                "the 'dask' sweep backend requires the dask.distributed "
                "package, which is not installed")
        self.max_workers = max_workers
        self.scheduler_address = scheduler_address

    def _client(self):
        from dask.distributed import Client

        if self.scheduler_address:
            return Client(self.scheduler_address)
        return Client(n_workers=self.max_workers or _default_max_workers(1),
                      threads_per_worker=1)

    def submit_batches(self, experiment: str, batches: Iterable[JobBatch]
                       ) -> Iterator[BatchOutcome]:
        """Yield batch outcomes as the cluster completes them (any order)."""
        from dask.distributed import as_completed

        batches = list(batches)
        if not batches:
            return
        client = self._client()
        try:
            futures = {
                client.submit(_execute_job_batch_tracked, experiment, batch,
                              pure=False): batch
                for batch in batches
            }
            for future in as_completed(list(futures)):
                batch = futures[future]
                try:
                    outcomes, stats = future.result()
                except Exception as error:  # a lost worker fails its batch only
                    yield BatchOutcome(batch=batch,
                                       error=f"{type(error).__name__}: {error}")
                    continue
                yield BatchOutcome(batch=batch, outcomes=outcomes,
                                   stream_store=stats)
        finally:
            client.close()


def make_executor(backend: str = "process", max_workers: Optional[int] = None,
                  dask_scheduler: Optional[str] = None):
    """Instantiate a sweep executor by backend name.

    Unknown names and unavailable backends raise :class:`ValueError`, which
    the CLI surfaces as a one-line exit-2 usage error.
    """
    if backend == "process":
        return ProcessPoolSweepExecutor(max_workers=max_workers)
    if backend == "serial":
        return SerialSweepExecutor()
    if backend == "dask":
        return DaskSweepExecutor(max_workers=max_workers,
                                 scheduler_address=dask_scheduler)
    known = ", ".join(SWEEP_BACKENDS)
    raise ValueError(f"unknown sweep backend '{backend}'; known backends: {known}")


def _merge_store_stats(total: Optional[Dict[str, Any]],
                       delta: Optional[Dict[str, Any]]
                       ) -> Optional[Dict[str, Any]]:
    """Accumulate per-batch stream-store counter deltas into a total."""
    if delta is None:
        return total
    if total is None:
        return dict(delta)
    merged = dict(total)
    merged["root"] = delta["root"]
    for counter in ("hits", "misses", "puts", "corrupt"):
        merged[counter] = int(merged.get(counter, 0)) + int(delta.get(counter, 0))
    return merged


class SweepRunner:
    """Expand a parameter grid and run it through a sweep executor.

    Parameters
    ----------
    cache:
        Result cache shared by all jobs; ``None`` disables caching.
    max_workers:
        Parallelism of the fan-out (worker processes, dask workers, and the
        affinity-batch splitting target). ``None`` picks a default from the
        CPU count (overridable with ``DNN_LIFE_MAX_WORKERS``); ``1`` with
        the default backend runs every job serially in the calling process.
    registry:
        Experiment registry (defaults to the global one).
    backend:
        Executor backend: one of :data:`SWEEP_BACKENDS` (default
        ``"process"``), or any object implementing ``submit_batches``.
    dask_scheduler:
        Scheduler address for the ``dask`` backend (``None`` spins up a
        local cluster).
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 max_workers: Optional[int] = None,
                 registry: Optional[ExperimentRegistry] = None,
                 backend: Union[str, Any, None] = None,
                 dask_scheduler: Optional[str] = None):
        self.cache = cache
        self.max_workers = max_workers
        self.registry = registry
        self.backend = backend
        self.dask_scheduler = dask_scheduler

    # -- job construction --------------------------------------------------- #
    def build_jobs(self, experiment: str, grid: Mapping[str, Sequence[Any]],
                   base_seed: int = 0, full: bool = False) -> List[SweepJob]:
        """Expand ``grid`` into fully-resolved, deterministically-seeded jobs.

        When the experiment declares a ``seed`` parameter and the grid does
        not pin it, every job gets its own reproducible seed derived through
        :func:`~repro.utils.rng.deterministic_hash_seed` — stable across
        invocations (so the cache keeps working) yet distinct per workload.
        For experiments declaring stream ``affinity``, the seed is derived
        from the *affinity-relevant* subset of the grid point only: points
        that differ in, say, the mitigation policy then share both their
        seed and their weight stream — which matches the paper's evaluation
        protocol (policies compared on identical weights) and is what lets
        the affinity batches actually hit the per-worker stream cache.
        """
        from repro.orchestration.runner import resolve_params

        registry = self.registry or load_all_experiments()
        spec = registry.get(experiment)
        jobs: List[SweepJob] = []
        for index, point in enumerate(expand_grid(grid)):
            params = resolve_params(spec, point, full=full)
            if "seed" in spec.param_names() and "seed" not in point:
                seed_basis = ({name: value for name, value in point.items()
                               if name in spec.affinity}
                              if spec.affinity else point)
                params["seed"] = deterministic_hash_seed(
                    experiment, canonical_json(seed_basis), base_seed) % (2 ** 31)
            jobs.append(SweepJob(index=index, experiment=experiment, params=params,
                                 cache_key=cache_key(experiment, params)))
        return jobs

    # -- execution ----------------------------------------------------------- #
    def run(self, experiment: str, grid: Mapping[str, Sequence[Any]],
            base_seed: int = 0, full: bool = False) -> SweepReport:
        """Run the whole grid; cache hits are served without touching a worker."""
        start = time.perf_counter()
        jobs = self.build_jobs(experiment, grid, base_seed=base_seed, full=full)
        results: Dict[int, SweepJobResult] = {}
        pending: List[SweepJob] = []
        for job in jobs:
            payload = self.cache.get(job.cache_key) if self.cache is not None else None
            if payload is not None:
                results[job.index] = SweepJobResult(job, payload, True, 0.0, os.getpid())
            else:
                pending.append(job)

        max_workers = (self.max_workers if self.max_workers is not None
                       else _default_max_workers(len(pending)))
        executor = self._resolve_executor(max_workers, len(pending))
        store_totals: Optional[Dict[str, Any]] = None
        if pending:
            batches = self._affinity_batches(experiment, pending, max_workers)
            payload_batches: List[JobBatch] = [
                [(job.index, job.params) for job in batch] for batch in batches]
            jobs_by_index = {job.index: job for job in pending}
            for outcome in executor.submit_batches(experiment, payload_batches):
                if outcome.error is not None:
                    for index, _params in outcome.batch:
                        results[index] = self._failure(jobs_by_index[index],
                                                       outcome.error)
                else:
                    for index, payload, seconds, pid, error in (
                            outcome.outcomes or []):
                        job = jobs_by_index[index]
                        if error is None:
                            results[index] = self._record(job, payload,
                                                          seconds, pid)
                        else:
                            results[index] = SweepJobResult(job, None, False,
                                                            0.0, pid,
                                                            error=error)
                store_totals = _merge_store_stats(store_totals,
                                                  outcome.stream_store)

        report = SweepReport(
            experiment=experiment,
            grid={name: list(values) for name, values in grid.items()},
            results=[results[index] for index in sorted(results)],
            seconds=time.perf_counter() - start,
            backend=getattr(executor, "name", "custom"),
            stream_store=store_totals,
        )
        return report

    def _resolve_executor(self, max_workers: int, num_pending: int) -> Any:
        """The executor instance for this run.

        The default backend keeps the historical shortcut: one worker (or a
        single pending batch-of-one) runs inline instead of paying process
        startup.  Named backends are instantiated fresh per run; an executor
        *instance* is used as-is.
        """
        backend = self.backend
        if backend is not None and not isinstance(backend, str):
            return backend
        name = backend or "process"
        if name == "process" and (max_workers <= 1 or num_pending == 1):
            name = "serial"
        return make_executor(name, max_workers=max_workers,
                             dask_scheduler=self.dask_scheduler)

    def _affinity_batches(self, experiment: str, pending: List[SweepJob],
                          max_workers: int) -> List[List[SweepJob]]:
        """Partition pending jobs into worker batches along stream affinity.

        Jobs sharing the experiment's affinity-parameter values land in the
        same batch, so one worker computes their shared state (e.g. the
        quantized weight stream) once.  When affinity grouping would leave
        workers idle — fewer groups than workers — the largest batches are
        halved until the pool is saturated; splitting only costs the shared
        state one extra build, so saturation wins.  Experiments without an
        affinity declaration dispatch one job per batch, exactly as before.
        """
        registry = self.registry or load_all_experiments()
        spec = registry.get(experiment)
        if not spec.affinity:
            return [[job] for job in pending]
        grouped: Dict[str, List[SweepJob]] = {}
        for job in pending:
            key = canonical_json(list(spec.affinity_key(job.params)))
            grouped.setdefault(key, []).append(job)
        batches = list(grouped.values())
        while len(batches) < max_workers:
            largest = max(batches, key=len)
            if len(largest) <= 1:
                break
            half = len(largest) // 2
            batches.remove(largest)
            batches.extend([largest[:half], largest[half:]])
        # Deterministic dispatch order regardless of dict/split history.
        return sorted(batches, key=lambda batch: batch[0].index)

    def _record(self, job: SweepJob, payload: Any, seconds: float,
                pid: int) -> SweepJobResult:
        """Persist a freshly-computed payload and wrap it in a result record."""
        if self.cache is not None:
            self.cache.put(job.cache_key, payload, experiment=job.experiment,
                           params=job.params, normalized=True)
        return SweepJobResult(job, payload, False, seconds, pid)

    @staticmethod
    def _failure(job: SweepJob, error: Union[Exception, str]) -> SweepJobResult:
        """Result record for a job that raised (nothing cached)."""
        message = (error if isinstance(error, str)
                   else f"{type(error).__name__}: {error}")
        return SweepJobResult(job, None, False, 0.0, os.getpid(), error=message)
