"""Content-addressed memory-mapped store for packed weight streams."""

from repro.streamstore.store import (ORPHAN_AGE_GUARD_SECONDS, STORE_SCHEMA,
                                     STREAM_STORE_ENV,
                                     StreamStore, active_stream_store,
                                     default_stream_store_dir,
                                     packed_content_sha256,
                                     resolve_stream_store, stream_code_version,
                                     stream_store_key, stream_store_stats,
                                     stream_store_stats_delta)
from repro.streamstore.stream import StoredWeightStream

__all__ = [
    "ORPHAN_AGE_GUARD_SECONDS",
    "STORE_SCHEMA",
    "STREAM_STORE_ENV",
    "StoredWeightStream",
    "StreamStore",
    "active_stream_store",
    "default_stream_store_dir",
    "packed_content_sha256",
    "resolve_stream_store",
    "stream_code_version",
    "stream_store_key",
    "stream_store_stats",
    "stream_store_stats_delta",
]
