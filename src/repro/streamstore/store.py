"""Content-addressed on-disk store for packed weight-stream tensors.

Building a :class:`~repro.accelerator.scheduler.PackedBitTensor` is the
dominant cost of an aging design point (~30 s on the 512 KB benchmark
cases: re-quantizing the network plus bit-unpacking every block), and the
only cache before this module was the per-process LRU in
:mod:`repro.experiments.aging_runner` — every worker process paid the build
again.  The stream store persists the packed payload once, keyed by a
canonical hash of the stream-defining parameters, and reloads it with
:func:`numpy.memmap` in read-only mode:

* N workers on one host share a single physical copy through the page
  cache (the memmap is zero-copy all the way into the aging kernels);
* the build happens once per unique stream *ever*, not once per process;
* the PR 7 read-only aliasing contract (``setflags(write=False)``) holds by
  construction — ``mode='r'`` memmaps are born non-writeable.

On-disk layout (all writes atomic: temp file + ``os.replace``)::

    <root>/manifest.json          # store-level schema marker
    <root>/<key[:2]>/<key>.bin    # raw segments, 64-byte-aligned offsets
    <root>/<key[:2]>/<key>.json   # per-entry manifest (segment table etc.)

The entry manifest is written *after* its payload, so a manifest's presence
implies a complete payload; concurrent writers race benignly (both write
identical bytes, the later rename wins, nothing is ever observed half
written).  The payload file carries four segments in fixed order — ``bits``
(uint8), ``valid_mask`` (bool), ``regions`` (int64), ``valid_words``
(int64) — and the manifest pins their offsets, shapes, dtypes and the
SHA-256 of the whole payload, which is also the digest the golden-identity
tests compare against.

Keys mix the caller-supplied identity with :func:`stream_code_version`, a
digest over only the *stream-defining* source files (quantization,
scheduler, network construction) — editing an aging kernel or the CLI does
not invalidate multi-gigabyte stream entries, editing the quantizer does.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.accelerator.scheduler import PackedBitTensor
from repro.memory.geometry import MemoryGeometry
from repro.utils.serialization import canonical_json

__all__ = [
    "ORPHAN_AGE_GUARD_SECONDS",
    "STORE_SCHEMA",
    "STREAM_STORE_ENV",
    "StreamStore",
    "active_stream_store",
    "default_stream_store_dir",
    "packed_content_sha256",
    "resolve_stream_store",
    "stream_code_version",
    "stream_store_key",
    "stream_store_stats",
    "stream_store_stats_delta",
]

#: Environment variable controlling the stream store: unset/empty keeps the
#: default directory, a path moves it, ``0``/``off``/``none``/``disabled``
#: turns the store off entirely.
STREAM_STORE_ENV = "DNN_LIFE_STREAM_STORE"

#: Schema tag written into every manifest; bumped on layout changes so old
#: entries read as misses instead of mis-parsing.
STORE_SCHEMA = "dnn-life-streamstore/v1"

#: Values of :data:`STREAM_STORE_ENV` that disable the store.
_DISABLED_VALUES = frozenset({"0", "off", "none", "disabled", "false"})

#: Segment byte offsets are rounded up to this alignment so the memmapped
#: views start on cache-line boundaries.
_ALIGNMENT = 64

#: Fixed segment order inside an entry's payload file.
_SEGMENT_ORDER = ("bits", "valid_mask", "regions", "valid_words")

#: Chunk size (bytes) for streaming payload bytes to disk / into a digest.
_CHUNK_BYTES = 1 << 24

#: Orphaned files (payloads with no manifest, crashed writers' ``*.tmp``)
#: younger than this are left alone by the sweeps: an in-flight writer's
#: payload exists manifest-less for a moment, and deleting its temp file
#: out from under it would turn an atomic write into an I/O error.
ORPHAN_AGE_GUARD_SECONDS = 3600.0

#: Source files (relative to the ``repro`` package root) that determine the
#: *content* of a packed stream.  Only edits to these invalidate store
#: entries; the full :func:`~repro.orchestration.cache.code_version` would
#: churn multi-gigabyte entries on every unrelated change.
_STREAM_SOURCE_PREFIXES = (
    "accelerator/",
    "nn/",
    "quantization/",
    "memory/geometry.py",
    "experiments/common.py",
    "utils/rng.py",
)


def default_stream_store_dir() -> Path:
    """Default store root: ``<result cache dir>/streams``.

    Piggybacking on :func:`~repro.orchestration.cache.default_cache_dir`
    means ``DNN_LIFE_CACHE_DIR`` (and the test suite's per-test cache
    isolation) relocates the stream store too.
    """
    from repro.orchestration.cache import default_cache_dir

    return default_cache_dir() / "streams"


@lru_cache(maxsize=1)
def stream_code_version() -> str:
    """Digest over the stream-defining subset of the package sources."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for prefix in _STREAM_SOURCE_PREFIXES:
        target = package_root / prefix
        paths = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in paths:
            if not path.is_file():
                continue
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()[:16]


def stream_store_key(kind: str, identity: Dict[str, Any]) -> str:
    """Content-addressed key of one packed stream.

    ``kind`` namespaces the identity (``"workload"`` for network streams,
    ``"synthetic"`` for generated benchmark streams); the stream code
    version folds in so quantizer/scheduler changes miss cleanly.
    """
    payload = {
        "kind": kind,
        "identity": identity,
        "stream_code_version": stream_code_version(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _array_chunks(array: np.ndarray) -> Iterator[np.ndarray]:
    """Yield an array's raw bytes as flat uint8 chunks (no full-size copy)."""
    flat = np.ascontiguousarray(array).reshape(-1).view(np.uint8)
    for start in range(0, flat.size, _CHUNK_BYTES):
        yield flat[start:start + _CHUNK_BYTES]


def _segment_arrays(packed: PackedBitTensor) -> List[Tuple[str, np.ndarray]]:
    """The four persisted segments of a packed tensor, in payload order."""
    return [
        ("bits", packed.bits),
        ("valid_mask", np.ascontiguousarray(packed.valid_mask())),
        ("regions", packed.regions),
        ("valid_words", packed.valid_words),
    ]


def _payload_layout(packed: PackedBitTensor
                    ) -> Tuple[List[Tuple[str, int, int, np.ndarray]], int]:
    """Plan the payload file: ``[(name, pad, offset, array)]`` plus total size."""
    plan: List[Tuple[str, int, int, np.ndarray]] = []
    offset = 0
    for name, array in _segment_arrays(packed):
        pad = (-offset) % _ALIGNMENT
        offset += pad
        plan.append((name, pad, offset, array))
        offset += int(array.nbytes)
    return plan, offset


def packed_content_sha256(packed: PackedBitTensor) -> str:
    """SHA-256 of a packed tensor's payload bytes (exactly as stored on disk).

    Computed over the same segment order and alignment padding the store
    writes, so ``packed_content_sha256(built) == manifest["payload_sha256"]
    == packed_content_sha256(loaded)`` is the bit-identity invariant the
    golden tests pin.
    """
    digest = hashlib.sha256()
    plan, _total = _payload_layout(packed)
    for _name, pad, _offset, array in plan:
        if pad:
            digest.update(b"\x00" * pad)
        for chunk in _array_chunks(array):
            digest.update(memoryview(chunk))
    return digest.hexdigest()


class StreamStore:
    """Content-addressed store of :class:`PackedBitTensor` payloads.

    Writes are atomic and idempotent; loads are read-only memmaps.  The
    per-process ``hits``/``misses``/``puts``/``corrupt`` counters back the
    sweep report's stream-store accounting.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.orphan_files_reclaimed = 0
        self.orphan_bytes_reclaimed = 0

    # -- layout -------------------------------------------------------------- #
    def manifest_path(self, key: str) -> Path:
        """Path of the per-entry manifest (its presence marks a valid entry)."""
        return self.root / key[:2] / f"{key}.json"

    def payload_path(self, key: str) -> Path:
        """Path of the raw segment payload for ``key``."""
        return self.root / key[:2] / f"{key}.bin"

    def __contains__(self, key: str) -> bool:
        return self.manifest_path(key).is_file()

    def _write_store_manifest(self) -> None:
        """Drop the store-level schema marker (atomic, first write only)."""
        marker = self.root / "manifest.json"
        if marker.is_file():
            return
        payload = {"schema": STORE_SCHEMA, "layout": list(_SEGMENT_ORDER),
                   "alignment": _ALIGNMENT}
        _atomic_write_json(marker, payload)

    # -- writing ------------------------------------------------------------- #
    def put(self, key: str, packed: PackedBitTensor,
            describe: Optional[Dict[str, Any]] = None) -> Path:
        """Persist ``packed`` under ``key``; idempotent and concurrent-safe.

        An existing manifest means an identical payload is already on disk
        (content addressing), so the write is skipped — the loser of a
        two-process race discards its work.  Otherwise the payload file
        lands first, then the manifest; both through temp-file +
        ``os.replace``, so a crash or concurrent reader never observes a
        partial entry.
        """
        manifest_path = self.manifest_path(key)
        if manifest_path.is_file():
            return manifest_path
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        self._write_store_manifest()

        plan, total_bytes = _payload_layout(packed)
        digest = hashlib.sha256()
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=manifest_path.parent, suffix=".bin.tmp", delete=False)
        try:
            with handle:
                for _name, pad, _offset, array in plan:
                    if pad:
                        padding = b"\x00" * pad
                        handle.write(padding)
                        digest.update(padding)
                    for chunk in _array_chunks(array):
                        view = memoryview(chunk)
                        handle.write(view)
                        digest.update(view)
            os.replace(handle.name, self.payload_path(key))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

        manifest = {
            "schema": STORE_SCHEMA,
            "key": key,
            "nbytes": total_bytes,
            "payload_sha256": digest.hexdigest(),
            "segments": {
                name: {"offset": offset, "shape": list(array.shape),
                       "dtype": str(array.dtype)}
                for name, _pad, offset, array in plan
            },
            "geometry": {
                "capacity_bytes": int(packed.geometry.capacity_bytes),
                "word_bits": int(packed.geometry.word_bits),
            },
            "fifo_depth_tiles": int(packed.fifo_depth_tiles),
            "num_blocks": packed.num_blocks,
            "words_per_block": packed.words_per_block,
            "describe": describe or {},
            "stream_code_version": stream_code_version(),
            "created_unix": time.time(),  # dnn-lint: disable=DL002
        }
        _atomic_write_json(manifest_path, manifest)
        self.puts += 1
        return manifest_path

    def offer(self, key: str, packed: PackedBitTensor,
              describe: Optional[Dict[str, Any]] = None) -> bool:
        """Best-effort :meth:`put` — I/O failures degrade to "not stored"."""
        try:
            self.put(key, packed, describe=describe)
            return True
        except OSError:
            return False

    # -- loading ------------------------------------------------------------- #
    def _load(self, key: str
              ) -> Optional[Tuple[PackedBitTensor, Dict[str, Any]]]:
        """Load an entry, or ``None`` on a miss/corrupt entry (counted)."""
        manifest_path = self.manifest_path(key)
        if not manifest_path.is_file():
            self.misses += 1
            return None
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if manifest.get("schema") != STORE_SCHEMA:
                raise ValueError(f"unknown schema {manifest.get('schema')!r}")
            payload_path = self.payload_path(key)
            expected = int(manifest["nbytes"])
            actual = payload_path.stat().st_size
            if actual != expected:
                raise ValueError(
                    f"payload is {actual} bytes, manifest says {expected}")
            segments: Dict[str, np.ndarray] = {}
            for name in _SEGMENT_ORDER:
                spec = manifest["segments"][name]
                segments[name] = np.memmap(
                    payload_path, dtype=np.dtype(str(spec["dtype"])), mode="r",
                    offset=int(spec["offset"]), shape=tuple(spec["shape"]))
            geometry = MemoryGeometry(
                capacity_bytes=int(manifest["geometry"]["capacity_bytes"]),
                word_bits=int(manifest["geometry"]["word_bits"]))
            packed = PackedBitTensor(
                bits=segments["bits"], regions=segments["regions"],
                valid_words=segments["valid_words"], geometry=geometry,
                fifo_depth_tiles=int(manifest["fifo_depth_tiles"]))
            # Pre-seed the lazy mask with the persisted segment: mode='r'
            # memmaps are already non-writeable, satisfying the cache's
            # read-only contract without a recompute.
            packed._valid_mask = segments["valid_mask"]
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated payloads, mangled JSON, schema drift: all read as a
            # miss so the caller rebuilds.  The manifest is dropped first
            # (its presence is what marks an entry valid), then the payload
            # — otherwise the self-heal strands a manifest-less .bin that no
            # maintenance pass would ever reclaim.  The rebuild's put()
            # repairs the entry instead of short-circuiting on it.
            self.corrupt += 1
            self.misses += 1
            for stale in (manifest_path, self.payload_path(key)):
                try:
                    stale.unlink()
                except OSError:
                    pass
            return None
        self.hits += 1
        try:
            os.utime(manifest_path)  # refresh mtime == last-used, for gc()
        except OSError:
            pass
        return packed, manifest

    def get(self, key: str) -> Optional[PackedBitTensor]:
        """The stored packed tensor for ``key``, memmapped, or ``None``."""
        loaded = self._load(key)
        return None if loaded is None else loaded[0]

    def load_stream(self, key: str) -> Optional["StoredWeightStream"]:
        """The stored entry as a stream-compatible wrapper, or ``None``."""
        from repro.streamstore.stream import StoredWeightStream

        loaded = self._load(key)
        if loaded is None:
            return None
        packed, manifest = loaded
        return StoredWeightStream(packed, describe=dict(manifest["describe"]),
                                  key=key)

    # -- maintenance --------------------------------------------------------- #
    def _manifest_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("??/*.json")

    def _orphan_paths(self) -> Iterator[Path]:
        """Files under the root no live manifest accounts for.

        Two species: crashed writers' ``*.bin.tmp``/``*.json.tmp`` leftovers
        (the manifest glob above never matches them — ``*.json`` is not
        ``*.json.tmp``), and ``.bin`` payloads whose manifest is gone (e.g.
        stranded by the pre-fix corrupt self-heal, or by a crash between the
        two unlinks of :meth:`_remove_entry`).
        """
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*"):
            if path.name.endswith(".tmp"):
                yield path
            elif path.suffix == ".bin" and not path.with_suffix(".json").is_file():
                yield path

    def sweep_orphans(self, now: Optional[float] = None,
                      age_guard: float = ORPHAN_AGE_GUARD_SECONDS
                      ) -> Dict[str, int]:
        """Reclaim orphaned payloads and temp files older than ``age_guard``.

        Files younger than the guard are presumed in-flight (a writer's
        payload legitimately precedes its manifest) and kept.  Races with
        concurrent sweeps or writers are tolerated: a path that vanishes
        between listing, ``stat`` and ``unlink`` is simply skipped.  Returns
        the reclaimed ``{"files", "bytes"}`` and accumulates them on the
        ``orphan_files_reclaimed``/``orphan_bytes_reclaimed`` counters.
        """
        reference = time.time() if now is None else now  # dnn-lint: disable=DL002
        cutoff = reference - float(age_guard)
        files = 0
        nbytes = 0
        for path in list(self._orphan_paths()):
            try:
                stat = path.stat()
            except OSError:
                continue
            if stat.st_mtime >= cutoff:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            files += 1
            nbytes += stat.st_size
        self.orphan_files_reclaimed += files
        self.orphan_bytes_reclaimed += nbytes
        return {"files": files, "bytes": nbytes}

    def orphan_bytes(self) -> int:
        """Current orphaned footprint in bytes (no age filter — pure audit)."""
        total = 0
        for path in self._orphan_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def entries(self) -> List[Dict[str, Any]]:
        """Per-entry records (key, geometry, size, timestamps), newest first."""
        records: List[Dict[str, Any]] = []
        for manifest_path in self._manifest_paths():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                stat = manifest_path.stat()
                payload_bytes = self.payload_path(manifest["key"]).stat().st_size
            except (OSError, ValueError, KeyError):
                continue
            records.append({
                "key": str(manifest.get("key", manifest_path.stem)),
                "nbytes": payload_bytes,
                "geometry": manifest.get("geometry", {}),
                "fifo_depth_tiles": manifest.get("fifo_depth_tiles"),
                "num_blocks": manifest.get("num_blocks"),
                "describe": manifest.get("describe", {}),
                "created_unix": manifest.get("created_unix"),
                "last_used_unix": stat.st_mtime,
            })
        records.sort(key=lambda record: record["last_used_unix"], reverse=True)
        return records

    def stats(self) -> Dict[str, Any]:
        """Entry count / footprint plus this process' counters."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(record["nbytes"] for record in entries),
            "orphan_bytes": self.orphan_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
        }

    def _remove_entry(self, manifest_path: Path) -> None:
        """Remove one entry: manifest first, so readers never see a half-entry."""
        payload_path = manifest_path.with_suffix(".bin")
        manifest_path.unlink(missing_ok=True)
        payload_path.unlink(missing_ok=True)

    def clear(self, now: Optional[float] = None) -> int:
        """Delete every entry; returns the number removed.

        Also sweeps aged orphans (manifest-less payloads, crashed writers'
        temp files) so a cleared store's footprint actually reaches zero;
        the sweep's yield lands on the orphan counters, not in the return
        value.  ``now`` pins the sweep's age-guard reference for tests.
        """
        removed = 0
        for manifest_path in list(self._manifest_paths()):
            self._remove_entry(manifest_path)
            removed += 1
        self.sweep_orphans(now=now)
        return removed

    def gc(self, unused_seconds: float,
           now: Optional[float] = None) -> int:
        """Delete entries not used (loaded or written) for ``unused_seconds``.

        Every successful load touches the manifest mtime, so "unused" means
        genuinely cold, not merely old.  Aged orphans are swept alongside
        (counted on the orphan counters, not in the return value).  ``now``
        pins the reference time for deterministic tests; the default reads
        the wall clock.
        """
        reference = time.time() if now is None else now  # dnn-lint: disable=DL002
        cutoff = reference - float(unused_seconds)
        removed = 0
        for manifest_path in list(self._manifest_paths()):
            try:
                mtime = manifest_path.stat().st_mtime
            except OSError:
                continue
            if mtime < cutoff:
                self._remove_entry(manifest_path)
                removed += 1
        self.sweep_orphans(now=reference)
        return removed


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write JSON through a temp file + ``os.replace`` in ``path``'s directory."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, suffix=".json.tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


#: Process-local store instances, memoized per resolved root so hit/miss/put
#: counters accumulate across call sites (the sweep report reads them).
_STORES: Dict[str, StreamStore] = {}


def _store_at(root: Union[str, Path]) -> StreamStore:
    resolved = str(Path(root).expanduser())
    store = _STORES.get(resolved)
    if store is None:
        store = StreamStore(resolved)
        _STORES[resolved] = store
    return store


def resolve_stream_store(root: Union[str, Path, None] = None
                         ) -> Optional[StreamStore]:
    """Resolve the stream store: explicit ``root``, else :data:`STREAM_STORE_ENV`.

    Returns ``None`` when the store is disabled (env set to one of
    ``0/off/none/disabled/false``).  An unset or empty variable keeps the
    store on at :func:`default_stream_store_dir`.
    """
    if root is not None:
        return _store_at(root)
    override = os.environ.get(STREAM_STORE_ENV, "")
    if override.strip().lower() in _DISABLED_VALUES:
        return None
    if override.strip():
        return _store_at(override.strip())
    return _store_at(default_stream_store_dir())


def active_stream_store() -> Optional[StreamStore]:
    """The environment-resolved stream store, or ``None`` when disabled."""
    return resolve_stream_store(None)


def stream_store_stats(store: Optional[StreamStore] = None
                       ) -> Optional[Dict[str, Any]]:
    """Counter snapshot of the (active) store — ``None`` when disabled.

    Cheap by design (no directory walk): only the in-process counters, which
    is what the sweep executors sample before/after each batch.
    """
    if store is None:
        store = active_stream_store()
    if store is None:
        return None
    return {"root": str(store.root), "hits": store.hits,
            "misses": store.misses, "puts": store.puts,
            "corrupt": store.corrupt}


def stream_store_stats_delta(before: Optional[Dict[str, Any]],
                             after: Optional[Dict[str, Any]]
                             ) -> Optional[Dict[str, Any]]:
    """Counter delta between two :func:`stream_store_stats` snapshots.

    In a freshly-spawned worker process ``before`` is the zero snapshot, so
    the delta is the worker's absolute counters — exactly what the parent
    aggregates across batches.  A root change between snapshots resets the
    baseline (counters belong to different stores).
    """
    if after is None:
        return None
    baseline = before if before and before.get("root") == after.get("root") else {}
    return {
        "root": after["root"],
        **{counter: int(after[counter]) - int(baseline.get(counter, 0))
           for counter in ("hits", "misses", "puts", "corrupt")},
    }
