"""Stream-interface adapter over a store-loaded packed tensor.

:class:`StoredWeightStream` exposes the :data:`~repro.accelerator.scheduler.StreamLike`
surface the simulators consume — ``geometry`` / ``words_per_block`` /
``fifo_depth_tiles`` / ``num_blocks`` / ``iter_blocks()`` / ``packed_bits()``
— backed entirely by a memory-mapped :class:`PackedBitTensor`.  The packed
fast path costs nothing extra (``packed_bits()`` returns the mmap-backed
tensor directly); the explicit/blockwise cross-check engines get their
:class:`WeightBlock` sequence reconstructed lazily from the stored bits via
:func:`~repro.quantization.bitops.pack_bits_to_words`, which is the exact
inverse of the unpacking done at build time — so both engines see the same
bits whether the stream was built or loaded.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.accelerator.scheduler import (PackedBitTensor, WeightBlock,
                                         _freeze, _storage_dtype)
from repro.memory.geometry import MemoryGeometry

__all__ = ["StoredWeightStream"]


class StoredWeightStream:
    """A weight stream reloaded from the on-disk stream store."""

    def __init__(self, packed: PackedBitTensor,
                 describe: Optional[Dict[str, Any]] = None,
                 key: Optional[str] = None):
        self._packed = packed
        self._describe = dict(describe or {})
        self.store_key = key

    # -- StreamLike surface -------------------------------------------------- #
    @property
    def geometry(self) -> MemoryGeometry:
        """Geometry of the underlying weight memory."""
        return self._packed.geometry

    @property
    def words_per_block(self) -> int:
        """Words per (padded) block."""
        return self._packed.words_per_block

    @property
    def fifo_depth_tiles(self) -> int:
        """FIFO depth of the stored schedule."""
        return self._packed.fifo_depth_tiles

    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference."""
        return self._packed.num_blocks

    def packed_bits(self) -> PackedBitTensor:
        """The memory-mapped packed tensor (shared, read-only)."""
        return self._packed

    def iter_blocks(self) -> Iterator[WeightBlock]:
        """Reconstruct the block sequence from the stored bits, lazily.

        Word values are repacked from the bit tensor with the exact inverse
        of the build-time unpacking, so the blockwise engines replay the
        stream bit-identically to a freshly-built one.  Layer provenance is
        not persisted; blocks carry a placeholder layer name.
        """
        packed = self._packed
        dtype = _storage_dtype(packed.word_bits)
        from repro.quantization.bitops import pack_bits_to_words

        for index in range(packed.num_blocks):
            valid = int(packed.valid_words[index])
            words = pack_bits_to_words(
                packed.bits[index, :valid], packed.word_bits).astype(dtype)
            yield WeightBlock(index=index, words=_freeze(words),
                              region=int(packed.regions[index]),
                              layer_names=("stored",))

    def describe(self) -> Dict[str, Any]:
        """The schedule description persisted alongside the payload."""
        if self._describe:
            return dict(self._describe)
        return {
            "word_bits": self._packed.word_bits,
            "memory_capacity_bytes": self._packed.geometry.capacity_bytes,
            "memory_rows": self._packed.geometry.rows,
            "words_per_block": self._packed.words_per_block,
            "fifo_depth_tiles": self._packed.fifo_depth_tiles,
            "num_blocks_per_inference": self._packed.num_blocks,
        }
