"""Unit constants and human-readable formatting helpers."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def bytes_to_bits(num_bytes: int) -> int:
    """Convert a byte count to a bit count."""
    return int(num_bytes) * 8


def bits_to_bytes(num_bits: int) -> int:
    """Convert a bit count to bytes, rounding up to whole bytes."""
    return (int(num_bits) + 7) // 8


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit (``512.0 KB``)."""
    value = float(num_bytes)
    for unit, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= scale:
            return f"{value / scale:.1f} {unit}"
    return f"{value:.0f} B"


def format_energy(joules: float) -> str:
    """Render an energy value with an SI prefix (pJ / nJ / uJ / mJ / J)."""
    value = float(joules)
    for unit, scale in (("J", 1.0), ("mJ", 1e-3), ("uJ", 1e-6), ("nJ", 1e-9), ("pJ", 1e-12)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value / 1e-15:.2f} fJ"


def format_power(watts: float) -> str:
    """Render a power value with an SI prefix (nW / uW / mW / W)."""
    value = float(watts)
    for unit, scale in (("W", 1.0), ("mW", 1e-3), ("uW", 1e-6), ("nW", 1e-9)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value / 1e-12:.2f} pW"


def format_time(seconds: float) -> str:
    """Render a delay/time value with an SI prefix (ps / ns / us / ms / s)."""
    value = float(seconds)
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6), ("ns", 1e-9), ("ps", 1e-12)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value / 1e-15:.2f} fs"


def years_to_seconds(years: float) -> float:
    """Convert years to seconds (Julian year of 365.25 days)."""
    return float(years) * SECONDS_PER_YEAR


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to years (Julian year of 365.25 days)."""
    return float(seconds) / SECONDS_PER_YEAR
