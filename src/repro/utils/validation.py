"""Argument-validation helpers with consistent error messages.

The numeric checks are written as negated comparisons (``not value > 0``
instead of ``value <= 0``) on purpose: NaN fails every ordering comparison,
so a NaN input is *rejected* rather than slipping through and propagating
into results.
"""

from __future__ import annotations

import math
from typing import Optional


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default); NaN is rejected."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_finite(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive *and* finite.

    The single source of the positive-and-finite rule physical quantities
    (supply voltage, clock frequency) share; NaN and infinities are rejected
    alongside non-positive values with one consistent message.
    """
    value = float(value)
    if not math.isfinite(value) or not value > 0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return float(value)


def check_in_range(value: float, name: str, low: Optional[float] = None,
                   high: Optional[float] = None, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in the given (optionally open) interval."""
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def check_temperature_celsius(value: float, name: str = "temperature") -> float:
    """Validate a finite physical temperature in degrees Celsius (> absolute zero)."""
    if not math.isfinite(value) or not value > -273.15:
        raise ValueError(f"{name} must be a finite value above absolute zero "
                         f"(-273.15C), got {value}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value
