"""ASCII rendering of tables, histograms and series.

The benchmark harness prints the same rows/series the paper reports.  Since no
plotting library is available offline, figures are rendered as text tables and
horizontal bar histograms which preserve the information content (the series
values) of the original plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class AsciiTable:
    """A minimal ASCII table builder used by experiment reports.

    Examples
    --------
    >>> table = AsciiTable(["policy", "mean SNM deg. [%]"], title="Fig. 9")
    >>> table.add_row(["no mitigation", 19.73])
    >>> print(table.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: Optional[str] = None
    precision: int = 3
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, row: Sequence[object]) -> None:
        """Append a row; its length must match the header count."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        """Append several rows at once."""
        for row in rows:
            self.add_row(row)

    def render(self) -> str:
        """Render the table as an ASCII string."""
        text_rows = [[_format_cell(c, self.precision) for c in row] for row in self.rows]
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in text_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

        separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(separator)
        lines.append(render_line(headers))
        lines.append(separator)
        for row in text_rows:
            lines.append(render_line(row))
        lines.append(separator)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_histogram(bin_labels: Sequence[str], percentages: Sequence[Number],
                     title: Optional[str] = None, width: int = 50) -> str:
    """Render a horizontal bar histogram (used for the Fig. 9/11 style plots).

    Parameters
    ----------
    bin_labels:
        Label of each histogram bin (e.g. SNM-degradation ranges).
    percentages:
        Percentage of cells in each bin (0..100).
    width:
        Number of characters used for a 100% bar.
    """
    if len(bin_labels) != len(percentages):
        raise ValueError("bin_labels and percentages must have equal length")
    label_width = max((len(str(label)) for label in bin_labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, pct in zip(bin_labels, percentages):
        bar = "#" * int(round(float(pct) / 100.0 * width))
        lines.append(f"{str(label).rjust(label_width)} | {float(pct):6.2f}% {bar}")
    return "\n".join(lines)


def format_series(x_values: Sequence[Number], y_values: Sequence[Number],
                  x_name: str = "x", y_name: str = "y",
                  title: Optional[str] = None, precision: int = 4) -> str:
    """Render a two-column series (used for curve-style figures)."""
    if len(x_values) != len(y_values):
        raise ValueError("x_values and y_values must have equal length")
    table = AsciiTable([x_name, y_name], title=title, precision=precision)
    for x, y in zip(x_values, y_values):
        table.add_row([x, y])
    return table.render()
