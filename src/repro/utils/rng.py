"""Deterministic random-number-generation helpers.

Every stochastic component in the library (synthetic weight generation, the
True Random Bit Generator models, Monte-Carlo duty-cycle simulation) accepts
either a seed, an existing :class:`numpy.random.Generator`, or ``None``.  The
helpers in this module normalise those inputs so that experiments are
reproducible end-to-end from a single seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed.

    The returned generators are independent even when ``seed`` is ``None``;
    when ``seed`` is an integer the whole family is reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the parent's bit generator state in a
        # reproducible way by drawing child seeds from the parent.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngMixin:
    """Mixin for classes that own a random generator.

    Sub-classes call :meth:`_init_rng` in ``__init__`` and use ``self.rng``
    afterwards.  ``reseed`` restores a reproducible state, which the tests use
    to verify that stochastic components are deterministic under a fixed seed.
    """

    _rng: np.random.Generator

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._seed = seed if not isinstance(seed, np.random.Generator) else None
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The generator driving this component's randomness."""
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal generator with a freshly seeded one."""
        self._seed = seed if not isinstance(seed, np.random.Generator) else None
        self._rng = as_rng(seed)


def random_bits(rng: np.random.Generator, shape: Union[int, Iterable[int]],
                probability_of_one: float = 0.5) -> np.ndarray:
    """Draw a ``uint8`` array of 0/1 bits with the given probability of one."""
    if not 0.0 <= probability_of_one <= 1.0:
        raise ValueError(
            f"probability_of_one must be within [0, 1], got {probability_of_one}"
        )
    return (rng.random(shape) < probability_of_one).astype(np.uint8)


def deterministic_hash_seed(*parts: Optional[object]) -> int:
    """Build a stable 63-bit seed from arbitrary hashable parts.

    Used to give every (network, layer, block) combination its own
    reproducible stream without storing per-block seeds explicitly.
    """
    # A small FNV-1a style mix keeps this independent from PYTHONHASHSEED.
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
