"""Shared utilities for the DNN-Life reproduction.

This package contains small, dependency-free helpers used across the rest of
the library: deterministic random-number handling, argument validation,
ASCII table / histogram rendering for experiment reports, unit conversions and
light-weight serialization of experiment results.
"""

from repro.utils.rng import RngMixin, as_rng, spawn_rngs
from repro.utils.tables import AsciiTable, format_histogram, format_series
from repro.utils.units import (
    KB,
    MB,
    GB,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_energy,
    format_power,
    format_time,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_power_of_two,
)

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rngs",
    "AsciiTable",
    "format_histogram",
    "format_series",
    "KB",
    "MB",
    "GB",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bytes",
    "format_energy",
    "format_power",
    "format_time",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_power_of_two",
]
