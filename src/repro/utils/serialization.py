"""Serialization helpers for experiment results.

Experiment drivers return plain dataclasses / dictionaries; these helpers save
them to JSON (for the human-readable reports committed next to the benchmark
outputs) and load them back for comparisons.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy types into JSON-safe values.

    Objects exposing a ``to_payload()`` method (e.g.
    :class:`repro.core.simulation.AgingResult`) serialize through it, which is
    what lets experiment results travel through the orchestration layer's
    result cache and sweep workers.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload_method = getattr(obj, "to_payload", None)
        if callable(payload_method):
            return to_jsonable(payload_method())
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(value) for value in obj)
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic, compact JSON encoding of ``obj``.

    Keys are sorted and separators are fixed, so equal values always encode
    to the same string — the property the orchestration cache keys rely on.
    """
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def save_json(obj: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialize ``obj`` (dataclass / dict / numpy) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON file previously written with :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
