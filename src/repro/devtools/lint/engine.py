"""Lint driver: file walking, suppression handling, reports and formats.

The engine parses every ``*.py`` file under the lint root with :mod:`ast`,
runs each registered rule over the module (sharing one provenance pass), and
filters findings through per-line suppression comments::

    created = time.time()  # dnn-lint: disable=DL002  (bench metadata)

``disable=all`` silences every rule on that line; multiple codes separate
with commas.  Suppressions are per-physical-line by design — a suppression
that drifts away from the construct it excuses stops working, loudly.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.lint.rules import ALL_RULES, Finding, ModuleContext, Rule

#: Schema version of the ``--format json`` report.
JSON_SCHEMA_VERSION = 1

_SUPPRESSION = re.compile(r"#\s*dnn-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")


def suppressed_codes(line: str) -> Optional[frozenset]:
    """Codes suppressed on one source line; ``None`` when nothing is.

    Returns the sentinel ``frozenset({"all"})`` for ``disable=all``.
    """
    match = _SUPPRESSION.search(line)
    if match is None:
        return None
    raw = match.group(1).strip()
    if raw == "all":
        return frozenset({"all"})
    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


@dataclass
class LintReport:
    """Outcome of one lint run: findings plus coverage accounting."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_payload(self) -> dict:
        """The stable ``--format json`` schema."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "root": self.root,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "suppressed": self.suppressed,
            "counts": self.counts_by_code(),
            "findings": [finding.to_payload() for finding in self.findings],
            "errors": list(self.errors),
        }

    def render_text(self) -> str:
        """Human-readable report: one diagnostic per line plus a footer."""
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {message}" for message in self.errors)
        status = "clean" if self.clean else f"{len(self.findings)} finding(s)"
        suppressed = (f", {self.suppressed} suppressed" if self.suppressed else "")
        lines.append(f"dnn-life lint: {status} across {self.files_checked} "
                     f"file(s){suppressed}")
        return "\n".join(lines)


class LintEngine:
    """Run a rule set over files or directory trees of Python sources."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules: List[Rule] = list(rules if rules is not None else ALL_RULES)

    # -- single file ------------------------------------------------------ #
    def lint_source(self, source: str, path: str = "<string>",
                    rel: Optional[str] = None) -> List[Finding]:
        """Lint one source string; raises ``SyntaxError`` on unparsable input."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        ctx = ModuleContext(path=path, rel=rel if rel is not None else path,
                            tree=tree, source_lines=lines)
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        findings.sort(key=lambda f: (f.line, f.col, f.code))
        return findings

    def _split_suppressed(self, findings: List[Finding],
                          lines: Sequence[str]) -> tuple:
        kept: List[Finding] = []
        dropped = 0
        for finding in findings:
            line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
            codes = suppressed_codes(line)
            if codes is not None and ("all" in codes or finding.code in codes):
                dropped += 1
            else:
                kept.append(finding)
        return kept, dropped

    # -- trees ------------------------------------------------------------ #
    def lint_paths(self, paths: Sequence[Path], root: Path) -> LintReport:
        """Lint files/directories, reporting paths relative to ``root``."""
        root = root.resolve()
        report = LintReport(root=str(root))
        for file_path in self._collect_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:
                report.errors.append(f"{file_path}: unreadable ({error})")
                continue
            try:
                rel = file_path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            try:
                findings = self.lint_source(source, path=rel, rel=rel)
            except SyntaxError as error:
                report.errors.append(f"{rel}:{error.lineno}: syntax error: "
                                     f"{error.msg}")
                continue
            kept, dropped = self._split_suppressed(findings, source.splitlines())
            report.findings.extend(kept)
            report.suppressed += dropped
            report.files_checked += 1
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return report

    @staticmethod
    def _collect_files(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts))
            elif path.suffix == ".py":
                files.append(path)
        return files


def default_lint_root() -> Path:
    """The shipped source tree: the directory *containing* the repro package.

    Relative paths under this root read ``repro/...``, which is the identity
    the rule allowlists are written against, both in a repo checkout
    (``src/``) and for an installed package (``site-packages/``).
    """
    import repro

    return Path(repro.__file__).resolve().parent.parent


def run_lint(paths: Optional[Sequence[str]] = None,
             root: Optional[str] = None,
             rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint the shipped sources (or explicit paths) and return the report."""
    base = Path(root).resolve() if root else default_lint_root()
    targets = ([Path(p) for p in paths] if paths
               else [base / "repro"])
    return LintEngine(rules).lint_paths(targets, base)


def render_report(report: LintReport, fmt: str = "text") -> str:
    """Render a report in ``text`` or ``json`` format."""
    if fmt == "json":
        return json.dumps(report.to_payload(), indent=2, sort_keys=True)
    if fmt == "text":
        return report.render_text()
    raise ValueError(f"unknown lint format '{fmt}' (expected: text, json)")
