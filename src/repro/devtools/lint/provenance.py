"""Lightweight inferred-type / alias tracking for the lint rules.

The determinism and aliasing contracts this package enforces are about
*where a value came from*: a ``.sum()`` is only dangerous when the receiver
is a narrow unsigned bit tensor, a slice assignment is only a bug when the
target aliases a cached packed buffer.  Full type inference is neither
needed nor wanted (no third-party deps); what the rules need is provenance
— "this name was assigned from ``unpack_bits``", "this expression is a view
of ``PackedBitTensor.bits``" — which a single forward pass over each scope's
assignments recovers well enough.

The tracker attaches a *tag set* to expressions:

``uint8`` / ``uint16``
    the value is (a view of) a narrow unsigned array — ``unpack_bits``
    results, ``astype(np.uint8)``, ``np.zeros(..., dtype=np.uint8)``,
    ``PackedBitTensor.bits`` and slices thereof;
``cached``
    the value aliases a registered shared/cached buffer
    (:data:`CACHED_METHODS` / :data:`CACHED_ATTRS`) that must never be
    mutated; ``.copy()`` launders the tag, views/slices keep it;
``packed``
    the value is a :class:`~repro.accelerator.scheduler.PackedBitTensor`
    (so its registered attributes pick up ``cached``);
``float``
    the value is float-typed (float literals, ``float(...)``, true
    division, arithmetic with a float operand);
``set`` / ``dict_literal`` / ``dict_keys``
    iteration-order provenance for the payload-determinism rule.

Tags propagate through assignment (``x = packed.bits`` tags ``x``),
subscripts/views (a slice of a cached buffer is still cached) and selected
numpy calls (``np.asarray`` may return its argument unchanged, so it keeps
the alias tags).  The pass is per-scope and flow-insensitive: each
function's environment is the union of everything assigned to a name in
that function, which trades a little precision for a tracker that is a few
hundred lines and has no false negatives on the patterns the rules target.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: Zero-argument methods whose results are cached on the receiver and shared
#: across policy evaluations / sweep jobs — mutating them corrupts every
#: later consumer in the process.
CACHED_METHODS: FrozenSet[str] = frozenset({
    "rows_ones", "rows_writes", "valid_mask",
})

#: Methods returning the shared :class:`PackedBitTensor` itself.
PACKED_METHODS: FrozenSet[str] = frozenset({"packed_bits", "_packed"})

#: Functions (by bare name) returning the shared packed tensor.
PACKED_FACTORIES: FrozenSet[str] = frozenset({"packed_bit_tensor"})

#: Classes whose instances are packed tensors (``self`` inside their methods
#: is tagged ``packed`` so internal aliasing is tracked too).
PACKED_CLASSES: FrozenSet[str] = frozenset({"PackedBitTensor"})

#: Attributes of a packed tensor that alias its long-lived internal arrays.
CACHED_ATTRS: FrozenSet[str] = frozenset({
    "bits", "regions", "valid_words", "word_offsets",
})

#: Narrow-dtype attribute map: ``packed.bits`` is a uint8 bit tensor.
_UINT8_ATTRS: FrozenSet[str] = frozenset({"bits"})

#: Functions (by bare name) whose result is a uint8 bit array.
_UINT8_FACTORIES: FrozenSet[str] = frozenset({"unpack_bits", "random_bits"})

#: numpy constructors that take a ``dtype=`` keyword.
_NP_ARRAY_BUILDERS: FrozenSet[str] = frozenset({
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "array",
})

#: numpy converters that may return their argument *unchanged* (an alias).
_NP_PASSTHROUGH: FrozenSet[str] = frozenset({
    "asarray", "ascontiguousarray", "asanyarray", "atleast_1d",
})

#: ndarray methods that return a view of the receiver (alias tags survive).
_VIEW_METHODS: FrozenSet[str] = frozenset({
    "reshape", "view", "ravel", "transpose", "swapaxes", "squeeze",
})

#: ndarray methods whose result is a fresh array (alias tags are laundered;
#: dtype tags survive where the dtype is preserved).
_FRESH_METHODS: FrozenSet[str] = frozenset({"copy"})


def _dtype_tag(node: Optional[ast.expr]) -> Optional[str]:
    """Map a ``dtype=`` argument expression to a narrow-dtype tag."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute) and node.attr in ("uint8", "uint16"):
        return node.attr
    if isinstance(node, ast.Constant) and node.value in ("uint8", "uint16"):
        return str(node.value)
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class Scope:
    """One lexical scope: its environment and (for methods) the owning class."""

    def __init__(self, node: ast.AST, parent: Optional["Scope"],
                 class_name: Optional[str] = None):
        self.node = node
        self.parent = parent
        self.class_name = class_name
        self.env: Dict[str, Set[str]] = {}

    def lookup(self, name: str) -> FrozenSet[str]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.env:
                return frozenset(scope.env[name])
            scope = scope.parent
        return frozenset()


class ProvenanceTracker:
    """Per-module provenance: scope environments plus an expression oracle.

    Build one per module, then call :meth:`tags` on any expression node of
    the module's tree.  ``import`` bindings are resolved through
    :meth:`resolve_call_path` so rules can match fully-qualified call
    targets (``numpy.random.seed``, ``time.time``) independently of local
    aliasing (``import numpy as np``, ``from time import time``).
    """

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.module_scope = Scope(tree, None)
        self._scope_of: Dict[int, Scope] = {}
        self.imports: Dict[str, str] = {}
        self._collect_imports(tree)
        self._walk_scope(tree, self.module_scope)

    # -- construction ---------------------------------------------------- #
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def _walk_scope(self, node: ast.AST, scope: Scope,
                    class_name: Optional[str] = None) -> None:
        """Register descendants with ``scope``, recursing into sub-scopes."""
        for child in ast.iter_child_nodes(node):
            self._scope_of[id(child)] = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = Scope(child, scope, class_name=class_name)
                self._scope_of[id(child)] = scope  # the def itself
                self._walk_scope(child, inner)
            elif isinstance(child, ast.Lambda):
                inner = Scope(child, scope, class_name=class_name)
                self._walk_scope(child, inner)
            elif isinstance(child, ast.ClassDef):
                self._walk_scope(child, scope, class_name=child.name)
            else:
                self._record_assignment(child, scope)
                self._walk_scope(child, scope, class_name=class_name)

    def _record_assignment(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, ast.Assign):
            tags = self._infer(node.value, scope)
            if not tags:
                return
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scope.env.setdefault(target.id, set()).update(tags)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                tags = self._infer(node.value, scope)
                if tags:
                    scope.env.setdefault(node.target.id, set()).update(tags)

    # -- queries ---------------------------------------------------------- #
    def scope_for(self, node: ast.AST) -> Scope:
        return self._scope_of.get(id(node), self.module_scope)

    def tags(self, node: ast.expr) -> FrozenSet[str]:
        """Provenance tags of an expression node (empty set when unknown)."""
        return frozenset(self._infer(node, self.scope_for(node)))

    def resolve_call_path(self, node: ast.expr) -> Optional[str]:
        """Resolve an attribute/name chain to a dotted module path.

        ``np.random.seed`` (under ``import numpy as np``) resolves to
        ``"numpy.random.seed"``; ``datetime.now`` (under ``from datetime
        import datetime``) resolves to ``"datetime.datetime.now"``.  Returns
        ``None`` when the chain's base is not an imported module binding.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.imports.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    # -- inference -------------------------------------------------------- #
    def _infer(self, node: ast.expr, scope: Scope) -> Set[str]:
        if isinstance(node, ast.Name):
            tags = set(scope.lookup(node.id))
            if node.id == "self" and scope.class_name in PACKED_CLASSES:
                tags.add("packed")
            return tags
        if isinstance(node, ast.Constant):
            return {"float"} if isinstance(node.value, float) else set()
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value, scope)
            tags: Set[str] = set()
            if "packed" in base and node.attr in CACHED_ATTRS:
                tags.add("cached")
                if node.attr in _UINT8_ATTRS:
                    tags.add("uint8")
            if node.attr == "T":
                # transpose view: aliasing and dtype survive
                tags |= base & {"cached", "uint8", "uint16"}
            return tags
        if isinstance(node, ast.Subscript):
            # A slice/fancy-index of a cached or narrow array keeps both
            # properties (basic slices are views; advanced indexing copies,
            # but staying conservative here only costs an explicit .copy()).
            base = self._infer(node.value, scope)
            return base & {"cached", "uint8", "uint16", "packed", "float"}
        if isinstance(node, ast.Call):
            return self._infer_call(node, scope)
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, scope)
            right = self._infer(node.right, scope)
            if isinstance(node.op, ast.Div) or "float" in (left | right):
                return {"float"}
            return set()
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, scope) & {"float", "uint8", "uint16"}
        if isinstance(node, ast.IfExp):
            return self._infer(node.body, scope) | self._infer(node.orelse, scope)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return {"set"}
        if isinstance(node, ast.Dict):
            return {"dict_literal"}
        if isinstance(node, ast.NamedExpr):
            return self._infer(node.value, scope)
        return set()

    def _infer_call(self, node: ast.Call, scope: Scope) -> Set[str]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _UINT8_FACTORIES:
                return {"uint8"}
            if name in PACKED_FACTORIES or name in PACKED_CLASSES:
                return {"packed"}
            if name == "float":
                return {"float"}
            if name in ("set", "frozenset"):
                return {"set"}
            if name == "dict":
                # dict(k=v, ...) has literal insertion order; dict(other)
                # inherits whatever order ``other`` carries.
                if not node.args:
                    return {"dict_literal"}
                return set()
            if name == "sorted":
                return set()
            return set()
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = self._infer(func.value, scope)
            if attr in CACHED_METHODS:
                return {"cached"}
            if attr in PACKED_METHODS:
                return {"packed"}
            if attr == "from_stream" and isinstance(func.value, ast.Name) \
                    and func.value.id in PACKED_CLASSES:
                return {"packed"}
            if attr == "keys":
                tags = {"dict_keys"}
                if "dict_literal" in receiver:
                    tags.add("dict_literal")
                return tags
            if attr == "astype":
                dtype = _dtype_tag(node.args[0] if node.args
                                   else _keyword(node, "dtype"))
                # astype(..., copy=False) may hand back the receiver itself,
                # so the aliasing tag survives unless the copy is forced.
                copy_kw = _keyword(node, "copy")
                forced_copy = not (isinstance(copy_kw, ast.Constant)
                                   and copy_kw.value is False)
                tags = set() if forced_copy else receiver & {"cached"}
                if dtype:
                    tags.add(dtype)
                return tags
            if attr in _VIEW_METHODS:
                return receiver & {"cached", "uint8", "uint16"}
            if attr in _FRESH_METHODS:
                return receiver & {"uint8", "uint16", "float"}
            # numpy module-level helpers
            path = self.resolve_call_path(func)
            if path and path.startswith("numpy."):
                short = path[len("numpy."):]
                if short in _NP_ARRAY_BUILDERS:
                    dtype = _dtype_tag(_keyword(node, "dtype"))
                    return {dtype} if dtype else set()
                if short in _NP_PASSTHROUGH:
                    dtype = _dtype_tag(_keyword(node, "dtype"))
                    arg_tags = (self._infer(node.args[0], scope)
                                if node.args else set())
                    tags = arg_tags & {"cached", "uint8", "uint16", "float"}
                    if dtype:
                        tags -= {"uint8", "uint16"}
                        tags.add(dtype)
                    return tags
            return set()
        return set()


def walk_scoped(tree: ast.Module) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """Yield ``(node, enclosing function or module)`` pairs for a module."""
    stack: List[Tuple[ast.AST, ast.AST]] = [(tree, tree)]
    while stack:
        node, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            next_owner = child if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)) else owner
            yield child, next_owner
            stack.append((child, next_owner))
