"""Custom AST static analysis enforcing the repo's determinism contracts.

Surfaced as ``dnn-life lint`` and as a dedicated CI lane; see
``docs/ARCHITECTURE.md`` ("Determinism & aliasing contracts") for the rule
catalog.  Public entry points:

* :func:`run_lint` — lint the shipped sources (or explicit paths);
* :class:`LintEngine` / :data:`ALL_RULES` — the engine and rule registry;
* :func:`render_report` — ``text`` / ``json`` rendering of a report.
"""

from repro.devtools.lint.engine import (
    JSON_SCHEMA_VERSION,
    LintEngine,
    LintReport,
    default_lint_root,
    render_report,
    run_lint,
    suppressed_codes,
)
from repro.devtools.lint.rules import ALL_RULES, RULES_BY_CODE, Finding, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintEngine",
    "LintReport",
    "Rule",
    "RULES_BY_CODE",
    "default_lint_root",
    "render_report",
    "run_lint",
    "suppressed_codes",
]
