"""The repo-specific lint rules (stable codes ``DL001`` .. ``DL006``).

Each rule machine-checks one determinism or aliasing contract that the
cross-engine guarantees (packed-vs-explicit bit-identity, fleet golden SHAs,
cross-process sampling determinism) depend on.  The catalog, with the
contract each rule protects, lives in ``docs/ARCHITECTURE.md``; a one-line
summary ships on every rule class and surfaces in ``dnn-life lint --list``.

Findings can be suppressed per line with ``# dnn-lint: disable=DL002`` (or
``disable=all``); intentional whole-module exemptions are declared in the
allowlists below, next to the rule they relax, so every exception to a
contract is visible in one place.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence

from repro.devtools.lint.provenance import ProvenanceTracker

#: The one module allowed to touch global RNG construction helpers freely:
#: it *is* the seeding funnel every other module must route through.
RNG_FUNNEL_MODULE = "repro/utils/rng.py"

#: ``numpy.random`` attributes that are constructors/seed types rather than
#: draws from the hidden global state; building a seeded generator is the
#: sanctioned pattern, calling the module-level samplers is not.
NP_RANDOM_ALLOWED: FrozenSet[str] = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: stdlib ``random`` attributes that do not draw from the global state.
STDLIB_RANDOM_ALLOWED: FrozenSet[str] = frozenset({"Random", "SystemRandom"})

#: Wall-clock call targets (resolved through the module's imports).
WALLCLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Modules where ``==``/``!=`` between floats is the *point*: they implement
#: or verify bit-exact cross-engine contracts (exact-zero fast paths, the
#: unbiased-TRBG dispatch on a constructed bias of exactly 0.5).
FLOAT_EQUALITY_ALLOWED_MODULES: FrozenSet[str] = frozenset({
    # unbiased-TRBG dispatch on a constructed bias of exactly 0.5
    "repro/core/simulation.py",
    # exact-zero-side skipping in the device-batched retention transliteration
    "repro/fleet/simulator.py",
    # reference-corner pinning: corners exactly at the reference voltage/
    # temperature must contribute a factor of exactly 1.0 so reference
    # scenarios stay byte-identical across releases
    "repro/aging/stress.py",
    # fused span composition: every coefficient/weight is an exact integer in
    # float64, and the zero/one fast-path dispatch must be exact to keep the
    # composed counts bit-identical to the iterative span walk
    "repro/core/span_compose.py",
})

#: ndarray methods that mutate the receiver in place.
INPLACE_METHODS: FrozenSet[str] = frozenset({
    "fill", "sort", "partition", "put", "itemset", "resize", "byteswap",
})


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a stable code plus a ``file:line:col`` location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The one-line ``file:line:col: CODE message`` diagnostic."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_payload(self) -> dict:
        """JSON-safe representation (the ``--format json`` schema entry)."""
        return {"code": self.code, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, path: str, rel: str, tree: ast.Module,
                 source_lines: Sequence[str]):
        self.path = path
        #: posix path relative to the lint root (e.g. ``repro/utils/rng.py``)
        #: — the identity used by module allowlists.
        self.rel = rel
        self.tree = tree
        self.source_lines = source_lines
        self._tracker: Optional[ProvenanceTracker] = None

    @property
    def tracker(self) -> ProvenanceTracker:
        """The module's provenance tracker (built once, shared by rules)."""
        if self._tracker is None:
            self._tracker = ProvenanceTracker(self.tree)
        return self._tracker


class Rule:
    """Base lint rule; subclasses define ``code``/``name`` and ``check``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(code=self.code, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)


class NoGlobalRngRule(Rule):
    """DL001: all randomness must flow through a passed-in ``Generator``.

    Module-level draws from ``numpy.random`` or stdlib ``random`` consume
    hidden global state, which breaks per-job seeding in sweep workers and
    cross-process sampling determinism.  Constructing seeded generators
    (``np.random.default_rng``, ``SeedSequence``, bit generators) is allowed
    everywhere; everything else is confined to ``utils/rng.py``.
    """

    code = "DL001"
    name = "no-global-rng"
    summary = ("module-level numpy.random/random draws are forbidden; pass a "
               "seeded Generator (see repro.utils.rng)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel.endswith(RNG_FUNNEL_MODULE):
            return
        tracker = ctx.tracker
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = tracker.resolve_call_path(node.func)
            if path is None:
                continue
            if path.startswith("numpy.random."):
                fn = path[len("numpy.random."):]
                if "." not in fn and fn not in NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"call to global-state 'np.random.{fn}'; draw from a "
                        "passed-in np.random.Generator instead")
            elif path.startswith("random."):
                fn = path[len("random."):]
                if "." not in fn and fn not in STDLIB_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"call to global-state 'random.{fn}'; use a seeded "
                        "np.random.Generator from repro.utils.rng instead")


class NoWallclockSeedRule(Rule):
    """DL002: wall-clock time must never feed seeds or results.

    ``time.time()`` / ``datetime.now()`` make a run irreproducible the
    moment their value reaches a seed, a payload or a cache key.  Timing
    with ``time.perf_counter`` is fine (it measures, it does not seed);
    a deliberate metadata timestamp carries an inline suppression.
    """

    code = "DL002"
    name = "no-wallclock-seed"
    summary = ("time.time()/datetime.now() feed irreproducible values into "
               "seeds or results; use perf_counter for timing")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        tracker = ctx.tracker
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = tracker.resolve_call_path(node.func)
            if path in WALLCLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call '{path}()' makes the run irreproducible; "
                    "thread the value in explicitly or use time.perf_counter "
                    "for timing")


class NarrowDtypeReductionRule(Rule):
    """DL003: reductions over narrow unsigned bit tensors pick their dtype.

    ``uint8``/``uint16`` bit tensors are the packed engine's working set;
    summing them without an explicit ``dtype=`` leaves the accumulator width
    to numpy's platform default (32-bit on Windows), which is exactly the
    silent-overflow class the chunked ``block_axis_sum`` accumulator exists
    to avoid.
    """

    code = "DL003"
    name = "narrow-dtype-reduction"
    summary = ("summing a uint8/uint16 bit tensor without an explicit dtype= "
               "risks silent accumulator overflow")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        tracker = ctx.tracker
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver: Optional[ast.expr] = None
            if tracker.resolve_call_path(node.func) == "numpy.sum":
                if node.args:
                    receiver = node.args[0]
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
                receiver = node.func.value
            if receiver is None:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            tags = tracker.tags(receiver)
            narrow = tags & {"uint8", "uint16"}
            if narrow:
                yield self.finding(
                    ctx, node,
                    f"sum over a {'/'.join(sorted(narrow))} tensor without an "
                    "explicit dtype=; declare the accumulator (e.g. "
                    "dtype=np.int64) or use block_axis_sum")


class CachedBufferMutationRule(Rule):
    """DL004: cached packed buffers are shared — never write through them.

    ``PackedBitTensor.bits`` / ``rows_ones()`` / ``rows_writes()`` /
    ``valid_mask()`` and ``CachedWeightStream.packed_bits()`` results are
    computed once and shared across policy evaluations and sweep jobs; an
    in-place op on them (or any alias) silently corrupts every later
    consumer.  The arrays are also frozen at runtime
    (``setflags(write=False)``), so anything this rule misses fails fast.
    """

    code = "DL004"
    name = "cached-buffer-mutation"
    summary = ("in-place writes to PackedBitTensor/CachedWeightStream cached "
               "buffers corrupt every sharer; work on a .copy()")

    def _is_cached(self, ctx: ModuleContext, node: ast.expr) -> bool:
        return "cached" in ctx.tracker.tags(node)

    def _mutation_root(self, target: ast.expr) -> Optional[ast.expr]:
        """The object a store-target writes through, if it is a view/element."""
        if isinstance(target, ast.Subscript):
            return target.value
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                root = self._mutation_root(node.target)
                if root is None and isinstance(node.target, ast.Name):
                    root = node.target
                if root is not None and self._is_cached(ctx, root):
                    yield self.finding(
                        ctx, node,
                        "in-place operator mutates a cached packed buffer "
                        "shared across evaluations; reduce into a fresh array "
                        "or .copy() first")
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    root = self._mutation_root(target)
                    if root is not None and self._is_cached(ctx, root):
                        yield self.finding(
                            ctx, target,
                            "slice/element assignment into a cached packed "
                            "buffer shared across evaluations; write to a "
                            ".copy() instead")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "setflags" and self._is_cached(ctx, func.value):
                        write = next((kw.value for kw in node.keywords
                                      if kw.arg == "write"), None)
                        if not (isinstance(write, ast.Constant)
                                and write.value is False):
                            yield self.finding(
                                ctx, node,
                                "re-enabling writes on a cached packed buffer "
                                "defeats the shared-tensor aliasing guard")
                    elif func.attr in INPLACE_METHODS \
                            and self._is_cached(ctx, func.value):
                        yield self.finding(
                            ctx, node,
                            f"in-place method '.{func.attr}()' mutates a cached "
                            "packed buffer shared across evaluations")
                for kw in node.keywords:
                    if kw.arg == "out" and self._is_cached(ctx, kw.value):
                        yield self.finding(
                            ctx, node,
                            "out= targets a cached packed buffer shared across "
                            "evaluations; allocate a fresh output array")


class UnorderedPayloadIterationRule(Rule):
    """DL005: payload bytes must not depend on set/dict iteration order.

    ``to_payload``/``from_payload`` methods define the bytes that golden
    SHAs, cache keys and cross-process transport hash; iterating a ``set``
    (or the keys of a dict whose insertion order is not locally literal)
    makes those bytes run-dependent.  Wrap the iterable in ``sorted()``.
    """

    code = "DL005"
    name = "unordered-payload-iteration"
    summary = ("to_payload/from_payload may not iterate sets or non-literal "
               "dict keys unsorted; payload bytes must be order-deterministic")

    PAYLOAD_METHODS = ("to_payload", "from_payload")

    def _iter_exprs(self, func: ast.AST) -> Iterator[ast.expr]:
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield generator.iter

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        tracker = ctx.tracker
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in self.PAYLOAD_METHODS:
                continue
            for iter_expr in self._iter_exprs(node):
                if isinstance(iter_expr, ast.Call) \
                        and isinstance(iter_expr.func, ast.Name) \
                        and iter_expr.func.id in ("sorted", "enumerate", "zip",
                                                  "range", "reversed"):
                    continue
                tags = tracker.tags(iter_expr)
                if "set" in tags:
                    yield self.finding(
                        ctx, iter_expr,
                        f"iteration over a set inside {node.name}() makes the "
                        "payload order run-dependent; wrap it in sorted()")
                elif "dict_keys" in tags and "dict_literal" not in tags:
                    yield self.finding(
                        ctx, iter_expr,
                        f"iteration over .keys() of a non-literal dict inside "
                        f"{node.name}(); wrap it in sorted() so the payload "
                        "bytes are order-deterministic")


class FloatEqualityRule(Rule):
    """DL006: ``==``/``!=`` between floats hides tolerance decisions.

    Outside the intentional bit-exactness modules
    (:data:`FLOAT_EQUALITY_ALLOWED_MODULES`), exact float comparison is
    almost always a latent bug: values that are equal on one engine/platform
    differ in the last ulp on another.  Compare against a tolerance, or move
    the comparison into an allowlisted bit-exactness module.
    """

    code = "DL006"
    name = "float-equality-in-src"
    summary = ("exact ==/!= between float expressions outside the allowlisted "
               "bit-exactness modules")

    def _is_float(self, ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        return "float" in ctx.tracker.tags(node)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(ctx.rel.endswith(allowed)
               for allowed in FLOAT_EQUALITY_ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float(ctx, left) or self._is_float(ctx, right):
                    yield self.finding(
                        ctx, node,
                        "exact float equality; compare against a tolerance "
                        "(math.isclose / np.isclose) or move the comparison "
                        "into an allowlisted bit-exactness module")


#: Every shipped rule, in code order (the ``--list`` / docs ordering).
ALL_RULES: List[Rule] = [
    NoGlobalRngRule(),
    NoWallclockSeedRule(),
    NarrowDtypeReductionRule(),
    CachedBufferMutationRule(),
    UnorderedPayloadIterationRule(),
    FloatEqualityRule(),
]

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
