"""Developer tooling shipped with the package (static analysis, CI helpers).

Nothing in :mod:`repro.devtools` is imported by the simulation stack; the
subpackages are entered through the CLI (``dnn-life lint``) or the test
suite only, so the runtime layers never pay for them.
"""
