"""Composite layers (Inception modules, residual blocks).

GoogLeNet and ResNet-152 appear in the paper's Fig. 1a model-size comparison.
Their topologies are not sequential, so they are modelled here as *composite*
layers: a composite owns a set of weight-carrying sub-layers, reports the
aggregate parameter count and the correct output shape, and exposes its
sub-layers so that the weight-memory scheduler can stream their weights just
like any plain layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.nn.layers import BatchNorm2d, Conv2d, Layer, ShapeHW


@dataclass
class CompositeLayer(Layer):
    """A layer made of named weight-carrying sub-layers."""

    sub_layers: List[Layer] = field(default_factory=list)

    @property
    def weight_shape(self) -> Optional[Tuple[int, ...]]:
        return None

    @property
    def has_weights(self) -> bool:
        return any(sub.has_weights for sub in self.sub_layers)

    @property
    def weight_count(self) -> int:
        return sum(sub.weight_count for sub in self.sub_layers)

    @property
    def bias_count(self) -> int:
        return sum(sub.bias_count for sub in self.sub_layers)

    @property
    def parameter_count(self) -> int:
        return sum(sub.parameter_count for sub in self.sub_layers)

    def iter_weight_sublayers(self) -> List[Layer]:
        """Weight-carrying sub-layers that stream through the weight memory."""
        selected = []
        for sub in self.sub_layers:
            if not sub.has_weights:
                continue
            if not getattr(sub, "counts_toward_weight_memory", True):
                continue
            selected.append(sub)
        return selected


@dataclass
class Inception(CompositeLayer):
    """A GoogLeNet Inception-v1 module.

    Four parallel branches whose outputs are concatenated channel-wise:
    1x1 conv; 1x1 -> 3x3 convs; 1x1 -> 5x5 convs; 3x3 maxpool -> 1x1 conv.
    """

    in_channels: int = 1
    ch1x1: int = 1
    ch3x3_reduce: int = 1
    ch3x3: int = 1
    ch5x5_reduce: int = 1
    ch5x5: int = 1
    pool_proj: int = 1

    def __post_init__(self) -> None:
        prefix = self.name or "inception"
        self.sub_layers = [
            Conv2d(name=f"{prefix}.b1_1x1", out_channels=self.ch1x1,
                   in_channels=self.in_channels, kernel_size=(1, 1)),
            Conv2d(name=f"{prefix}.b2_reduce", out_channels=self.ch3x3_reduce,
                   in_channels=self.in_channels, kernel_size=(1, 1)),
            Conv2d(name=f"{prefix}.b2_3x3", out_channels=self.ch3x3,
                   in_channels=self.ch3x3_reduce, kernel_size=(3, 3), padding=1),
            Conv2d(name=f"{prefix}.b3_reduce", out_channels=self.ch5x5_reduce,
                   in_channels=self.in_channels, kernel_size=(1, 1)),
            Conv2d(name=f"{prefix}.b3_5x5", out_channels=self.ch5x5,
                   in_channels=self.ch5x5_reduce, kernel_size=(5, 5), padding=2),
            Conv2d(name=f"{prefix}.b4_proj", out_channels=self.pool_proj,
                   in_channels=self.in_channels, kernel_size=(1, 1)),
        ]

    @property
    def out_channels(self) -> int:
        """Channels after concatenating the four branches."""
        return self.ch1x1 + self.ch3x3 + self.ch5x5 + self.pool_proj

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {channels}"
            )
        return (self.out_channels, height, width)


@dataclass
class Bottleneck(CompositeLayer):
    """A ResNet bottleneck residual block (1x1 -> 3x3 -> 1x1, expansion 4)."""

    in_channels: int = 64
    planes: int = 64
    stride: int = 1
    expansion: int = 4
    with_batchnorm: bool = True

    def __post_init__(self) -> None:
        prefix = self.name or "bottleneck"
        out_channels = self.planes * self.expansion
        self.sub_layers = [
            Conv2d(name=f"{prefix}.conv1", out_channels=self.planes,
                   in_channels=self.in_channels, kernel_size=(1, 1), use_bias=False),
            Conv2d(name=f"{prefix}.conv2", out_channels=self.planes,
                   in_channels=self.planes, kernel_size=(3, 3), stride=self.stride,
                   padding=1, use_bias=False),
            Conv2d(name=f"{prefix}.conv3", out_channels=out_channels,
                   in_channels=self.planes, kernel_size=(1, 1), use_bias=False),
        ]
        if self.with_batchnorm:
            self.sub_layers.extend([
                BatchNorm2d(name=f"{prefix}.bn1", num_features=self.planes),
                BatchNorm2d(name=f"{prefix}.bn2", num_features=self.planes),
                BatchNorm2d(name=f"{prefix}.bn3", num_features=out_channels),
            ])
        if self.needs_projection:
            self.sub_layers.append(
                Conv2d(name=f"{prefix}.downsample", out_channels=out_channels,
                       in_channels=self.in_channels, kernel_size=(1, 1),
                       stride=self.stride, use_bias=False))
            if self.with_batchnorm:
                self.sub_layers.append(
                    BatchNorm2d(name=f"{prefix}.bn_down", num_features=out_channels))

    @property
    def needs_projection(self) -> bool:
        """Whether the skip connection needs a 1x1 projection convolution."""
        return self.stride != 1 or self.in_channels != self.planes * self.expansion

    @property
    def out_channels(self) -> int:
        """Output channel count of the block."""
        return self.planes * self.expansion

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {channels}"
            )
        return (self.out_channels,
                (height + self.stride - 1) // self.stride,
                (width + self.stride - 1) // self.stride)
