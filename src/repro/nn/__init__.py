"""DNN model substrate.

The paper consumes pre-trained DNNs (AlexNet, VGG-16, a small custom MNIST
CNN) only through the shapes and values of their weight tensors.  This package
provides:

* a compact layer IR (:mod:`repro.nn.layers`) and a :class:`~repro.nn.network.Network`
  container with parameter/size accounting;
* a model zoo (:mod:`repro.nn.models`) with the architectures referenced in the
  paper — AlexNet, VGG-16, GoogLeNet, ResNet-152, LeNet-5 and the custom MNIST
  network of Sec. V-A;
* synthetic *trained-like* weight generation (:mod:`repro.nn.weights`) used in
  place of framework-downloaded checkpoints (no network access / PyTorch in
  this environment) — see DESIGN.md for the substitution rationale;
* a functional numpy forward pass (:mod:`repro.nn.functional`) used to
  demonstrate that DNN-Life encoding/decoding is bit-exact transparent to the
  computation.
"""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.models import (
    MODEL_ZOO,
    PUBLISHED_ACCURACY,
    alexnet,
    build_model,
    custom_mnist_cnn,
    googlenet,
    lenet5,
    resnet152,
    vgg16,
)
from repro.nn.network import Network
from repro.nn.weights import (
    WeightGenerationConfig,
    attach_synthetic_weights,
    load_weights_npz,
    save_weights_npz,
    synthesize_layer_weights,
)

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Layer",
    "Linear",
    "LocalResponseNorm",
    "MaxPool2d",
    "ReLU",
    "Softmax",
    "MODEL_ZOO",
    "PUBLISHED_ACCURACY",
    "alexnet",
    "build_model",
    "custom_mnist_cnn",
    "googlenet",
    "lenet5",
    "resnet152",
    "vgg16",
    "Network",
    "WeightGenerationConfig",
    "attach_synthetic_weights",
    "load_weights_npz",
    "save_weights_npz",
    "synthesize_layer_weights",
]
