"""Synthetic *trained-like* weight generation and checkpoint loading.

The original paper extracts the weights of pre-trained AlexNet / VGG-16 models
from a deep-learning framework.  In this offline reproduction no framework or
checkpoint download is available, so networks are populated with *synthetic
trained-like* weights instead (see DESIGN.md, "Substitutions"):

* zero-mean, approximately Gaussian bulk with standard deviation scaled by the
  layer fan-in (trained DNN layers follow this to first order);
* heavier-than-Gaussian tails (a small fraction of weights several sigma out),
  which is what makes range-linear quantization concentrate most weights in a
  narrow band of integer levels;
* a small, layer-dependent asymmetry (mean shift and asymmetric tails) so that
  the asymmetric-quantization zero-point is not exactly mid-range — the
  property responsible for the biased bit distributions the paper observes for
  asymmetric 8-bit quantization.

The aging analysis only depends on these distributional properties, not on the
exact weight values.  Real checkpoints can still be used through
:func:`load_weights_npz`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn.layers import Layer
from repro.nn.network import Network
from repro.utils.rng import as_rng, deterministic_hash_seed
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class WeightGenerationConfig:
    """Knobs of the synthetic trained-like weight generator.

    Attributes
    ----------
    gain:
        Multiplier on the He-style ``sqrt(2 / fan_in)`` standard deviation.
        Trained networks typically end up slightly below their initialisation
        scale, hence the default of 0.8.
    outlier_fraction:
        Fraction of weights drawn from a wider (``outlier_scale`` x) Gaussian,
        producing the heavy tails seen in trained models.
    outlier_scale:
        Scale multiplier of the outlier component.
    skew:
        Relative asymmetry of the positive/negative tails.  ``0`` gives a
        symmetric distribution; ``0.15`` (default) makes the positive tail
        slightly longer, so min(w) != -max(w) and asymmetric quantization gets
        a zero-point away from mid-range.
    mean_shift_fraction:
        Per-layer mean shift expressed as a fraction of the layer sigma.  The
        sign alternates between layers, mimicking the small but non-zero means
        of trained layers.
    """

    gain: float = 0.8
    outlier_fraction: float = 0.02
    outlier_scale: float = 3.5
    skew: float = 0.15
    mean_shift_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_probability(self.outlier_fraction, "outlier_fraction")
        if self.gain <= 0 or self.outlier_scale <= 0:
            raise ValueError("gain and outlier_scale must be positive")


DEFAULT_CONFIG = WeightGenerationConfig()


def synthesize_layer_weights(layer: Layer, rng: np.random.Generator,
                             config: WeightGenerationConfig = DEFAULT_CONFIG,
                             layer_index: int = 0) -> np.ndarray:
    """Generate a trained-like weight tensor for one layer.

    Parameters
    ----------
    layer:
        A weight-carrying layer (its ``weight_shape`` and ``fan_in`` are used).
    rng:
        Generator driving this layer's randomness.
    layer_index:
        Position of the layer in the network; used to alternate the sign of
        the small per-layer mean shift.
    """
    shape = layer.weight_shape
    if shape is None:
        raise ValueError(f"layer '{layer.name}' has no weights")
    fan_in = max(layer.fan_in, 1)
    sigma = config.gain * np.sqrt(2.0 / fan_in)

    values = rng.normal(0.0, sigma, size=shape)

    # Heavy tails: replace a small fraction with wider-Gaussian draws.
    if config.outlier_fraction > 0:
        outlier_mask = rng.random(shape) < config.outlier_fraction
        outliers = rng.normal(0.0, sigma * config.outlier_scale, size=shape)
        values = np.where(outlier_mask, outliers, values)

    # Asymmetric tails: stretch the positive side by (1 + skew).
    if config.skew:
        values = np.where(values > 0, values * (1.0 + config.skew), values)

    # Small per-layer mean shift with alternating sign.
    if config.mean_shift_fraction:
        shift_sign = 1.0 if layer_index % 2 == 0 else -1.0
        values = values + shift_sign * config.mean_shift_fraction * sigma

    return values.astype(np.float32)


def synthesize_layer_bias(layer: Layer, rng: np.random.Generator,
                          config: WeightGenerationConfig = DEFAULT_CONFIG) -> Optional[np.ndarray]:
    """Generate a small bias vector (biases do not transit the weight memory)."""
    shape = layer.bias_shape
    if shape is None:
        return None
    fan_in = max(layer.fan_in, 1)
    sigma = config.gain * np.sqrt(1.0 / fan_in)
    return rng.normal(0.0, sigma, size=shape).astype(np.float32)


def attach_synthetic_weights(network: Network, seed: Optional[int] = 0,
                             config: WeightGenerationConfig = DEFAULT_CONFIG) -> Network:
    """Populate every weight-carrying layer of ``network`` with synthetic weights.

    The generation is deterministic per (seed, network name, layer name), so
    two calls with the same seed produce identical weights even if the caller
    rebuilds the network object.
    Returns the same network for chaining.
    """
    for index, layer in enumerate(network.weight_layers()):
        layer_seed = deterministic_hash_seed(seed, network.name, layer.name)
        layer_rng = as_rng(layer_seed)
        layer.weights = synthesize_layer_weights(layer, layer_rng, config, layer_index=index)
        layer.bias = synthesize_layer_bias(layer, layer_rng, config)
    network.validate_weights()
    return network


def weight_statistics(network: Network) -> Dict[str, Dict[str, float]]:
    """Per-layer summary statistics of the attached weights."""
    stats: Dict[str, Dict[str, float]] = {}
    for layer in network.weight_layers():
        if layer.weights is None:
            continue
        values = np.asarray(layer.weights, dtype=np.float64).reshape(-1)
        stats[layer.name] = {
            "count": float(values.size),
            "mean": float(values.mean()),
            "std": float(values.std()),
            "min": float(values.min()),
            "max": float(values.max()),
            "abs_max": float(np.abs(values).max()),
            "fraction_negative": float((values < 0).mean()),
        }
    return stats


def save_weights_npz(network: Network, path) -> None:
    """Save attached weights (and biases) to an ``.npz`` checkpoint."""
    arrays: Dict[str, np.ndarray] = {}
    for layer in network.weight_layers():
        if layer.weights is None:
            raise ValueError(f"layer '{layer.name}' has no weights to save")
        arrays[f"{layer.name}.weight"] = np.asarray(layer.weights, dtype=np.float32)
        if layer.bias is not None:
            arrays[f"{layer.name}.bias"] = np.asarray(layer.bias, dtype=np.float32)
    np.savez_compressed(path, **arrays)


def load_weights_npz(network: Network, path) -> Network:
    """Load weights from an ``.npz`` checkpoint (e.g. exported from PyTorch).

    Array names must be ``<layer name>.weight`` / ``<layer name>.bias`` and
    shapes must match the declared layer shapes.
    """
    with np.load(path) as data:
        for layer in network.weight_layers():
            key = f"{layer.name}.weight"
            if key not in data:
                raise KeyError(f"checkpoint is missing '{key}'")
            layer.weights = np.asarray(data[key], dtype=np.float32)
            bias_key = f"{layer.name}.bias"
            if bias_key in data:
                layer.bias = np.asarray(data[bias_key], dtype=np.float32)
    network.validate_weights()
    return network
