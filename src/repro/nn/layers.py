"""Layer intermediate representation.

Layers are plain dataclasses that know their weight shapes, parameter counts
and output shapes.  They deliberately carry no framework baggage: the
accelerator substrate only needs shapes and (optionally) numpy weight tensors.

Shapes follow the ``(channels, height, width)`` convention for feature maps
and ``(out_channels, in_channels, kernel_h, kernel_w)`` for convolution
weights, matching the paper's Fig. 5 nomenclature (``f`` filters of size
``R x C x CH``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

ShapeHW = Tuple[int, int, int]


@dataclass
class Layer:
    """Base class for all layers."""

    name: str = ""

    #: Optional numpy weight tensor (populated by ``repro.nn.weights``).
    weights: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    #: Optional numpy bias vector.
    bias: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def has_weights(self) -> bool:
        """Whether this layer type carries trainable weights."""
        return self.weight_shape is not None

    @property
    def weight_shape(self) -> Optional[Tuple[int, ...]]:
        """Shape of the weight tensor, or None for weight-less layers."""
        return None

    @property
    def bias_shape(self) -> Optional[Tuple[int, ...]]:
        """Shape of the bias vector, or None."""
        return None

    @property
    def weight_count(self) -> int:
        """Number of weight parameters (excluding bias)."""
        shape = self.weight_shape
        return int(np.prod(shape)) if shape else 0

    @property
    def bias_count(self) -> int:
        """Number of bias parameters."""
        shape = self.bias_shape
        return int(np.prod(shape)) if shape else 0

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters (weights + bias)."""
        return self.weight_count + self.bias_count

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        """Shape of the output feature map for a given input shape."""
        return input_shape

    @property
    def fan_in(self) -> int:
        """Number of inputs feeding one output unit (used for weight scaling)."""
        return 0


def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


@dataclass
class Conv2d(Layer):
    """2-D convolution layer: ``f`` filters of shape ``(CH, R, C)``."""

    out_channels: int = 1
    in_channels: int = 1
    kernel_size: Tuple[int, int] = (3, 3)
    stride: int = 1
    padding: int = 0
    groups: int = 1
    use_bias: bool = True

    def __post_init__(self) -> None:
        if self.out_channels <= 0 or self.in_channels <= 0:
            raise ValueError("channel counts must be positive")
        if self.in_channels % self.groups != 0 or self.out_channels % self.groups != 0:
            raise ValueError("groups must divide both channel counts")

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        kh, kw = self.kernel_size
        return (self.out_channels, self.in_channels // self.groups, kh, kw)

    @property
    def bias_shape(self) -> Optional[Tuple[int, ...]]:
        return (self.out_channels,) if self.use_bias else None

    @property
    def fan_in(self) -> int:
        kh, kw = self.kernel_size
        return (self.in_channels // self.groups) * kh * kw

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name or 'Conv2d'}: expected {self.in_channels} input channels, got {channels}"
            )
        kh, kw = self.kernel_size
        return (
            self.out_channels,
            _conv_out_size(height, kh, self.stride, self.padding),
            _conv_out_size(width, kw, self.stride, self.padding),
        )

    def macs(self, input_shape: ShapeHW) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        out_c, out_h, out_w = self.output_shape(input_shape)
        return out_c * out_h * out_w * self.fan_in


@dataclass
class Linear(Layer):
    """Fully-connected layer: weight shape ``(out_features, in_features)``."""

    out_features: int = 1
    in_features: int = 1
    use_bias: bool = True

    @property
    def weight_shape(self) -> Tuple[int, int]:
        return (self.out_features, self.in_features)

    @property
    def bias_shape(self) -> Optional[Tuple[int, ...]]:
        return (self.out_features,) if self.use_bias else None

    @property
    def fan_in(self) -> int:
        return self.in_features

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        flat = int(np.prod(input_shape))
        if flat != self.in_features:
            raise ValueError(
                f"{self.name or 'Linear'}: expected {self.in_features} inputs, got {flat}"
            )
        return (self.out_features, 1, 1)

    def macs(self, input_shape: ShapeHW) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        return self.out_features * self.in_features


@dataclass
class _Pool2d(Layer):
    kernel_size: int = 2
    stride: Optional[int] = None
    padding: int = 0

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        channels, height, width = input_shape
        stride = self.stride if self.stride is not None else self.kernel_size
        return (
            channels,
            _conv_out_size(height, self.kernel_size, stride, self.padding),
            _conv_out_size(width, self.kernel_size, stride, self.padding),
        )


@dataclass
class MaxPool2d(_Pool2d):
    """Max-pooling layer (no parameters)."""


@dataclass
class AvgPool2d(_Pool2d):
    """Average-pooling layer (no parameters)."""


@dataclass
class GlobalAvgPool2d(Layer):
    """Global average pooling down to ``(channels, 1, 1)``."""

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        channels, _, _ = input_shape
        return (channels, 1, 1)


@dataclass
class ReLU(Layer):
    """Rectified linear activation (no parameters)."""


@dataclass
class Softmax(Layer):
    """Softmax over the channel dimension (no parameters)."""


@dataclass
class Dropout(Layer):
    """Dropout (identity at inference time)."""

    rate: float = 0.5


@dataclass
class Flatten(Layer):
    """Flatten a feature map into a vector."""

    def output_shape(self, input_shape: ShapeHW) -> ShapeHW:
        return (int(np.prod(input_shape)), 1, 1)


@dataclass
class LocalResponseNorm(Layer):
    """Local response normalisation (AlexNet/GoogLeNet; no weight memory)."""

    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0


@dataclass
class BatchNorm2d(Layer):
    """Batch normalisation.

    The scale/shift parameters live with the activations datapath in the
    accelerators modelled here (they are folded into the preceding layer at
    deployment), so they are not counted towards *weight-memory* traffic, but
    they are counted as model parameters for the Fig. 1a size comparison.
    """

    num_features: int = 1

    @property
    def weight_shape(self) -> Tuple[int, ...]:
        return (2, self.num_features)  # gamma and beta

    @property
    def fan_in(self) -> int:
        return 1

    #: BatchNorm parameters are not streamed through the weight buffer.
    counts_toward_weight_memory: bool = False


def receptive_field(layers, input_shape: ShapeHW) -> ShapeHW:
    """Propagate a shape through a list of layers (helper for model builders)."""
    shape = input_shape
    for layer in layers:
        shape = layer.output_shape(shape)
    return shape


def kaiming_std(layer: Layer, gain: float = math.sqrt(2.0)) -> float:
    """He-initialisation standard deviation for a weight-carrying layer."""
    fan_in = max(layer.fan_in, 1)
    return gain / math.sqrt(fan_in)
