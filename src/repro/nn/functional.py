"""Functional numpy forward pass.

Used to (a) run the small networks (custom MNIST CNN, LeNet-5) end to end in
examples and integration tests, and (b) prove that the DNN-Life write/read
transducers are *bit-exact transparent*: encoding weights on the way into the
weight memory and decoding them on the way out leaves the inference result
unchanged.

Layouts: activations are ``(batch, channels, height, width)``; convolution
weights are ``(out_channels, in_channels, kh, kw)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network


def _im2col(inputs: np.ndarray, kernel_h: int, kernel_w: int, stride: int,
            padding: int) -> np.ndarray:
    """Rearrange input patches into columns for matrix-multiply convolution."""
    batch, channels, height, width = inputs.shape
    if padding:
        inputs = np.pad(inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        height += 2 * padding
        width += 2 * padding
    out_h = (height - kernel_h) // stride + 1
    out_w = (width - kernel_w) // stride + 1
    columns = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w),
                       dtype=inputs.dtype)
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            columns[:, :, row, col, :, :] = inputs[:, :, row:row_end:stride, col:col_end:stride]
    return columns.reshape(batch, channels * kernel_h * kernel_w, out_h * out_w)


def conv2d(inputs: np.ndarray, layer: Conv2d) -> np.ndarray:
    """2-D convolution via im2col + matrix multiplication."""
    if layer.groups != 1:
        raise NotImplementedError("grouped convolution forward pass is not implemented")
    weights = np.asarray(layer.weights, dtype=np.float64)
    kernel_h, kernel_w = layer.kernel_size
    columns = _im2col(np.asarray(inputs, dtype=np.float64), kernel_h, kernel_w,
                      layer.stride, layer.padding)
    batch = columns.shape[0]
    flat_weights = weights.reshape(layer.out_channels, -1)
    output = np.einsum("ok,bkp->bop", flat_weights, columns)
    if layer.bias is not None:
        output += np.asarray(layer.bias, dtype=np.float64)[None, :, None]
    _, _, height, width = inputs.shape
    out_h = (height + 2 * layer.padding - kernel_h) // layer.stride + 1
    out_w = (width + 2 * layer.padding - kernel_w) // layer.stride + 1
    return output.reshape(batch, layer.out_channels, out_h, out_w)


def linear(inputs: np.ndarray, layer: Linear) -> np.ndarray:
    """Fully-connected layer over flattened inputs."""
    flat = np.asarray(inputs, dtype=np.float64).reshape(inputs.shape[0], -1)
    weights = np.asarray(layer.weights, dtype=np.float64)
    output = flat @ weights.T
    if layer.bias is not None:
        output += np.asarray(layer.bias, dtype=np.float64)[None, :]
    return output


def relu(inputs: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(inputs, 0.0)


def max_pool2d(inputs: np.ndarray, kernel: int, stride: Optional[int], padding: int) -> np.ndarray:
    """Max pooling."""
    stride = stride if stride is not None else kernel
    columns = _im2col(inputs, kernel, kernel, stride,
                      padding).reshape(inputs.shape[0], inputs.shape[1], kernel * kernel, -1)
    pooled = columns.max(axis=2)
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    return pooled.reshape(batch, channels, out_h, out_w)


def avg_pool2d(inputs: np.ndarray, kernel: int, stride: Optional[int], padding: int) -> np.ndarray:
    """Average pooling."""
    stride = stride if stride is not None else kernel
    columns = _im2col(inputs, kernel, kernel, stride,
                      padding).reshape(inputs.shape[0], inputs.shape[1], kernel * kernel, -1)
    pooled = columns.mean(axis=2)
    batch, channels, height, width = inputs.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    return pooled.reshape(batch, channels, out_h, out_w)


def local_response_norm(inputs: np.ndarray, layer: LocalResponseNorm) -> np.ndarray:
    """AlexNet-style local response normalisation across channels."""
    squared = inputs ** 2
    batch, channels, height, width = inputs.shape
    accumulated = np.zeros_like(inputs)
    half = layer.size // 2
    for channel in range(channels):
        low = max(0, channel - half)
        high = min(channels, channel + half + 1)
        accumulated[:, channel] = squared[:, low:high].sum(axis=1)
    return inputs / np.power(layer.k + layer.alpha * accumulated, layer.beta)


def softmax(inputs: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last dimension."""
    flat = np.asarray(inputs, dtype=np.float64).reshape(inputs.shape[0], -1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def forward_layer(inputs: np.ndarray, layer: Layer) -> np.ndarray:
    """Apply a single layer to a batch of activations."""
    if isinstance(layer, Conv2d):
        return conv2d(inputs, layer)
    if isinstance(layer, Linear):
        return linear(inputs, layer)
    if isinstance(layer, ReLU):
        return relu(inputs)
    if isinstance(layer, MaxPool2d):
        return max_pool2d(inputs, layer.kernel_size, layer.stride, layer.padding)
    if isinstance(layer, AvgPool2d):
        return avg_pool2d(inputs, layer.kernel_size, layer.stride, layer.padding)
    if isinstance(layer, GlobalAvgPool2d):
        return inputs.mean(axis=(2, 3), keepdims=True)
    if isinstance(layer, LocalResponseNorm):
        return local_response_norm(inputs, layer)
    if isinstance(layer, Flatten):
        return inputs.reshape(inputs.shape[0], -1)
    if isinstance(layer, Dropout):
        return inputs  # inference mode: identity
    if isinstance(layer, Softmax):
        return softmax(inputs)
    raise NotImplementedError(f"forward pass not implemented for {type(layer).__name__}")


def forward(network: Network, inputs: np.ndarray, upto_layer: Optional[str] = None) -> np.ndarray:
    """Run a full (or partial) forward pass of ``network``.

    Parameters
    ----------
    inputs:
        Batch of shape ``(batch,) + network.input_shape``.
    upto_layer:
        If given, stop after the layer with this name and return its output.
    """
    network.validate_weights()
    activations = np.asarray(inputs, dtype=np.float64)
    expected = tuple(network.input_shape)
    if tuple(activations.shape[1:]) != expected:
        raise ValueError(
            f"input shape {activations.shape[1:]} does not match network input {expected}"
        )
    for layer in network.layers:
        activations = forward_layer(activations, layer)
        if upto_layer is not None and layer.name == upto_layer:
            break
    return activations


def classify(network: Network, inputs: np.ndarray) -> np.ndarray:
    """Return the arg-max class index for each input in the batch."""
    return np.argmax(forward(network, inputs), axis=1)
