"""The :class:`Network` container: an ordered list of layers plus accounting.

A ``Network`` knows how big it is under any registered
:class:`~repro.quantization.formats.DataFormat`, which layers contribute
traffic to the on-chip *weight memory*, and can render a human-readable
summary.  It is deliberately inference-only — training is out of scope for the
paper and for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Layer, Linear
from repro.utils.units import MB


@dataclass
class Network:
    """An ordered, named collection of layers."""

    name: str
    layers: List[Layer] = field(default_factory=list)
    input_shape: Tuple[int, int, int] = (3, 224, 224)
    dataset: str = "imagenet"

    def __post_init__(self) -> None:
        # Give anonymous layers a stable, unique name so that per-layer
        # reports and reproducible weight seeds can refer to them.
        seen = set()
        for index, layer in enumerate(self.layers):
            if not layer.name:
                layer.name = f"{type(layer).__name__.lower()}_{index}"
            if layer.name in seen:
                raise ValueError(f"duplicate layer name '{layer.name}' in network '{self.name}'")
            seen.add(layer.name)

    # ------------------------------------------------------------------ #
    # Iteration helpers
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"network '{self.name}' has no layer named '{name}'")

    def weight_layers(self) -> List[Layer]:
        """Layers whose weights are streamed through the on-chip weight memory.

        Convolution and fully-connected layers contribute; normalisation
        parameters are folded into the datapath (see ``BatchNorm2d``).
        Composite layers (Inception modules, residual blocks) are expanded
        into their weight-carrying sub-layers.
        """
        selected: List[Layer] = []
        for layer in self.layers:
            if hasattr(layer, "iter_weight_sublayers"):
                selected.extend(layer.iter_weight_sublayers())
                continue
            if not layer.has_weights:
                continue
            if not getattr(layer, "counts_toward_weight_memory", True):
                continue
            selected.append(layer)
        return selected

    def conv_layers(self) -> List[Conv2d]:
        """All convolution layers in order."""
        return [layer for layer in self.layers if isinstance(layer, Conv2d)]

    def linear_layers(self) -> List[Linear]:
        """All fully-connected layers in order."""
        return [layer for layer in self.layers if isinstance(layer, Linear)]

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def parameter_count(self) -> int:
        """Total trainable parameters (all layers, weights + biases)."""
        return sum(layer.parameter_count for layer in self.layers)

    @property
    def weight_count(self) -> int:
        """Parameters streamed through the weight memory (no biases/norms)."""
        return sum(layer.weight_count for layer in self.weight_layers())

    def model_size_bytes(self, bytes_per_parameter: float = 4.0) -> float:
        """Model size in bytes at the given storage width (default float32)."""
        return self.parameter_count * float(bytes_per_parameter)

    def model_size_mb(self, bytes_per_parameter: float = 4.0) -> float:
        """Model size in MB (Fig. 1a uses float32, i.e. 4 bytes/parameter)."""
        return self.model_size_bytes(bytes_per_parameter) / MB

    def macs(self) -> int:
        """Total multiply-accumulate operations for one inference."""
        total = 0
        shape = self.input_shape
        for layer in self.layers:
            if isinstance(layer, (Conv2d, Linear)):
                total += layer.macs(shape)
            shape = layer.output_shape(shape)
        return total

    def output_shape(self) -> Tuple[int, int, int]:
        """Shape produced by the final layer."""
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self) -> List[Tuple[str, Tuple[int, int, int]]]:
        """(layer name, output shape) for every layer, in order."""
        shapes = []
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append((layer.name, shape))
        return shapes

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    @property
    def has_weights_attached(self) -> bool:
        """True when every weight-carrying layer holds a numpy weight tensor."""
        weight_layers = self.weight_layers()
        return bool(weight_layers) and all(layer.weights is not None for layer in weight_layers)

    def flat_weights(self) -> np.ndarray:
        """All weight values of weight-memory layers as one flat float32 array.

        The concatenation order is the layer order, which is also the order
        in which the accelerator dataflow streams weights (Fig. 5).
        """
        if not self.has_weights_attached:
            raise ValueError(
                f"network '{self.name}' has no weights attached; "
                "call repro.nn.attach_synthetic_weights() or load a checkpoint first"
            )
        parts = [np.asarray(layer.weights, dtype=np.float32).reshape(-1)
                 for layer in self.weight_layers()]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.float32)

    def validate_weights(self) -> None:
        """Check that attached weight tensors match the declared shapes."""
        for layer in self.weight_layers():
            if layer.weights is None:
                raise ValueError(f"layer '{layer.name}' has no weights attached")
            actual = tuple(np.asarray(layer.weights).shape)
            expected = tuple(layer.weight_shape)
            if actual != expected:
                raise ValueError(
                    f"layer '{layer.name}' weight shape {actual} does not match "
                    f"declared shape {expected}"
                )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable per-layer summary (name, type, shape, params)."""
        from repro.utils.tables import AsciiTable

        table = AsciiTable(
            ["layer", "type", "output shape", "weight shape", "params"],
            title=f"Network '{self.name}' (input {self.input_shape}, dataset {self.dataset})",
        )
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            table.add_row([
                layer.name,
                type(layer).__name__,
                "x".join(str(s) for s in shape),
                "x".join(str(s) for s in layer.weight_shape) if layer.has_weights else "-",
                layer.parameter_count,
            ])
        table.add_row(["TOTAL", "", "", "", self.parameter_count])
        return table.render()

    def describe(self) -> dict:
        """Machine-readable description used by experiment reports."""
        return {
            "name": self.name,
            "dataset": self.dataset,
            "input_shape": list(self.input_shape),
            "num_layers": len(self.layers),
            "num_weight_layers": len(self.weight_layers()),
            "parameter_count": self.parameter_count,
            "weight_count": self.weight_count,
            "model_size_mb_float32": self.model_size_mb(4.0),
            "macs": None,  # filled lazily by callers that need it (it is O(network))
        }


def concatenate_networks(name: str, networks: Sequence[Network],
                         input_shape: Optional[Tuple[int, int, int]] = None) -> Network:
    """Build a pseudo-network whose weight stream is the concatenation of others.

    Used by multi-tenant / multi-network aging scenarios (an accelerator that
    alternates between several DNNs over its lifetime).
    """
    layers: List[Layer] = []
    for network in networks:
        for layer in network.layers:
            clone = type(layer)(**{f: getattr(layer, f) for f in layer.__dataclass_fields__})
            clone.name = f"{network.name}.{layer.name}"
            layers.append(clone)
    return Network(
        name=name,
        layers=layers,
        input_shape=input_shape or networks[0].input_shape,
        dataset="+".join(sorted({n.dataset for n in networks})),
    )
