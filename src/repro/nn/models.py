"""Model zoo.

Architectures referenced by the paper:

* **AlexNet** and **VGG-16** (ImageNet) — used throughout the aging analysis
  (Figs. 6, 9, 11);
* the **custom MNIST network** of Sec. V-A — ``CONV(16,1,5,5)``,
  ``CONV(50,16,5,5)``, ``FC(256,800)``, ``FC(10,256)`` — used in the TPU-like
  NPU evaluation (Fig. 11);
* **GoogLeNet** and **ResNet-152** — used in the Fig. 1a size/accuracy
  comparison;
* **LeNet-5** — an additional small model used by examples and ablations.

All builders return a :class:`~repro.nn.network.Network` with exact layer
shapes; weights are attached separately (synthetic trained-like weights or a
loaded checkpoint), see :mod:`repro.nn.weights`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.nn.composite import Bottleneck, Inception
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network

#: Published ImageNet accuracies used for the Fig. 1a comparison
#: (top-1 %, top-5 %).  Values follow the single-crop numbers commonly
#: reported for the reference implementations of each architecture.
PUBLISHED_ACCURACY: Dict[str, Tuple[float, float]] = {
    "alexnet": (57.2, 80.2),
    "googlenet": (69.8, 89.5),
    "vgg16": (71.5, 90.4),
    "resnet152": (78.3, 94.1),
}


def alexnet() -> Network:
    """AlexNet (single-tower variant, ~61M parameters)."""
    layers = [
        Conv2d(name="conv1", out_channels=64, in_channels=3, kernel_size=(11, 11),
               stride=4, padding=2),
        ReLU(name="relu1"),
        LocalResponseNorm(name="lrn1"),
        MaxPool2d(name="pool1", kernel_size=3, stride=2),
        Conv2d(name="conv2", out_channels=192, in_channels=64, kernel_size=(5, 5), padding=2),
        ReLU(name="relu2"),
        LocalResponseNorm(name="lrn2"),
        MaxPool2d(name="pool2", kernel_size=3, stride=2),
        Conv2d(name="conv3", out_channels=384, in_channels=192, kernel_size=(3, 3), padding=1),
        ReLU(name="relu3"),
        Conv2d(name="conv4", out_channels=256, in_channels=384, kernel_size=(3, 3), padding=1),
        ReLU(name="relu4"),
        Conv2d(name="conv5", out_channels=256, in_channels=256, kernel_size=(3, 3), padding=1),
        ReLU(name="relu5"),
        MaxPool2d(name="pool5", kernel_size=3, stride=2),
        Flatten(name="flatten"),
        Dropout(name="drop6"),
        Linear(name="fc6", out_features=4096, in_features=256 * 6 * 6),
        ReLU(name="relu6"),
        Dropout(name="drop7"),
        Linear(name="fc7", out_features=4096, in_features=4096),
        ReLU(name="relu7"),
        Linear(name="fc8", out_features=1000, in_features=4096),
        Softmax(name="softmax"),
    ]
    return Network(name="alexnet", layers=layers, input_shape=(3, 224, 224), dataset="imagenet")


def vgg16() -> Network:
    """VGG-16 (configuration D, ~138M parameters)."""
    config = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"]
    layers = []
    in_channels = 3
    conv_index = 1
    block_index = 1
    for item in config:
        if item == "M":
            layers.append(MaxPool2d(name=f"pool{block_index}", kernel_size=2, stride=2))
            block_index += 1
            conv_index = 1
            continue
        layers.append(Conv2d(name=f"conv{block_index}_{conv_index}", out_channels=int(item),
                             in_channels=in_channels, kernel_size=(3, 3), padding=1))
        layers.append(ReLU(name=f"relu{block_index}_{conv_index}"))
        in_channels = int(item)
        conv_index += 1
    layers.extend([
        Flatten(name="flatten"),
        Linear(name="fc6", out_features=4096, in_features=512 * 7 * 7),
        ReLU(name="relu6"),
        Dropout(name="drop6"),
        Linear(name="fc7", out_features=4096, in_features=4096),
        ReLU(name="relu7"),
        Dropout(name="drop7"),
        Linear(name="fc8", out_features=1000, in_features=4096),
        Softmax(name="softmax"),
    ])
    return Network(name="vgg16", layers=layers, input_shape=(3, 224, 224), dataset="imagenet")


#: GoogLeNet Inception-v1 module configuration:
#: (in, 1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool_proj)
_GOOGLENET_INCEPTION_CONFIG = [
    ("inception3a", 192, 64, 96, 128, 16, 32, 32),
    ("inception3b", 256, 128, 128, 192, 32, 96, 64),
    ("pool", None, None, None, None, None, None, None),
    ("inception4a", 480, 192, 96, 208, 16, 48, 64),
    ("inception4b", 512, 160, 112, 224, 24, 64, 64),
    ("inception4c", 512, 128, 128, 256, 24, 64, 64),
    ("inception4d", 512, 112, 144, 288, 32, 64, 64),
    ("inception4e", 528, 256, 160, 320, 32, 128, 128),
    ("pool", None, None, None, None, None, None, None),
    ("inception5a", 832, 256, 160, 320, 32, 128, 128),
    ("inception5b", 832, 384, 192, 384, 48, 128, 128),
]


def googlenet() -> Network:
    """GoogLeNet / Inception-v1 (main branch, no auxiliary classifiers)."""
    layers = [
        Conv2d(name="conv1", out_channels=64, in_channels=3, kernel_size=(7, 7),
               stride=2, padding=3),
        ReLU(name="relu1"),
        MaxPool2d(name="pool1", kernel_size=3, stride=2, padding=1),
        LocalResponseNorm(name="lrn1"),
        Conv2d(name="conv2_reduce", out_channels=64, in_channels=64, kernel_size=(1, 1)),
        ReLU(name="relu2a"),
        Conv2d(name="conv2", out_channels=192, in_channels=64, kernel_size=(3, 3), padding=1),
        ReLU(name="relu2b"),
        LocalResponseNorm(name="lrn2"),
        MaxPool2d(name="pool2", kernel_size=3, stride=2, padding=1),
    ]
    pool_index = 3
    for entry in _GOOGLENET_INCEPTION_CONFIG:
        if entry[0] == "pool":
            layers.append(MaxPool2d(name=f"pool{pool_index}", kernel_size=3, stride=2, padding=1))
            pool_index += 1
            continue
        name, in_c, c1, c3r, c3, c5r, c5, proj = entry
        layers.append(Inception(name=name, in_channels=in_c, ch1x1=c1, ch3x3_reduce=c3r,
                                ch3x3=c3, ch5x5_reduce=c5r, ch5x5=c5, pool_proj=proj))
    layers.extend([
        GlobalAvgPool2d(name="avgpool"),
        Flatten(name="flatten"),
        Dropout(name="dropout", rate=0.4),
        Linear(name="fc", out_features=1000, in_features=1024),
        Softmax(name="softmax"),
    ])
    return Network(name="googlenet", layers=layers, input_shape=(3, 224, 224), dataset="imagenet")


def resnet152() -> Network:
    """ResNet-152 (bottleneck blocks 3/8/36/3, ~60M parameters)."""
    layers = [
        Conv2d(name="conv1", out_channels=64, in_channels=3, kernel_size=(7, 7),
               stride=2, padding=3, use_bias=False),
        ReLU(name="relu1"),
        MaxPool2d(name="pool1", kernel_size=3, stride=2, padding=1),
    ]
    stage_blocks = (3, 8, 36, 3)
    stage_planes = (64, 128, 256, 512)
    in_channels = 64
    for stage, (blocks, planes) in enumerate(zip(stage_blocks, stage_planes), start=1):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 1) else 1
            layer = Bottleneck(name=f"layer{stage}.{block}", in_channels=in_channels,
                               planes=planes, stride=stride)
            layers.append(layer)
            in_channels = layer.out_channels
    layers.extend([
        GlobalAvgPool2d(name="avgpool"),
        Flatten(name="flatten"),
        Linear(name="fc", out_features=1000, in_features=2048),
        Softmax(name="softmax"),
    ])
    return Network(name="resnet152", layers=layers, input_shape=(3, 224, 224), dataset="imagenet")


def custom_mnist_cnn() -> Network:
    """The paper's custom MNIST network (Sec. V-A).

    ``CONV(16,1,5,5)``, ``CONV(50,16,5,5)``, ``FC(256,800)``, ``FC(10,256)``
    with 2x2 max-pooling after each convolution (which yields exactly the 800
    inputs of the first FC layer for 28x28 MNIST images).
    """
    layers = [
        Conv2d(name="conv1", out_channels=16, in_channels=1, kernel_size=(5, 5)),
        ReLU(name="relu1"),
        MaxPool2d(name="pool1", kernel_size=2, stride=2),
        Conv2d(name="conv2", out_channels=50, in_channels=16, kernel_size=(5, 5)),
        ReLU(name="relu2"),
        MaxPool2d(name="pool2", kernel_size=2, stride=2),
        Flatten(name="flatten"),
        Linear(name="fc1", out_features=256, in_features=800),
        ReLU(name="relu3"),
        Linear(name="fc2", out_features=10, in_features=256),
        Softmax(name="softmax"),
    ]
    return Network(name="custom_mnist", layers=layers, input_shape=(1, 28, 28), dataset="mnist")


def lenet5() -> Network:
    """Classic LeNet-5 (used by examples and ablation studies)."""
    layers = [
        Conv2d(name="conv1", out_channels=6, in_channels=1, kernel_size=(5, 5), padding=2),
        ReLU(name="relu1"),
        AvgPool2d(name="pool1", kernel_size=2, stride=2),
        Conv2d(name="conv2", out_channels=16, in_channels=6, kernel_size=(5, 5)),
        ReLU(name="relu2"),
        AvgPool2d(name="pool2", kernel_size=2, stride=2),
        Flatten(name="flatten"),
        Linear(name="fc1", out_features=120, in_features=16 * 5 * 5),
        ReLU(name="relu3"),
        Linear(name="fc2", out_features=84, in_features=120),
        ReLU(name="relu4"),
        Linear(name="fc3", out_features=10, in_features=84),
        Softmax(name="softmax"),
    ]
    return Network(name="lenet5", layers=layers, input_shape=(1, 28, 28), dataset="mnist")


#: Registry of model builders by canonical name.
MODEL_ZOO: Dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "googlenet": googlenet,
    "resnet152": resnet152,
    "custom_mnist": custom_mnist_cnn,
    "lenet5": lenet5,
}


def build_model(name: str) -> Network:
    """Build a model from the zoo by name."""
    try:
        builder = MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model '{name}'; known models: {known}") from None
    return builder()
