"""Vectorized bit-plane utilities.

All aging simulations in this library operate on *words* — unsigned integers
whose binary representation is exactly what a DNN accelerator writes into its
on-chip weight memory.  These helpers convert between word arrays and bit
arrays efficiently with numpy, and compute per-bit-position statistics
(the Fig. 6 analysis of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _check_word_bits(word_bits: int) -> int:
    if word_bits <= 0 or word_bits > 64:
        raise ValueError(f"word_bits must be in [1, 64], got {word_bits}")
    return int(word_bits)


def unpack_bits(words: np.ndarray, word_bits: int, msb_first: bool = True) -> np.ndarray:
    """Unpack an array of unsigned integer words into a bit matrix.

    Parameters
    ----------
    words:
        Array of non-negative integers, any shape; flattened internally.
    word_bits:
        Number of bits per word (1..64).
    msb_first:
        If True (default) column 0 of the result is the most significant bit.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``(words.size, word_bits)`` containing 0/1.
    """
    word_bits = _check_word_bits(word_bits)
    flat = np.asarray(words).reshape(-1).astype(np.uint64)
    if flat.size and int(flat.max()) >= (1 << word_bits):
        raise ValueError(
            f"word value {int(flat.max())} does not fit in {word_bits} bits"
        )
    # One C pass through np.unpackbits over a big-endian byte view — roughly
    # an order of magnitude faster (and 8x less temporary memory) than the
    # per-bit shift-and-mask loop it replaces.
    if word_bits <= 8:
        byte_width, dtype = 1, np.uint8
    elif word_bits <= 16:
        byte_width, dtype = 2, np.dtype(">u2")
    elif word_bits <= 32:
        byte_width, dtype = 4, np.dtype(">u4")
    else:
        byte_width, dtype = 8, np.dtype(">u8")
    octets = flat.astype(dtype).view(np.uint8).reshape(-1, byte_width)
    bits = np.unpackbits(octets, axis=1)[:, byte_width * 8 - word_bits:]
    if not msb_first:
        bits = bits[:, ::-1]
    return np.ascontiguousarray(bits)


def pack_words_to_bits(words: np.ndarray, word_bits: int, msb_first: bool = True) -> np.ndarray:
    """Flatten words into a 1-D bit stream (row-major, word after word)."""
    return unpack_bits(words, word_bits, msb_first=msb_first).reshape(-1)


def pack_bits_to_words(bits: np.ndarray, word_bits: int, msb_first: bool = True) -> np.ndarray:
    """Inverse of :func:`pack_words_to_bits`: group a bit stream into words."""
    word_bits = _check_word_bits(word_bits)
    flat = np.asarray(bits).reshape(-1).astype(np.uint64)
    if flat.size % word_bits != 0:
        raise ValueError(
            f"bit stream length {flat.size} is not a multiple of word_bits={word_bits}"
        )
    if flat.size and int(flat.max()) > 1:
        raise ValueError("bit stream must contain only 0/1 values")
    matrix = flat.reshape(-1, word_bits)
    shifts = np.arange(word_bits, dtype=np.uint64)
    if msb_first:
        shifts = shifts[::-1].copy()
    return (matrix << shifts[None, :]).sum(axis=1, dtype=np.uint64)


def words_to_bitplanes(words: np.ndarray, word_bits: int, msb_first: bool = True) -> np.ndarray:
    """Return the transposed bit matrix: shape ``(word_bits, n_words)``.

    Row ``j`` is the *bit plane* of bit-position ``j`` (MSB first by default),
    which is the natural layout for per-bit-position probability analysis.
    """
    return unpack_bits(words, word_bits, msb_first=msb_first).T


def bit_probabilities(words: np.ndarray, word_bits: int, msb_first: bool = False) -> np.ndarray:
    """Probability of observing a '1' at each bit position (paper Fig. 6).

    Parameters
    ----------
    msb_first:
        The paper plots bit-location with LSB = 0, so the default here is
        LSB-first indexing: element ``j`` of the result is the probability of
        a '1' at bit-location ``j``.

    Returns
    -------
    numpy.ndarray
        Float array of length ``word_bits`` with values in [0, 1].
    """
    bits = unpack_bits(words, word_bits, msb_first=msb_first)
    if bits.shape[0] == 0:
        return np.full(word_bits, np.nan)
    return bits.mean(axis=0, dtype=np.float64)


def hamming_weight(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Number of '1' bits in each word."""
    return unpack_bits(words, word_bits).sum(axis=1, dtype=np.int64)


def invert_words(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Bitwise complement of each word within ``word_bits`` bits."""
    word_bits = _check_word_bits(word_bits)
    mask = np.uint64((1 << word_bits) - 1) if word_bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    return (np.asarray(words).astype(np.uint64) ^ mask).astype(np.uint64)


def rotate_words(words: np.ndarray, word_bits: int, amount: int) -> np.ndarray:
    """Rotate every word left by ``amount`` bit positions (barrel shift)."""
    word_bits = _check_word_bits(word_bits)
    amount = int(amount) % word_bits
    if amount == 0:
        return np.asarray(words).astype(np.uint64).copy()
    values = np.asarray(words).astype(np.uint64)
    mask = np.uint64((1 << word_bits) - 1) if word_bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    left = (values << np.uint64(amount)) & mask
    right = values >> np.uint64(word_bits - amount)
    return (left | right).astype(np.uint64)


def random_words(rng: np.random.Generator, count: int, word_bits: int,
                 probability_of_one: Optional[float] = None) -> np.ndarray:
    """Generate random words; optionally with a biased per-bit probability."""
    word_bits = _check_word_bits(word_bits)
    if probability_of_one is None:
        high = 1 << word_bits
        return rng.integers(0, high, size=count, dtype=np.uint64)
    bits = (rng.random((count, word_bits)) < probability_of_one).astype(np.uint64)
    shifts = np.arange(word_bits, dtype=np.uint64)[::-1].copy()
    return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)
