"""Range-linear post-training quantization (symmetric and asymmetric).

These are the two 8-bit integer representations studied in the paper
(Sec. III-A, citing Lin et al., "Fixed point quantization of deep
convolutional networks").

* **Symmetric** quantization maps the float range ``[-max|w|, +max|w|]`` to
  signed integers ``[-2^(n-1)+1, 2^(n-1)-1]`` with a zero-point of 0.  The
  stored machine word is the two's-complement pattern of the signed integer.
* **Asymmetric** quantization maps ``[min(w), max(w)]`` to unsigned integers
  ``[0, 2^n - 1]`` with a non-zero zero-point.  The stored machine word is the
  unsigned integer itself.

Both per-tensor and per-channel parameter computation are supported; the
paper's experiments use per-tensor quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class LinearQuantParams:
    """Scale / zero-point pair describing a range-linear quantization."""

    scale: float
    zero_point: int
    num_bits: int
    signed: bool

    @property
    def qmin(self) -> int:
        """Smallest representable integer level."""
        if self.signed:
            return -(2 ** (self.num_bits - 1)) + 1
        return 0

    @property
    def qmax(self) -> int:
        """Largest representable integer level."""
        if self.signed:
            return 2 ** (self.num_bits - 1) - 1
        return 2 ** self.num_bits - 1


def _check_bits(num_bits: int) -> int:
    check_in_range(num_bits, "num_bits", low=2, high=32)
    return int(num_bits)


def compute_symmetric_params(values: np.ndarray, num_bits: int = 8) -> LinearQuantParams:
    """Compute per-tensor symmetric quantization parameters."""
    num_bits = _check_bits(num_bits)
    array = np.asarray(values, dtype=np.float64)
    finite = array[np.isfinite(array)]
    abs_max = float(np.max(np.abs(finite))) if finite.size else 0.0
    qmax = 2 ** (num_bits - 1) - 1
    scale = abs_max / qmax
    # A subnormal abs_max can underflow the division to exactly 0.0; a
    # non-positive scale would corrupt every level, so such tensors quantize
    # to 0 with a unit scale.
    if not scale > 0.0:
        scale = 1.0
    return LinearQuantParams(scale=scale, zero_point=0, num_bits=num_bits, signed=True)


def compute_asymmetric_params(values: np.ndarray, num_bits: int = 8) -> LinearQuantParams:
    """Compute per-tensor asymmetric quantization parameters."""
    num_bits = _check_bits(num_bits)
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return LinearQuantParams(scale=1.0, zero_point=0, num_bits=num_bits, signed=False)
    # The representable range must include zero so that zero-valued weights
    # (and zero padding) are exactly representable.  NaN/inf entries are
    # excluded from the range so they cannot poison the scale/zero-point of
    # the finite weights (a +/-inf value saturates to qmin/qmax on its own
    # when quantized).
    finite = array[np.isfinite(array)]
    low = min(float(finite.min()), 0.0) if finite.size else 0.0
    high = max(float(finite.max()), 0.0) if finite.size else 0.0
    qmax = 2 ** num_bits - 1
    span = high - low
    scale = span / qmax
    # A subnormal span can underflow the division to exactly 0.0, which would
    # break the zero-point computation; such tensors quantize to 0 with a
    # unit scale, like empty/all-zero inputs.
    if not scale > 0.0:
        scale = 1.0
    zero_point = int(round(-low / scale))
    zero_point = int(np.clip(zero_point, 0, qmax))
    return LinearQuantParams(scale=scale, zero_point=zero_point, num_bits=num_bits, signed=False)


def quantize_with_params(values: np.ndarray, params: LinearQuantParams) -> np.ndarray:
    """Quantize float values to integer levels using precomputed parameters.

    ``+/-inf`` saturates to the end of the representable range; NaN has no
    meaningful level and is rejected loudly (a NaN weight means a corrupt
    source tensor, and silently storing an arbitrary bit pattern would
    poison every downstream duty-cycle statistic).
    """
    array = np.asarray(values, dtype=np.float64)
    if np.isnan(array).any():
        raise ValueError(f"cannot quantize NaN values "
                         f"({int(np.isnan(array).sum())} found)")
    levels = np.round(array / params.scale) + params.zero_point
    return np.clip(levels, params.qmin, params.qmax).astype(np.int64)


def dequantize_with_params(levels: np.ndarray, params: LinearQuantParams) -> np.ndarray:
    """Map integer levels back to (approximate) float values."""
    return (np.asarray(levels, dtype=np.float64) - params.zero_point) * params.scale


def levels_to_words(levels: np.ndarray, params: LinearQuantParams) -> np.ndarray:
    """Convert integer levels to the unsigned machine words stored in memory.

    Signed levels are stored as two's complement within ``num_bits`` bits.
    """
    levels = np.asarray(levels, dtype=np.int64)
    if params.signed:
        mask = (1 << params.num_bits) - 1
        return (levels & mask).astype(np.uint64)
    return levels.astype(np.uint64)


def words_to_levels(words: np.ndarray, params: LinearQuantParams) -> np.ndarray:
    """Inverse of :func:`levels_to_words`."""
    words = np.asarray(words, dtype=np.uint64).astype(np.int64)
    if not params.signed:
        return words
    sign_bit = 1 << (params.num_bits - 1)
    mask = (1 << params.num_bits) - 1
    words = words & mask
    return np.where(words >= sign_bit, words - (mask + 1), words)


class SymmetricQuantizer:
    """Per-tensor (or per-channel) symmetric range-linear quantizer."""

    def __init__(self, num_bits: int = 8, per_channel: bool = False, channel_axis: int = 0):
        self.num_bits = _check_bits(num_bits)
        self.per_channel = bool(per_channel)
        self.channel_axis = int(channel_axis)

    def quantize(self, values: np.ndarray) -> Tuple[np.ndarray, LinearQuantParams]:
        """Quantize ``values``; returns (integer levels, parameters).

        For per-channel mode the returned parameters describe channel 0 and a
        list of per-channel parameters is available via :meth:`channel_params`.
        """
        if not self.per_channel:
            params = compute_symmetric_params(values, self.num_bits)
            return quantize_with_params(values, params), params
        params_list = self.channel_params(values)
        moved = np.moveaxis(np.asarray(values, dtype=np.float64), self.channel_axis, 0)
        levels = np.empty_like(moved, dtype=np.int64)
        for channel, channel_params in enumerate(params_list):
            levels[channel] = quantize_with_params(moved[channel], channel_params)
        return np.moveaxis(levels, 0, self.channel_axis), params_list[0]

    def channel_params(self, values: np.ndarray) -> list:
        """Per-channel quantization parameters along ``channel_axis``."""
        moved = np.moveaxis(np.asarray(values, dtype=np.float64), self.channel_axis, 0)
        return [compute_symmetric_params(moved[channel], self.num_bits)
                for channel in range(moved.shape[0])]

    def to_words(self, values: np.ndarray) -> Tuple[np.ndarray, LinearQuantParams]:
        """Quantize and return the flat array of stored machine words."""
        levels, params = self.quantize(values)
        return levels_to_words(levels.reshape(-1), params), params


class AsymmetricQuantizer:
    """Per-tensor asymmetric range-linear quantizer."""

    def __init__(self, num_bits: int = 8):
        self.num_bits = _check_bits(num_bits)

    def quantize(self, values: np.ndarray) -> Tuple[np.ndarray, LinearQuantParams]:
        """Quantize ``values``; returns (integer levels, parameters)."""
        params = compute_asymmetric_params(values, self.num_bits)
        return quantize_with_params(values, params), params

    def to_words(self, values: np.ndarray) -> Tuple[np.ndarray, LinearQuantParams]:
        """Quantize and return the flat array of stored machine words."""
        levels, params = self.quantize(values)
        return levels_to_words(levels.reshape(-1), params), params


def quantize_symmetric(values: np.ndarray, num_bits: int = 8) -> Tuple[np.ndarray, LinearQuantParams]:
    """Convenience wrapper: per-tensor symmetric quantization to levels."""
    return SymmetricQuantizer(num_bits=num_bits).quantize(values)


def quantize_asymmetric(values: np.ndarray, num_bits: int = 8) -> Tuple[np.ndarray, LinearQuantParams]:
    """Convenience wrapper: per-tensor asymmetric quantization to levels."""
    return AsymmetricQuantizer(num_bits=num_bits).quantize(values)


def quantization_error(values: np.ndarray, params: Optional[LinearQuantParams] = None,
                       symmetric: bool = True, num_bits: int = 8) -> float:
    """Root-mean-square error introduced by quantizing ``values``."""
    array = np.asarray(values, dtype=np.float64)
    if params is None:
        params = (compute_symmetric_params(array, num_bits) if symmetric
                  else compute_asymmetric_params(array, num_bits))
    levels = quantize_with_params(array, params)
    reconstructed = dequantize_with_params(levels, params)
    return float(np.sqrt(np.mean((array - reconstructed) ** 2))) if array.size else 0.0
