"""Generic signed fixed-point (Qm.n) formats.

The paper's evaluation uses float32 and 8-bit range-linear integers, but the
framework is explicitly format-agnostic ("the mitigation technique should be
generic and independent of the datatype used").  Fixed-point formats are a
common alternative in embedded DNN accelerators, so they are provided as an
additional :class:`~repro.quantization.formats.DataFormat` backend and are
used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format with ``integer_bits`` and
    ``fraction_bits`` (sign bit included in ``integer_bits``)."""

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("integer_bits must include the sign bit (>= 1)")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be >= 0")
        if self.word_bits > 64:
            raise ValueError("total width must not exceed 64 bits")

    @property
    def word_bits(self) -> int:
        """Total width of the stored word."""
        return self.integer_bits + self.fraction_bits

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.word_bits - 1) - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.word_bits - 1)) * self.resolution

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize float values to integer levels (two's-complement range)."""
        array = np.asarray(values, dtype=np.float64)
        levels = np.round(array / self.resolution)
        low = -(2 ** (self.word_bits - 1))
        high = 2 ** (self.word_bits - 1) - 1
        return np.clip(levels, low, high).astype(np.int64)

    def dequantize(self, levels: np.ndarray) -> np.ndarray:
        """Map integer levels back to float values."""
        return np.asarray(levels, dtype=np.float64) * self.resolution

    def to_words(self, values: np.ndarray) -> np.ndarray:
        """Quantize and return the unsigned machine words (two's complement)."""
        levels = self.quantize(values).reshape(-1)
        mask = (1 << self.word_bits) - 1
        return (levels & mask).astype(np.uint64)

    def from_words(self, words: np.ndarray) -> np.ndarray:
        """Decode machine words back to float values."""
        words = np.asarray(words, dtype=np.uint64).astype(np.int64)
        sign_bit = 1 << (self.word_bits - 1)
        mask = (1 << self.word_bits) - 1
        words = words & mask
        levels = np.where(words >= sign_bit, words - (mask + 1), words)
        return self.dequantize(levels)


def quantize_fixed_point(values: np.ndarray, integer_bits: int,
                         fraction_bits: int) -> Tuple[np.ndarray, FixedPointFormat]:
    """Quantize ``values`` with a Q(integer_bits).(fraction_bits) format."""
    fmt = FixedPointFormat(integer_bits=integer_bits, fraction_bits=fraction_bits)
    return fmt.quantize(values), fmt


def best_fixed_point_format(values: np.ndarray, word_bits: int) -> FixedPointFormat:
    """Choose the Qm.n split of ``word_bits`` that minimises clipping.

    The integer width is the smallest that covers the dynamic range of the
    data; the remaining bits become fraction bits.
    """
    if word_bits < 2:
        raise ValueError("word_bits must be >= 2 for a signed fixed-point format")
    array = np.asarray(values, dtype=np.float64)
    abs_max = float(np.max(np.abs(array))) if array.size else 0.0
    integer_bits = 1
    while integer_bits < word_bits and (2 ** (integer_bits - 1)) <= abs_max:
        integer_bits += 1
    return FixedPointFormat(integer_bits=integer_bits, fraction_bits=word_bits - integer_bits)
