"""Quantization and data-representation substrate.

The aging analysis in DNN-Life depends on the *bit-level* view of DNN weights
under different data representations.  This package implements:

* IEEE-754 single-precision decomposition (:mod:`repro.quantization.float32`);
* range-linear symmetric and asymmetric 8-bit quantization, per-tensor and
  per-channel (:mod:`repro.quantization.linear`);
* generic signed/unsigned fixed-point formats (:mod:`repro.quantization.fixed_point`);
* vectorized bit-plane utilities (:mod:`repro.quantization.bitops`);
* a :class:`~repro.quantization.formats.DataFormat` registry that maps a name
  such as ``"int8_symmetric"`` to the machinery that turns a float weight
  tensor into the exact machine words written into the weight memory.
"""

from repro.quantization.bitops import (
    bit_probabilities,
    pack_words_to_bits,
    unpack_bits,
    words_to_bitplanes,
)
from repro.quantization.calibration import (
    calibration_report,
    mse_symmetric_params,
    percentile_symmetric_params,
)
from repro.quantization.fixed_point import FixedPointFormat, quantize_fixed_point
from repro.quantization.float32 import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    SIGN_BIT,
    decompose_float32,
    float32_to_words,
    words_to_float32,
)
from repro.quantization.formats import (
    DataFormat,
    available_formats,
    get_format,
    register_format,
)
from repro.quantization.linear import (
    AsymmetricQuantizer,
    LinearQuantParams,
    SymmetricQuantizer,
    quantize_asymmetric,
    quantize_symmetric,
)

__all__ = [
    "calibration_report",
    "mse_symmetric_params",
    "percentile_symmetric_params",
    "bit_probabilities",
    "pack_words_to_bits",
    "unpack_bits",
    "words_to_bitplanes",
    "FixedPointFormat",
    "quantize_fixed_point",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "SIGN_BIT",
    "decompose_float32",
    "float32_to_words",
    "words_to_float32",
    "DataFormat",
    "available_formats",
    "get_format",
    "register_format",
    "AsymmetricQuantizer",
    "LinearQuantParams",
    "SymmetricQuantizer",
    "quantize_asymmetric",
    "quantize_symmetric",
]
