"""Data-format registry.

A :class:`DataFormat` is the bridge between the software view of a DNN (float
weight tensors) and the hardware view (fixed-width machine words written into
the on-chip weight memory).  The three formats evaluated in the paper are
registered by default:

* ``float32``            — raw IEEE-754 binary32 words (32-bit);
* ``int8_symmetric``     — 8-bit range-linear symmetric quantization;
* ``int8_asymmetric``    — 8-bit range-linear asymmetric quantization;

plus fixed-point variants used in the ablation studies.  New formats can be
added with :func:`register_format` without touching the rest of the library,
which is the paper's "generic and independent of the datatype" requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.quantization.fixed_point import FixedPointFormat
from repro.quantization.float32 import float32_to_words, words_to_float32
from repro.quantization.linear import (
    AsymmetricQuantizer,
    SymmetricQuantizer,
    dequantize_with_params,
    words_to_levels,
)

#: Signature of the per-tensor encoder: float tensor -> (words, decoder).
EncodeFn = Callable[[np.ndarray], Tuple[np.ndarray, Callable[[np.ndarray], np.ndarray]]]


@dataclass(frozen=True)
class DataFormat:
    """A named, fixed-width data representation for DNN weights.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"int8_symmetric"``.
    word_bits:
        Width in bits of one stored weight word.
    description:
        Human-readable description used in reports.
    """

    name: str
    word_bits: int
    description: str
    _encode: EncodeFn

    def to_words(self, weights: np.ndarray) -> np.ndarray:
        """Convert a float weight tensor to a flat array of machine words."""
        words, _ = self._encode(np.asarray(weights))
        return words

    def to_words_with_decoder(self, weights: np.ndarray):
        """Convert to words and also return a decoder back to float values.

        The decoder closes over the quantization parameters computed for this
        particular tensor, which mirrors how a real accelerator keeps the
        per-tensor scale/zero-point alongside the integer weights.
        """
        return self._encode(np.asarray(weights))

    @property
    def bytes_per_weight(self) -> float:
        """Storage cost of one weight in bytes."""
        return self.word_bits / 8.0


_REGISTRY: Dict[str, DataFormat] = {}


def register_format(fmt: DataFormat, overwrite: bool = False) -> DataFormat:
    """Add a format to the global registry."""
    if fmt.name in _REGISTRY and not overwrite:
        raise ValueError(f"data format '{fmt.name}' is already registered")
    _REGISTRY[fmt.name] = fmt
    return fmt


def get_format(name: str) -> DataFormat:
    """Look up a registered format by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown data format '{name}'; known formats: {known}") from None


def available_formats() -> List[str]:
    """Names of all registered formats."""
    return sorted(_REGISTRY)


def _encode_float32(weights: np.ndarray):
    words = float32_to_words(weights)

    def decode(encoded_words: np.ndarray) -> np.ndarray:
        return words_to_float32(encoded_words)

    return words, decode


def _encode_int8_symmetric(weights: np.ndarray):
    quantizer = SymmetricQuantizer(num_bits=8)
    words, params = quantizer.to_words(weights)

    def decode(encoded_words: np.ndarray) -> np.ndarray:
        return dequantize_with_params(words_to_levels(encoded_words, params), params)

    return words, decode


def _encode_int8_asymmetric(weights: np.ndarray):
    quantizer = AsymmetricQuantizer(num_bits=8)
    words, params = quantizer.to_words(weights)

    def decode(encoded_words: np.ndarray) -> np.ndarray:
        return dequantize_with_params(words_to_levels(encoded_words, params), params)

    return words, decode


def _make_fixed_point_encoder(fmt: FixedPointFormat) -> EncodeFn:
    def encode(weights: np.ndarray):
        words = fmt.to_words(weights)

        def decode(encoded_words: np.ndarray) -> np.ndarray:
            return fmt.from_words(encoded_words)

        return words, decode

    return encode


def _register_default_formats() -> None:
    register_format(DataFormat(
        name="float32",
        word_bits=32,
        description="IEEE-754 single precision (raw 32-bit pattern)",
        _encode=_encode_float32,
    ))
    register_format(DataFormat(
        name="int8_symmetric",
        word_bits=8,
        description="8-bit range-linear symmetric quantization (two's complement)",
        _encode=_encode_int8_symmetric,
    ))
    register_format(DataFormat(
        name="int8_asymmetric",
        word_bits=8,
        description="8-bit range-linear asymmetric quantization (unsigned, zero-point)",
        _encode=_encode_int8_asymmetric,
    ))
    register_format(DataFormat(
        name="q1_7_fixed",
        word_bits=8,
        description="Q1.7 signed fixed point",
        _encode=_make_fixed_point_encoder(FixedPointFormat(1, 7)),
    ))
    register_format(DataFormat(
        name="q2_14_fixed",
        word_bits=16,
        description="Q2.14 signed fixed point",
        _encode=_make_fixed_point_encoder(FixedPointFormat(2, 14)),
    ))


_register_default_formats()

#: The three formats evaluated in the paper (Figs. 6 and 9).
PAPER_FORMATS = ("float32", "int8_symmetric", "int8_asymmetric")
