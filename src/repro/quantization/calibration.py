"""Quantization-range calibration (extension).

Post-training quantization quality (and, through the weight distributions,
the bit-level statistics the aging analysis sees) depends on how the
quantization range is chosen.  The paper uses plain min/max range-linear
quantization; this module adds the two calibrators most deployment toolchains
offer so that users can study their aging impact:

* **percentile calibration** — clip the range to the p-th percentile of the
  absolute values, trading a little clipping error for much finer resolution
  on the bulk of the weights;
* **MSE calibration** — search the clipping threshold that minimises the mean
  squared quantization error.

Both return the same :class:`~repro.quantization.linear.LinearQuantParams`
used everywhere else, so calibrated quantizers drop into the existing
:class:`~repro.quantization.formats.DataFormat` machinery.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.quantization.linear import (
    LinearQuantParams,
    dequantize_with_params,
    quantize_with_params,
)
from repro.utils.validation import check_in_range, check_positive_int


def percentile_symmetric_params(values: np.ndarray, num_bits: int = 8,
                                percentile: float = 99.9) -> LinearQuantParams:
    """Symmetric parameters with the range clipped at a percentile of |w|."""
    check_positive_int(num_bits, "num_bits")
    check_in_range(percentile, "percentile", low=50.0, high=100.0)
    array = np.abs(np.asarray(values, dtype=np.float64).reshape(-1))
    if array.size == 0:
        return LinearQuantParams(scale=1.0, zero_point=0, num_bits=num_bits, signed=True)
    clip = float(np.percentile(array, percentile))
    clip = clip if clip > 0 else float(array.max() or 1.0)
    qmax = 2 ** (num_bits - 1) - 1
    return LinearQuantParams(scale=clip / qmax, zero_point=0, num_bits=num_bits, signed=True)


def mse_symmetric_params(values: np.ndarray, num_bits: int = 8,
                         num_candidates: int = 40) -> LinearQuantParams:
    """Symmetric parameters minimising the mean squared quantization error.

    The clipping threshold is swept between 20% and 100% of ``max |w|``; the
    candidate with the lowest reconstruction MSE wins.
    """
    check_positive_int(num_bits, "num_bits")
    check_positive_int(num_candidates, "num_candidates")
    array = np.asarray(values, dtype=np.float64).reshape(-1)
    if array.size == 0:
        return LinearQuantParams(scale=1.0, zero_point=0, num_bits=num_bits, signed=True)
    abs_max = float(np.abs(array).max())
    if abs_max == 0:  # dnn-lint: disable=DL006  (exact-zero degenerate guard)
        return LinearQuantParams(scale=1.0, zero_point=0, num_bits=num_bits, signed=True)
    qmax = 2 ** (num_bits - 1) - 1
    best_params = None
    best_error = np.inf
    for fraction in np.linspace(0.2, 1.0, num_candidates):
        params = LinearQuantParams(scale=fraction * abs_max / qmax, zero_point=0,
                                   num_bits=num_bits, signed=True)
        reconstructed = dequantize_with_params(quantize_with_params(array, params), params)
        error = float(np.mean((array - reconstructed) ** 2))
        if error < best_error:
            best_error = error
            best_params = params
    return best_params


def calibration_report(values: np.ndarray, num_bits: int = 8) -> dict:
    """Compare min/max, percentile and MSE calibration on one tensor.

    Returns, per method, the scale, the clipping fraction and the RMS error —
    the ingredients of the quantization-vs-aging trade-off ablation.
    """
    from repro.quantization.linear import compute_symmetric_params

    array = np.asarray(values, dtype=np.float64).reshape(-1)
    abs_max = float(np.abs(array).max()) if array.size else 0.0
    methods = {
        "minmax": compute_symmetric_params(array, num_bits),
        "percentile_99.9": percentile_symmetric_params(array, num_bits, 99.9),
        "mse": mse_symmetric_params(array, num_bits),
    }
    qmax = 2 ** (num_bits - 1) - 1
    report = {}
    for name, params in methods.items():
        reconstructed = dequantize_with_params(quantize_with_params(array, params), params)
        rms = float(np.sqrt(np.mean((array - reconstructed) ** 2))) if array.size else 0.0
        report[name] = {
            "scale": params.scale,
            "clip_fraction_of_max": (params.scale * qmax / abs_max) if abs_max else 1.0,
            "rms_error": rms,
        }
    return report


def calibrated_words(values: np.ndarray, params: LinearQuantParams) -> Tuple[np.ndarray, LinearQuantParams]:
    """Quantize ``values`` with precomputed calibrated parameters into words."""
    from repro.quantization.linear import levels_to_words

    levels = quantize_with_params(np.asarray(values, dtype=np.float64), params)
    return levels_to_words(levels.reshape(-1), params), params
