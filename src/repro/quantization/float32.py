"""IEEE-754 single-precision bit-level views.

The paper's first data representation is the standard 32-bit floating point
format.  The weight memory then simply stores the raw 32-bit pattern of each
weight; this module exposes that pattern and its sign/exponent/mantissa
decomposition for the bit-distribution analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bit-location (LSB = 0) of the sign bit in an IEEE-754 binary32 word.
SIGN_BIT = 31
#: Bit-locations of the exponent field, MSB to LSB.
EXPONENT_BITS = tuple(range(30, 22, -1))
#: Bit-locations of the mantissa (fraction) field, MSB to LSB.
MANTISSA_BITS = tuple(range(22, -1, -1))

WORD_BITS = 32


@dataclass(frozen=True)
class Float32Fields:
    """Sign / exponent / mantissa fields of an array of float32 values."""

    sign: np.ndarray
    exponent: np.ndarray
    mantissa: np.ndarray

    def reconstruct(self) -> np.ndarray:
        """Re-assemble the original float32 values from the fields."""
        words = (
            (self.sign.astype(np.uint32) << np.uint32(31))
            | (self.exponent.astype(np.uint32) << np.uint32(23))
            | self.mantissa.astype(np.uint32)
        )
        return words_to_float32(words)


def float32_to_words(values: np.ndarray) -> np.ndarray:
    """Return the raw 32-bit machine words of an array of float32 values."""
    as_float32 = np.ascontiguousarray(values, dtype=np.float32)
    return as_float32.view(np.uint32).reshape(-1).astype(np.uint64)


def words_to_float32(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float32_to_words`."""
    as_uint32 = np.ascontiguousarray(words, dtype=np.uint64).astype(np.uint32)
    return as_uint32.view(np.float32).copy()


def decompose_float32(values: np.ndarray) -> Float32Fields:
    """Split float32 values into their sign, exponent and mantissa fields."""
    words = float32_to_words(values).astype(np.uint32)
    sign = (words >> np.uint32(31)) & np.uint32(0x1)
    exponent = (words >> np.uint32(23)) & np.uint32(0xFF)
    mantissa = words & np.uint32(0x7FFFFF)
    return Float32Fields(sign=sign, exponent=exponent, mantissa=mantissa)


def exponent_value_distribution(values: np.ndarray) -> np.ndarray:
    """Histogram (256 bins) of the biased exponent field across the values.

    Useful for understanding why the high-order bit positions of float32 DNN
    weights are strongly biased: trained weights are concentrated well below
    1.0 in magnitude, so the biased exponent clusters in a narrow band below
    127 and its upper bits are almost always ``0111...``.
    """
    fields = decompose_float32(values)
    return np.bincount(fields.exponent.astype(np.int64), minlength=256).astype(np.int64)
