"""Performance-regression benchmark harness (``dnn-life bench``).

Times the aging-simulation engines against each other on AlexNet/VGG-class
weight-memory configurations and writes the machine-readable trajectory file
``BENCH_aging.json``, so engine-performance regressions show up as data
instead of anecdotes.
"""

from repro.bench.aging_bench import (
    BENCH_SCHEMA,
    DEFAULT_OUTPUT,
    DVFS_BENCH_SPEC,
    FLEET_BENCH_MIX,
    LEVELING_OVERHEAD_LIMIT,
    WEAR_SWAP_OVERHEAD_LIMIT,
    WORKLOAD_BENCH_MODELS,
    BenchCase,
    SyntheticWeightStream,
    bench_dvfs,
    bench_fleet,
    bench_leveling,
    bench_scenario,
    bench_workloads,
    check_leveling_overheads,
    default_bench_cases,
    default_leveling_case,
    render_bench_report,
    run_aging_bench,
    verify_leveling_against_explicit,
    verify_scenario_against_explicit,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_OUTPUT",
    "DVFS_BENCH_SPEC",
    "FLEET_BENCH_MIX",
    "LEVELING_OVERHEAD_LIMIT",
    "WEAR_SWAP_OVERHEAD_LIMIT",
    "WORKLOAD_BENCH_MODELS",
    "BenchCase",
    "SyntheticWeightStream",
    "bench_dvfs",
    "bench_fleet",
    "bench_leveling",
    "bench_scenario",
    "bench_workloads",
    "check_leveling_overheads",
    "default_bench_cases",
    "default_leveling_case",
    "render_bench_report",
    "run_aging_bench",
    "verify_leveling_against_explicit",
    "verify_scenario_against_explicit",
]
