"""Engine micro-benchmarks for the aging simulators.

The harness answers one question, repeatedly and over the repo's history: how
much faster is the vectorized *packed* fast engine than the legacy per-block
*blockwise* fast engine on realistic weight-memory workloads?  Each benchmark
case evaluates the full mitigation-policy suite on one configuration with
both engines, checks that the deterministic policies agree byte-for-byte,
and (on a small configuration) cross-validates the packed engine against the
exact write-by-write :class:`~repro.core.simulation.ExplicitAgingSimulator`.

Results are written to ``BENCH_aging.json`` (schema
:data:`BENCH_SCHEMA`), which CI uploads as a build artifact so the
performance trajectory of the hottest path in the repo is tracked from every
commit.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.accelerator.scheduler import PackedBitTensor, WeightBlock
from repro.core.policies import MitigationPolicy, make_policy
from repro.core.simulation import AgingSimulator, ExplicitAgingSimulator
from repro.experiments.aging_runner import build_workload_stream
from repro.experiments.common import ExperimentScale
from repro.memory.geometry import MemoryGeometry
from repro.quantization.bitops import random_words
from repro.utils.rng import SeedLike, as_rng
from repro.utils.units import KB
from repro.utils.validation import check_positive_int

#: Schema tag stamped into every benchmark payload.
BENCH_SCHEMA = "dnn-life-bench/v1"

#: Default output file of ``dnn-life bench``.
DEFAULT_OUTPUT = "BENCH_aging.json"

#: Policies timed on every case; ``dnn_life`` is stochastic, the rest are
#: deterministic and must agree byte-for-byte between the engines.
BENCH_POLICIES = ("none", "inversion", "barrel_shifter", "dnn_life")

_DETERMINISTIC = ("none", "inversion", "inversion_per_location", "barrel_shifter")


class SyntheticWeightStream:
    """A scheduler-compatible stream of biased random weight words.

    Lets the bench exercise configurations no registered data format reaches
    (the paper's 64-bit-word accountings) without quantizing a real network:
    the words are random with a DNN-like bit bias, the block structure and
    region placement mirror :class:`~repro.accelerator.scheduler.WeightStreamScheduler`.
    """

    def __init__(self, geometry: MemoryGeometry, num_blocks: int,
                 fifo_depth_tiles: int = 1, seed: SeedLike = 0,
                 probability_of_one: float = 0.35):
        self.geometry = geometry
        self.fifo_depth_tiles = check_positive_int(fifo_depth_tiles, "fifo_depth_tiles")
        if geometry.rows % self.fifo_depth_tiles != 0:
            raise ValueError(f"{geometry.rows} rows cannot be divided into "
                             f"{fifo_depth_tiles} FIFO tiles")
        check_positive_int(num_blocks, "num_blocks")
        rng = as_rng(seed)
        words = random_words(rng, num_blocks * self.words_per_block,
                             geometry.word_bits, probability_of_one)
        self._words = words.reshape(num_blocks, self.words_per_block)
        self._packed: Optional[PackedBitTensor] = None

    @property
    def words_per_block(self) -> int:
        """Words per block (one FIFO tile, or the whole memory)."""
        return self.geometry.rows // self.fifo_depth_tiles

    @property
    def num_blocks(self) -> int:
        """Blocks streamed per inference."""
        return int(self._words.shape[0])

    def iter_blocks(self):
        """Yield the synthetic blocks with round-robin region placement."""
        for index in range(self.num_blocks):
            yield WeightBlock(index=index, words=self._words[index],
                              region=index % self.fifo_depth_tiles,
                              layer_names=("synthetic",))

    def packed_bits(self) -> PackedBitTensor:
        """The stream's packed bit tensor (built lazily once)."""
        if self._packed is None:
            self._packed = PackedBitTensor.from_stream(self)
        return self._packed

    def describe(self) -> dict:
        """Machine-readable description of the synthetic schedule."""
        return {
            "network": "synthetic",
            "word_bits": self.geometry.word_bits,
            "memory_capacity_bytes": self.geometry.capacity_bytes,
            "memory_rows": self.geometry.rows,
            "words_per_block": self.words_per_block,
            "fifo_depth_tiles": self.fifo_depth_tiles,
            "total_weight_words": int(self._words.size),
            "num_blocks_per_inference": self.num_blocks,
        }


@dataclass(frozen=True)
class BenchCase:
    """One benchmark configuration.

    ``network=None`` makes the case synthetic (random words of
    ``word_bits``); otherwise the named model-zoo network is quantized with
    ``data_format`` exactly as the aging experiments do.
    """

    name: str
    description: str
    memory_kb: int
    word_bits: int
    num_inferences: int = 100
    fifo_depth_tiles: int = 1
    network: Optional[str] = None
    data_format: Optional[str] = None
    num_blocks: int = 0  # synthetic cases only
    policies: Tuple[str, ...] = BENCH_POLICIES
    max_weights_per_layer: Optional[int] = 1_000_000

    def build_stream(self, seed: int = 0, store=None):
        """Materialise the case's weight stream.

        The stream store is *disabled* by default (``store=None``) so the
        recorded ``stream_build_seconds`` stays an honest cold build; pass a
        :class:`~repro.streamstore.StreamStore` (or ``"auto"``) to opt in.
        """
        if self.network is None:
            geometry = MemoryGeometry(capacity_bytes=self.memory_kb * KB,
                                      word_bits=self.word_bits)
            return SyntheticWeightStream(geometry, self.num_blocks,
                                         fifo_depth_tiles=self.fifo_depth_tiles,
                                         seed=seed)
        from dataclasses import replace

        config = replace(baseline_config(), name=f"bench_{self.name}",
                         weight_memory_bytes=self.memory_kb * KB,
                         weight_fifo_depth_tiles=self.fifo_depth_tiles)
        scale = ExperimentScale(num_inferences=self.num_inferences,
                                max_weights_per_layer=self.max_weights_per_layer)
        return build_workload_stream(self.network, BaselineAccelerator(config=config),
                                     self.data_format, scale, seed=seed,
                                     store=store)

    def store_identity(self, seed: int = 0) -> Dict[str, object]:
        """The stream-defining parameters this case's store key hashes."""
        if self.network is None:
            return {
                "synthetic": True,
                "memory_kb": self.memory_kb,
                "word_bits": self.word_bits,
                "num_blocks": self.num_blocks,
                "fifo_depth_tiles": self.fifo_depth_tiles,
                "probability_of_one": 0.35,
                "seed": int(seed),
            }
        return {
            "network": self.network,
            "data_format": self.data_format,
            "memory_kb": self.memory_kb,
            "word_bits": self.word_bits,
            "fifo_depth_tiles": self.fifo_depth_tiles,
            "max_weights_per_layer": self.max_weights_per_layer,
            "seed": int(seed),
        }

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the configuration."""
        return {
            "name": self.name,
            "description": self.description,
            "memory_kb": self.memory_kb,
            "word_bits": self.word_bits,
            "num_inferences": self.num_inferences,
            "fifo_depth_tiles": self.fifo_depth_tiles,
            "network": self.network,
            "data_format": self.data_format,
            "num_blocks": self.num_blocks or None,
            "policies": list(self.policies),
        }


def default_bench_cases() -> List[BenchCase]:
    """The standard case suite: AlexNet/VGG-class memories plus a smoke case.

    ``alexnet_512kb_64bit`` is the acceptance configuration: the paper's
    baseline 512 KB weight memory with 64-bit words (the Table II datapath
    width) under an AlexNet-class block stream.
    """
    return [
        BenchCase(
            name="alexnet_512kb_64bit",
            description="AlexNet-class stream, 512 KB memory, 64-bit words",
            memory_kb=512, word_bits=64, num_blocks=84, num_inferences=100,
        ),
        BenchCase(
            name="alexnet_512kb_8bit",
            description="AlexNet int8 on the paper's baseline accelerator",
            memory_kb=512, word_bits=8, network="alexnet",
            data_format="int8_symmetric", num_inferences=100,
        ),
        BenchCase(
            name="vgg16_512kb_8bit",
            description="VGG-16 int8 on the paper's baseline accelerator",
            memory_kb=512, word_bits=8, network="vgg16",
            data_format="int8_symmetric", num_inferences=100,
        ),
        BenchCase(
            name="alexnet_fifo_256kb_8bit",
            description="AlexNet int8 on the TPU-like 4-tile weight FIFO",
            memory_kb=256, word_bits=8, fifo_depth_tiles=4, network="alexnet",
            data_format="int8_symmetric", num_inferences=100,
        ),
        BenchCase(
            name="smoke_mnist_8bit",
            description="tiny smoke configuration for tests",
            memory_kb=8, word_bits=8, network="custom_mnist",
            data_format="int8_symmetric", num_inferences=10,
            max_weights_per_layer=20_000,
        ),
    ]


def _best_of(repeats: int, function, *args, **kwargs) -> Tuple[float, object]:
    """Run ``function`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _policy_for(case: BenchCase, name: str, seed: int) -> MitigationPolicy:
    return make_policy(name, case.word_bits, seed=seed)


def _bench_stream_store(case: BenchCase, stream, cold_seconds: float,
                        seed: int, repeats: int,
                        store=None) -> Dict[str, object]:
    """Measure the stream store's warm-load path against the cold build.

    Persists the case's freshly-built packed tensor, times the memory-mapped
    reload, and pins bitwise identity by comparing the payload SHA-256 of the
    built and the loaded tensor.  With no ``store`` the measurement runs in
    an ephemeral directory, so benching never pollutes (or is flattered by)
    the user's real store.
    """
    import tempfile

    from repro.streamstore import (StreamStore, packed_content_sha256,
                                   stream_store_key)

    packed = stream.packed_bits()
    built_sha = packed_content_sha256(packed)
    created = None
    if store is None:
        created = tempfile.TemporaryDirectory(prefix="dnn-life-bench-streams-")
        store = StreamStore(created.name)
    try:
        kind = "synthetic" if case.network is None else "workload"
        key = stream_store_key(kind, case.store_identity(seed))
        store.put(key, packed, describe=stream.describe())
        warm_seconds, loaded = _best_of(repeats, store.load_stream, key)
        hit = loaded is not None
        loaded_sha = (packed_content_sha256(loaded.packed_bits())
                      if hit else None)
        return {
            "key": key,
            "cold_build_seconds": cold_seconds,
            "warm_load_seconds": warm_seconds,
            "hit": hit,
            "speedup": (cold_seconds / warm_seconds if warm_seconds else None),
            "bit_identical": bool(hit and loaded_sha == built_sha),
            "payload_sha256": built_sha,
            "entry_nbytes": int(store.payload_path(key).stat().st_size),
        }
    finally:
        if created is not None:
            created.cleanup()


def bench_case(case: BenchCase, repeats: int = 3, seed: int = 0,
               stream_store=None) -> Dict[str, object]:
    """Time both fast engines across the case's policy suite.

    The packed tensor build is timed separately and charged to the packed
    engine's total: it is the one-time cost every policy evaluation after the
    first gets for free.  The ``stream_store`` entry of the result records
    the store's cold-build vs warm-mmap-load trade for this case (measured
    against ``stream_store`` or an ephemeral one).
    """
    build_start = time.perf_counter()
    stream = case.build_stream(seed=seed)
    stream_build_seconds = time.perf_counter() - build_start

    packed_build_seconds, packed = _best_of(1, stream.packed_bits)

    policies: Dict[str, Dict[str, object]] = {}
    blockwise_total = 0.0
    packed_total = packed_build_seconds
    for policy_name in case.policies:
        def run(engine: str):
            simulator = AgingSimulator(stream, _policy_for(case, policy_name, seed),
                                       num_inferences=case.num_inferences,
                                       seed=seed, engine=engine)
            return simulator.run()

        blockwise_seconds, blockwise_result = _best_of(repeats, run, "blockwise")
        packed_seconds, packed_result = _best_of(repeats, run, "packed")
        deterministic = policy_name in _DETERMINISTIC
        exact = (bool(np.array_equal(blockwise_result.duty_cycles,
                                     packed_result.duty_cycles))
                 if deterministic else None)
        if deterministic and not exact:
            raise AssertionError(
                f"engines disagree on deterministic policy '{policy_name}' "
                f"for case '{case.name}'")
        blockwise_total += blockwise_seconds
        packed_total += packed_seconds
        policies[policy_name] = {
            "blockwise_seconds": blockwise_seconds,
            "packed_seconds": packed_seconds,
            "speedup": blockwise_seconds / packed_seconds if packed_seconds else None,
            "deterministic": deterministic,
            "exact_match": exact,
        }

    return {
        "case": case.describe(),
        "stream": stream.describe(),
        "packed_tensor_bytes": packed.nbytes,
        "stream_build_seconds": stream_build_seconds,
        "packed_build_seconds": packed_build_seconds,
        "stream_store": _bench_stream_store(
            case, stream, cold_seconds=stream_build_seconds + packed_build_seconds,
            seed=seed, repeats=repeats, store=stream_store),
        "policies": policies,
        "blockwise_total_seconds": blockwise_total,
        "packed_total_seconds": packed_total,
        "speedup": blockwise_total / packed_total if packed_total else None,
    }


def verify_against_explicit(seed: int = 0) -> Dict[str, object]:
    """Exact-match check of the packed engine on an explicit-simulable config.

    Runs every deterministic policy (including per-location inversion) on a
    small workload with both the packed engine and the write-by-write
    explicit simulator; the duty-cycles must agree exactly.
    """
    case = BenchCase(name="verify_mnist_8bit",
                     description="explicit-engine cross-check",
                     memory_kb=4, word_bits=8, network="custom_mnist",
                     data_format="int8_symmetric", num_inferences=3,
                     max_weights_per_layer=10_000)
    stream = case.build_stream(seed=seed)
    checks: Dict[str, bool] = {}
    for policy_name in _DETERMINISTIC:
        fast = AgingSimulator(stream, _policy_for(case, policy_name, seed),
                              num_inferences=case.num_inferences, seed=seed,
                              engine="packed").run()
        exact = ExplicitAgingSimulator(stream, _policy_for(case, policy_name, seed),
                                       num_inferences=case.num_inferences).run()
        checks[policy_name] = bool(np.array_equal(fast.duty_cycles, exact.duty_cycles))
    return {
        "case": case.describe(),
        "policies": checks,
        "explicit_match": all(checks.values()),
    }


#: Leveling policies timed by the wear-leveling bench entry, with the
#: constructor options each one is driven with.
LEVELING_BENCH_POLICIES = (
    ("rotation", {"period": 8, "step": 1}),
    ("start_gap", {"interval": 2}),
    ("wear_swap", {"interval": 5, "swap_fraction": 0.25}),
)


#: Leveled-run overhead budget for the schedule-driven levelers (rotation,
#: start-gap): their whole window composes through the fused roll/window
#: path, so a leveled packed run must stay within this factor of the
#: unleveled one.
LEVELING_OVERHEAD_LIMIT = 5.0

#: Separate budget for the feedback-driven wear-swap leveler.  Its mapping is
#: re-derived from observed wear at every swap interval, which serialises the
#: run into one stable ``argsort`` per interval — a cost the batched
#: composition cannot amortise without changing the swap decisions.  The
#: measured floor on the 64 KB case is ~12x; the budget leaves headroom for
#: machine noise while still catching a regression to the pre-batching 48x.
WEAR_SWAP_OVERHEAD_LIMIT = 20.0


def leveling_overhead_limit(leveler_name: str) -> float:
    """The leveled-overhead budget for one leveling policy."""
    return (WEAR_SWAP_OVERHEAD_LIMIT if leveler_name == "wear_swap"
            else LEVELING_OVERHEAD_LIMIT)


def check_leveling_overheads(leveling_payload: Dict[str, object]) -> List[str]:
    """Budget violations in a ``bench_leveling`` payload (empty = in budget).

    Each ``policy+leveler`` entry's measured overhead is compared against
    :func:`leveling_overhead_limit`; the returned strings are human-readable
    violation reports for the CLI/CI gate.
    """
    violations: List[str] = []
    entries = leveling_payload.get("entries", {})
    for key, entry in entries.items():
        overhead = entry.get("overhead")
        if overhead is None:
            continue
        leveler_name = key.rsplit("+", 1)[-1]
        limit = leveling_overhead_limit(leveler_name)
        if float(overhead) > limit:
            violations.append(
                f"{key}: leveled overhead {float(overhead):.2f}x exceeds "
                f"the {limit:g}x budget")
    return violations


def default_leveling_case() -> BenchCase:
    """The wear-leveling overhead configuration of ``BENCH_aging.json``.

    A synthetic 64 KB x 4-tile FIFO stream: large enough that the per-span
    row gathers dominate the leveled run, small enough to keep the bench
    budget modest.
    """
    return BenchCase(
        name="leveling_64kb_8bit_fifo4",
        description="wear-leveling overhead on a 64 KB 4-tile FIFO stream",
        memory_kb=64, word_bits=8, num_blocks=24, fifo_depth_tiles=4,
        num_inferences=50, policies=("none", "inversion"),
    )


def bench_leveling(case: Optional[BenchCase] = None, repeats: int = 3,
                   seed: int = 0, verify: bool = True) -> Dict[str, object]:
    """Time the packed engine with and without each wear-leveling policy.

    Leveling has no blockwise counterpart (the remap composes with the packed
    closed-form kernels only), so the reference point is the *unleveled*
    packed run of the same policy: the reported ``overhead`` is the factor a
    leveling schedule adds on top of it.  Each entry also records the
    region-imbalance movement so the perf trajectory doubles as a sanity
    check that the levelers keep doing their job.
    """
    from repro.leveling import make_leveler
    from repro.memory.wear_map import WearMap

    case = case or default_leveling_case()
    stream = case.build_stream(seed=seed)
    geometry = stream.geometry

    def run(policy_name: str, leveler_spec=None):
        leveler = None
        if leveler_spec is not None:
            name, options = leveler_spec
            leveler = make_leveler(name, geometry, case.fifo_depth_tiles, **options)
        simulator = AgingSimulator(stream, _policy_for(case, policy_name, seed),
                                   num_inferences=case.num_inferences,
                                   seed=seed, leveler=leveler)
        return simulator.run()

    def imbalance(result) -> float:
        wear = WearMap(result.duty_cycles, num_regions=case.fifo_depth_tiles)
        return float(wear.summary()["region_imbalance_pp"])

    entries: Dict[str, Dict[str, object]] = {}
    for policy_name in case.policies:
        baseline_seconds, baseline_result = _best_of(repeats, run, policy_name)
        baseline_imbalance = imbalance(baseline_result)
        for leveler_spec in LEVELING_BENCH_POLICIES:
            leveled_seconds, leveled_result = _best_of(repeats, run, policy_name,
                                                       leveler_spec)
            entries[f"{policy_name}+{leveler_spec[0]}"] = {
                "baseline_seconds": baseline_seconds,
                "leveled_seconds": leveled_seconds,
                "overhead": (leveled_seconds / baseline_seconds
                             if baseline_seconds else None),
                "region_imbalance_baseline_pp": baseline_imbalance,
                "region_imbalance_leveled_pp": imbalance(leveled_result),
            }
    payload: Dict[str, object] = {"case": case.describe(), "entries": entries}
    if verify:
        payload["verification"] = verify_leveling_against_explicit(seed=seed)
    return payload


def verify_leveling_against_explicit(seed: int = 0) -> Dict[str, object]:
    """Exact-match check of the packed leveling driver on a small config.

    Every deterministic policy runs under every leveling policy on both the
    packed closed-form engine and the write-by-write explicit simulator; the
    physical duty-cycles must agree bit-for-bit.
    """
    from repro.leveling import make_leveler

    case = BenchCase(name="verify_leveling_mnist_8bit",
                     description="leveling explicit-engine cross-check",
                     memory_kb=4, word_bits=8, fifo_depth_tiles=4,
                     network="custom_mnist", data_format="int8_symmetric",
                     num_inferences=6, max_weights_per_layer=10_000)
    stream = case.build_stream(seed=seed)
    geometry = stream.geometry
    checks: Dict[str, bool] = {}
    for policy_name in _DETERMINISTIC:
        for leveler_name, options in LEVELING_BENCH_POLICIES:
            fast = AgingSimulator(
                stream, _policy_for(case, policy_name, seed),
                num_inferences=case.num_inferences, seed=seed,
                leveler=make_leveler(leveler_name, geometry,
                                     case.fifo_depth_tiles, **options)).run()
            exact = ExplicitAgingSimulator(
                stream, _policy_for(case, policy_name, seed),
                num_inferences=case.num_inferences,
                leveler=make_leveler(leveler_name, geometry,
                                     case.fifo_depth_tiles, **options)).run()
            checks[f"{policy_name}+{leveler_name}"] = bool(
                np.array_equal(fast.duty_cycles, exact.duty_cycles))
    return {
        "case": case.describe(),
        "policies": checks,
        "explicit_match": all(checks.values()),
    }


# --------------------------------------------------------------------------- #
# Multi-phase lifetime scenarios
# --------------------------------------------------------------------------- #
#: Timeline of the scenario bench entry: a model swap, an idle retention
#: stretch and two thermal corners across four phases.
SCENARIO_BENCH_SPEC = ("custom_mnist:int8:inversion:20@85C,idle:10@45C,"
                       "lenet5:int8:none:20@45C,lenet5:int8:barrel_shifter:10@85C")

#: Leveling policies the scenario cross-check drives across phase boundaries.
SCENARIO_VERIFY_LEVELERS = (
    (None, {}),
    ("rotation", {"period": 3, "step": 1}),
    ("wear_swap", {"interval": 2, "swap_fraction": 0.25}),
)


def _scenario_bench_factory(memory_kb: int = 8, fifo_depth_tiles: int = 4,
                            seed: int = 0, max_weights_per_layer: int = 20_000):
    """Stream factory of the scenario bench/verify configurations."""
    from dataclasses import replace

    from repro.scenario.driver import scenario_stream_factory

    config = replace(baseline_config(), name="bench_scenario",
                     weight_memory_bytes=memory_kb * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    scale = ExperimentScale(num_inferences=100,
                            max_weights_per_layer=max_weights_per_layer)
    return scenario_stream_factory(BaselineAccelerator(config=config),
                                   scale=scale, seed=seed)


def bench_scenario(repeats: int = 3, seed: int = 0,
                   verify: bool = True) -> Dict[str, object]:
    """Time the multi-phase scenario driver against its single-phase parts.

    The reference point is the cost of running every active phase as a
    standalone packed :class:`~repro.core.simulation.AgingSimulator` — what
    the scenario driver would cost if phase composition were free.  The
    reported ``overhead`` is the factor the timeline machinery (per-phase
    kernels, stress-time aggregation, idle handling) adds on top.
    """
    from repro.core.policies import make_policy
    from repro.scenario.driver import ScenarioAgingSimulator
    from repro.scenario.phases import LifetimeScenario

    scenario = LifetimeScenario.from_spec(SCENARIO_BENCH_SPEC)
    factory = _scenario_bench_factory(seed=seed)

    def run_scenario():
        return ScenarioAgingSimulator(scenario, stream_factory=factory,
                                      seed=seed).run()

    def run_single_phases():
        results = []
        for phase in scenario.active_phases:
            stream = factory(phase)
            policy = make_policy(phase.policy, stream.geometry.word_bits, seed=seed)
            results.append(AgingSimulator(stream, policy,
                                          num_inferences=phase.duration,
                                          seed=seed).run())
        return results

    # Warm the stream cache so neither side is charged the one-time build.
    run_single_phases()
    scenario_seconds, scenario_result = _best_of(repeats, run_scenario)
    single_seconds, _ = _best_of(repeats, run_single_phases)
    payload: Dict[str, object] = {
        "spec": SCENARIO_BENCH_SPEC,
        "num_phases": len(scenario.phases),
        "active_epochs": scenario.active_epochs,
        "scenario_seconds": scenario_seconds,
        "single_phase_seconds": single_seconds,
        "overhead": (scenario_seconds / single_seconds
                     if single_seconds else None),
        "effective_years": scenario_result.effective_years,
        "wall_years": scenario_result.wall_years,
    }
    if verify:
        payload["verification"] = verify_scenario_against_explicit(seed=seed)
    return payload


def verify_scenario_against_explicit(seed: int = 0) -> Dict[str, object]:
    """Exact-match check of the packed scenario driver on small timelines.

    Three multi-phase scenarios (a model swap across thermal corners, a
    duty-cycled timeline with an idle retention stretch, and a DVFS
    timeline with per-phase operating points and a low-voltage idle corner)
    run with and without wear levelers on both the packed driver and the
    write-by-write phase-replay engine; the per-phase and effective
    duty-cycles — and the idle retention reports, built from the exact
    last-written value of every cell — must agree bit-for-bit.  A
    degenerate single-phase scenario is additionally checked against the
    classic :class:`~repro.core.simulation.AgingSimulator`.
    """
    from repro.core.policies import make_policy
    from repro.leveling import make_leveler
    from repro.scenario.driver import (
        ExplicitScenarioSimulator,
        ScenarioAgingSimulator,
    )
    from repro.scenario.phases import LifetimeScenario

    scenarios = {
        "model_swap_thermal": ("custom_mnist:int8:inversion:4@85C,"
                               "lenet5:int8:none:4@45C,"
                               "lenet5:int8:inversion_per_location:3@85C"),
        "duty_cycling_idle": ("custom_mnist:int8:barrel_shifter:5@85C,"
                              "idle:3@45C,custom_mnist:int8:inversion:4@25C"),
        "dvfs_retention": ("custom_mnist:int8:inversion:4@85C@0.8V:0.5GHz,"
                           "idle:3@45C@0.62V:0.1GHz,"
                           "lenet5:int8:barrel_shifter:4@45C@0.95V:1.2GHz"),
    }
    factory = _scenario_bench_factory(memory_kb=4, seed=seed,
                                      max_weights_per_layer=10_000)
    checks: Dict[str, bool] = {}
    for scenario_name, spec in scenarios.items():
        scenario = LifetimeScenario.from_spec(spec)
        geometry = factory(scenario.active_phases[0]).geometry
        for leveler_name, options in SCENARIO_VERIFY_LEVELERS:
            def build_leveler():
                if leveler_name is None:
                    return None
                return make_leveler(leveler_name, geometry, 4, **options)

            fast = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                          seed=seed, leveler=build_leveler()).run()
            exact = ExplicitScenarioSimulator(scenario, stream_factory=factory,
                                              seed=seed, leveler=build_leveler()).run()
            matches = bool(np.array_equal(fast.effective.duty_cycles,
                                          exact.effective.duty_cycles))
            matches = matches and all(
                np.array_equal(fast_stress.duty, exact_stress.duty)
                for fast_stress, exact_stress in zip(fast.phase_stress,
                                                     exact.phase_stress))
            matches = matches and fast.phase_retention == exact.phase_retention
            checks[f"{scenario_name}+{leveler_name or 'none'}"] = matches

    # Degenerate single-phase scenario == the classic single-stream engine.
    degenerate = LifetimeScenario.from_spec("custom_mnist:int8:inversion:5@85C")
    scenario_result = ScenarioAgingSimulator(degenerate, stream_factory=factory,
                                             seed=seed).run()
    phase = degenerate.phases[0]
    stream = factory(phase)
    classic = AgingSimulator(stream,
                             make_policy(phase.policy, stream.geometry.word_bits,
                                         seed=seed),
                             num_inferences=phase.duration, seed=seed).run()
    checks["degenerate_single_phase"] = bool(
        np.array_equal(scenario_result.effective.duty_cycles, classic.duty_cycles)
        and scenario_result.effective_years == degenerate.years)
    return {
        "scenarios": {name: spec for name, spec in scenarios.items()},
        "checks": checks,
        "explicit_match": all(checks.values()),
    }


#: Timeline of the DVFS bench entry: every phase at its own operating point,
#: with a low-voltage idle corner exercising the retention tracking.
DVFS_BENCH_SPEC = ("custom_mnist:int8:inversion:20@85C@0.95V:1.2GHz,"
                   "idle:10@45C@0.62V:0.1GHz,"
                   "lenet5:int8:none:20@45C@0.8V:0.5GHz,"
                   "lenet5:int8:barrel_shifter:10@85C@0.72V:0.8GHz")


def bench_dvfs(repeats: int = 3, seed: int = 0) -> Dict[str, object]:
    """Time a multi-operating-point scenario against its single-point twin.

    The reference point is the same timeline pinned entirely to the
    reference corner (what PR 4 could express); the reported ``overhead``
    is the factor the operating-point machinery — per-phase voltage/
    frequency weighting, closed-form last-written-value tracking, the idle
    retention report — adds on top of the plain scenario walk.
    """
    from repro.scenario.driver import ScenarioAgingSimulator
    from repro.scenario.phases import LifetimeScenario
    from dataclasses import replace as _replace

    factory = _scenario_bench_factory(seed=seed)
    multi_point = LifetimeScenario.from_spec(DVFS_BENCH_SPEC)
    # The single-point twin: identical phases, operating points stripped.
    single_point = LifetimeScenario(
        phases=tuple(_replace(phase, voltage_v=None, frequency_ghz=None)
                     for phase in multi_point.phases),
        years=multi_point.years,
        reference_temperature_c=multi_point.reference_temperature_c)

    def run(scenario):
        return ScenarioAgingSimulator(scenario, stream_factory=factory,
                                      seed=seed).run()

    run(single_point)  # warm the stream cache for both sides
    dvfs_seconds, dvfs_result = _best_of(repeats, run, multi_point)
    single_seconds, single_result = _best_of(repeats, run, single_point)
    retention = [entry for entry in (dvfs_result.phase_retention or [])
                 if entry is not None]
    return {
        "spec": DVFS_BENCH_SPEC,
        "num_phases": len(multi_point.phases),
        "num_operating_points": sum(phase.has_explicit_point
                                    for phase in multi_point.phases),
        "dvfs_seconds": dvfs_seconds,
        "single_point_seconds": single_seconds,
        "overhead": (dvfs_seconds / single_seconds if single_seconds else None),
        "effective_years_dvfs": dvfs_result.effective_years,
        "effective_years_single_point": single_result.effective_years,
        "idle_retention_mean": (retention[0]["failure_probability_mean"]
                                if retention else None),
    }


#: Population of the fleet bench entry: a deployment/idle-retention mix and a
#: retirement-corner workload, shipped at two DVFS corners with device spread.
FLEET_BENCH_MIX = ("0.6*custom_mnist:int8:inversion:40@85C,idle:10@45C@0.7V:0.2GHz|"
                   "0.4*lenet5:int8:none:40@45C")
FLEET_BENCH_CORNERS = ((0.9, 1.0), (0.8, 0.5))


def bench_fleet(repeats: int = 3, seed: int = 0, devices: int = 1000,
                verify: bool = True) -> Dict[str, object]:
    """Time the cohort-vectorized fleet engine against a per-device loop.

    The fleet engine evaluates the whole population through a handful of
    cohort-shared packed scenario runs plus closed-form per-device math; the
    reference point is what the naive approach would cost — one full
    :class:`~repro.scenario.driver.ScenarioAgingSimulator` run per device —
    measured on a small subsample and extrapolated to the population.  The
    subsample doubles as an equivalence check: the per-device loop must
    reproduce the fleet's failure times through the shared
    :func:`~repro.fleet.simulator.failure_times_from_scenario_result`
    composition.
    """
    from repro.fleet import (
        FleetSimulator,
        FleetSpec,
        failure_times_from_scenario_result,
        parse_mix_spec,
    )
    from repro.scenario.driver import ScenarioAgingSimulator

    scenarios, weights = parse_mix_spec(FLEET_BENCH_MIX)
    spec = FleetSpec(num_devices=devices, scenarios=scenarios,
                     scenario_weights=weights, corners=FLEET_BENCH_CORNERS,
                     usage_sigma=0.3, thermal_sigma_c=5.0, seed_groups=2,
                     seed=seed)
    factory = _scenario_bench_factory(memory_kb=4, seed=seed,
                                      max_weights_per_layer=10_000)
    simulator = FleetSimulator(spec, stream_factory=factory)

    simulator.run()  # warm the stream cache; charge neither side the build
    fleet_seconds, result = _best_of(repeats, simulator.run)

    sample = result.sample
    subsample = min(8, devices)

    def run_per_device_loop():
        references = []
        for device in range(subsample):
            run = ScenarioAgingSimulator(
                simulator.device_scenario(sample, device),
                stream_factory=factory,
                seed=simulator.device_seed(sample, device)).run()
            references.append(failure_times_from_scenario_result(
                run, usage=float(sample.usage[device]),
                max_degradation_percent=simulator.max_degradation_percent,
                reference_years=simulator.reference_years))
        return references

    run_per_device_loop()  # warm the per-device streams too
    loop_seconds, references = _best_of(repeats, run_per_device_loop)
    per_device_seconds = loop_seconds / subsample
    estimated_loop_seconds = per_device_seconds * devices

    payload: Dict[str, object] = {
        "mix": FLEET_BENCH_MIX,
        "corners": [list(corner) for corner in FLEET_BENCH_CORNERS],
        "devices": devices,
        "num_cohorts": len(result.cohorts),
        "fleet_seconds": fleet_seconds,
        "devices_per_second": devices / fleet_seconds if fleet_seconds else None,
        "per_device_scenario_seconds": per_device_seconds,
        "estimated_loop_seconds": estimated_loop_seconds,
        "speedup": (estimated_loop_seconds / fleet_seconds
                    if fleet_seconds else None),
        "modes": result.mode_summary(),
    }
    if verify:
        def close(a: float, b: float) -> bool:
            if np.isinf(a) and np.isinf(b):
                return True
            return bool(np.isclose(a, b, rtol=1e-9, atol=0.0))

        checks = [
            close(float(result.snm_years[device]), ref["snm_years"])
            and close(float(result.retention_years[device]),
                      ref["retention_years"])
            and str(result.modes[device]) == ref["mode"]
            for device, ref in enumerate(references)
        ]
        payload["verification"] = {
            "subsample_devices": subsample,
            "per_device_match": checks,
            "loop_match": all(checks),
        }
        if not all(checks):
            raise AssertionError(
                "fleet engine disagrees with the per-device scenario loop on "
                f"devices {[i for i, ok in enumerate(checks) if not ok]}")
    return payload


#: Model mix of the workload-generator bench: the same two-model 8-bit
#: deployment the ``workload`` experiment defaults to.
WORKLOAD_BENCH_MODELS = ("0.6*lenet5:int8:dnn_life|"
                         "0.4*custom_mnist:int8:inversion")


def bench_workloads(repeats: int = 3, seed: int = 0, histories: int = 256,
                    fleet_histories: int = 12,
                    devices: int = 256) -> Dict[str, object]:
    """Time the stochastic workload generator and its fleet hand-off.

    Two measurements: the pure compiler rate (histories sampled and
    compiled into a weighted :class:`~repro.fleet.spec.FleetSpec` per
    second — bookkeeping only, no simulation) with an in-process
    byte-identity check on the canonical payload, and the end-to-end rate
    of a fleet Monte Carlo whose population came out of the generator
    rather than a hand-written mix.  The fleet leg uses few histories:
    generated timelines are near-unique, so cohort sharing — the fleet
    engine's whole advantage — tracks the number of *unique* scenarios.
    """
    from repro.fleet import FleetSimulator
    from repro.utils.serialization import canonical_json
    from repro.workloads import TrafficModel, compile_fleet_spec, parse_model_mix

    models, weights = parse_model_mix(WORKLOAD_BENCH_MODELS)
    model = TrafficModel(models=models, model_weights=weights,
                         burst_probability=0.25, diurnal_amplitude=0.6,
                         night_corner=(0.7, 0.2), ota_interval_days=2.0,
                         idle_threshold=2, horizon_days=7, seed=seed)

    def compile_batch():
        return compile_fleet_spec(model, histories=histories, devices=devices)

    compile_seconds, spec = _best_of(repeats, compile_batch)
    byte_identical = (canonical_json(spec.to_payload())
                      == canonical_json(compile_batch().to_payload()))

    fleet_spec = compile_fleet_spec(model, histories=fleet_histories,
                                    devices=devices, usage_sigma=0.3,
                                    thermal_sigma_c=5.0, seed_groups=2)
    factory = _scenario_bench_factory(memory_kb=4, seed=seed,
                                      max_weights_per_layer=10_000)
    simulator = FleetSimulator(fleet_spec, stream_factory=factory)
    simulator.run()  # warm the stream cache; time only the simulation
    fleet_seconds, result = _best_of(repeats, simulator.run)

    return {
        "models": WORKLOAD_BENCH_MODELS,
        "histories": histories,
        "compile_seconds": compile_seconds,
        "histories_per_second": (histories / compile_seconds
                                 if compile_seconds else None),
        "byte_identical": byte_identical,
        "fleet_histories": fleet_histories,
        "devices": devices,
        "unique_scenarios": len(fleet_spec.scenarios),
        "num_cohorts": len(result.cohorts),
        "fleet_seconds": fleet_seconds,
        "devices_per_second": (devices / fleet_seconds
                               if fleet_seconds else None),
    }


def run_aging_bench(cases: Optional[Sequence[BenchCase]] = None, repeats: int = 3,
                    seed: int = 0, verify: bool = True,
                    leveling: bool = True, scenario: bool = True,
                    dvfs: bool = True, fleet: bool = True,
                    workloads: bool = True) -> Dict[str, object]:
    """Run the benchmark suite and return the ``BENCH_aging.json`` payload."""
    import tempfile

    from repro.streamstore import StreamStore

    cases = list(cases) if cases is not None else default_bench_cases()
    with tempfile.TemporaryDirectory(prefix="dnn-life-bench-streams-") as root:
        store = StreamStore(root)
        results = [bench_case(case, repeats=repeats, seed=seed,
                              stream_store=store) for case in cases]
    speedups = [entry["speedup"] for entry in results if entry["speedup"]]
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        # deliberate wall-clock: the trajectory file records *when* each
        # perf measurement was taken, it never feeds seeds or comparisons
        "created_unix": time.time(),  # dnn-lint: disable=DL002
        "repeats": repeats,
        "seed": seed,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "cases": results,
        "min_speedup": min(speedups) if speedups else None,
        "geomean_speedup": (float(np.exp(np.mean(np.log(speedups))))
                            if speedups else None),
    }
    if leveling:
        payload["leveling"] = bench_leveling(repeats=repeats, seed=seed, verify=verify)
    if scenario:
        payload["scenario"] = bench_scenario(repeats=repeats, seed=seed, verify=verify)
    if dvfs:
        payload["dvfs"] = bench_dvfs(repeats=repeats, seed=seed)
    if fleet:
        payload["fleet"] = bench_fleet(repeats=repeats, seed=seed, verify=verify)
    if workloads:
        payload["workloads"] = bench_workloads(repeats=repeats, seed=seed)
    if verify:
        payload["verification"] = verify_against_explicit(seed=seed)
    return payload


def render_bench_report(payload: Dict[str, object]) -> str:
    """ASCII rendering of one benchmark payload."""
    from repro.utils.tables import AsciiTable

    table = AsciiTable(
        ["case", "policy", "blockwise (s)", "packed (s)", "speedup", "exact"],
        title=(f"aging-engine benchmark — blockwise vs packed fast engine "
               f"(best of {payload['repeats']})"),
        precision=4,
    )
    for entry in payload["cases"]:
        case_name = entry["case"]["name"]
        for policy_name, row in entry["policies"].items():
            exact = row["exact_match"]
            table.add_row([
                case_name, policy_name,
                row["blockwise_seconds"], row["packed_seconds"],
                f"{row['speedup']:.1f}x",
                "=" if exact else ("n/a" if exact is None else "MISMATCH"),
            ])
        table.add_row([case_name, "TOTAL (+pack)",
                       entry["blockwise_total_seconds"],
                       entry["packed_total_seconds"],
                       f"{entry['speedup']:.1f}x", ""])
    lines = [table.render()]
    lines.append(f"minimum case speedup: {payload['min_speedup']:.1f}x, "
                 f"geometric mean: {payload['geomean_speedup']:.1f}x")
    store_lines = []
    for entry in payload["cases"]:
        store_entry = entry.get("stream_store")
        if store_entry is None:
            continue
        speedup = store_entry.get("speedup")
        identity = ("bit-identical" if store_entry.get("bit_identical")
                    else "MISMATCH")
        store_lines.append(
            f"  {entry['case']['name']}: cold build "
            f"{store_entry['cold_build_seconds']:.4f}s -> warm mmap load "
            f"{store_entry['warm_load_seconds'] * 1000:.2f}ms "
            f"({speedup:.0f}x, {identity})" if speedup is not None else
            f"  {entry['case']['name']}: warm load unavailable")
    if store_lines:
        lines.append("stream store (cold build vs memory-mapped reload):")
        lines.extend(store_lines)
    leveling = payload.get("leveling")
    if leveling is not None:
        leveling_table = AsciiTable(
            ["policy+leveler", "baseline (s)", "leveled (s)", "overhead",
             "imbalance (pp)"],
            title=(f"wear-leveling overhead — {leveling['case']['name']} "
                   f"(packed engine, leveled vs unleveled)"),
            precision=4,
        )
        for label, row in leveling["entries"].items():
            leveling_table.add_row([
                label, row["baseline_seconds"], row["leveled_seconds"],
                f"{row['overhead']:.2f}x" if row["overhead"] is not None else "n/a",
                f"{row['region_imbalance_baseline_pp']:.3f}"
                f"->{row['region_imbalance_leveled_pp']:.3f}",
            ])
        lines.append(leveling_table.render())
        leveling_verification = leveling.get("verification")
        if leveling_verification is not None:
            status = "OK" if leveling_verification["explicit_match"] else "FAILED"
            lines.append(f"leveling explicit-engine cross-check: {status}")
    scenario = payload.get("scenario")
    if scenario is not None:
        overhead = scenario["overhead"]
        lines.append(
            f"scenario timeline ({scenario['num_phases']} phases, "
            f"{scenario['active_epochs']} active epochs): "
            f"{scenario['scenario_seconds']:.4f}s vs "
            f"{scenario['single_phase_seconds']:.4f}s single-phase "
            f"({overhead:.2f}x overhead)" if overhead is not None else
            f"scenario timeline: {scenario['scenario_seconds']:.4f}s")
        scenario_verification = scenario.get("verification")
        if scenario_verification is not None:
            status = "OK" if scenario_verification["explicit_match"] else "FAILED"
            lines.append(f"scenario explicit-engine cross-check: {status}")
    dvfs = payload.get("dvfs")
    if dvfs is not None:
        overhead = dvfs["overhead"]
        overhead_text = (f"{overhead:.2f}x overhead" if overhead is not None
                         else "overhead n/a")
        lines.append(
            f"dvfs timeline ({dvfs['num_operating_points']} operating points "
            f"over {dvfs['num_phases']} phases): {dvfs['dvfs_seconds']:.4f}s vs "
            f"{dvfs['single_point_seconds']:.4f}s single-point "
            f"({overhead_text}; effective years "
            f"{dvfs['effective_years_dvfs']:.2f} vs "
            f"{dvfs['effective_years_single_point']:.2f})")
    fleet = payload.get("fleet")
    if fleet is not None:
        speedup = fleet["speedup"]
        speedup_text = (f"{speedup:.1f}x over the per-device loop"
                        if speedup is not None else "loop reference n/a")
        lines.append(
            f"fleet population ({fleet['devices']} devices, "
            f"{fleet['num_cohorts']} cohorts): {fleet['fleet_seconds']:.4f}s "
            f"({fleet['devices_per_second']:.0f} devices/s; {speedup_text}, "
            f"per-device scenario {fleet['per_device_scenario_seconds']:.4f}s)")
        fleet_verification = fleet.get("verification")
        if fleet_verification is not None:
            status = "OK" if fleet_verification["loop_match"] else "FAILED"
            lines.append(
                f"fleet per-device-loop cross-check: {status} "
                f"({fleet_verification['subsample_devices']} devices)")
    workloads = payload.get("workloads")
    if workloads is not None:
        identity = ("byte-identical recompile" if workloads["byte_identical"]
                    else "RECOMPILE MISMATCH")
        lines.append(
            f"workload generator ({workloads['histories']} histories): "
            f"{workloads['histories_per_second']:.0f} histories compiled/s "
            f"({identity}); fleet-from-generator "
            f"({workloads['fleet_histories']} histories -> "
            f"{workloads['unique_scenarios']} scenarios, "
            f"{workloads['devices']} devices): "
            f"{workloads['devices_per_second']:.0f} devices/s")
    verification = payload.get("verification")
    if verification is not None:
        status = "OK" if verification["explicit_match"] else "FAILED"
        lines.append(f"explicit-engine cross-check: {status} "
                     f"({', '.join(sorted(verification['policies']))})")
    return "\n".join(lines)
