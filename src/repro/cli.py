"""Command-line interface: ``dnn-life <command>``.

The CLI is a thin shell over the experiment registry
(:mod:`repro.orchestration`): every figure/table/ablation driver registers
itself with a name and parameter schema, and the CLI exposes three generic
verbs plus one convenience subcommand per registered experiment::

    dnn-life list                       # catalogue of every experiment
    dnn-life run fig9 --set seed=3      # run one experiment by name
    dnn-life sweep aging \
        --grid network=custom_mnist,lenet5 \
        --grid policy=none,dnn_life     # parallel parameter-grid sweep
    dnn-life bench                      # engine perf harness -> BENCH_aging.json
    dnn-life fig9 --quick               # per-experiment command (same as run)
    dnn-life compare --network custom_mnist --format int8_symmetric
    dnn-life scenario \
        --spec "lenet5:int8:dnn_life:1000@85C,idle:500,alexnet:int8:inversion:1000@45C"

Results are printed as ASCII tables/histograms; ``--json PATH`` additionally
writes the machine-readable result to a JSON file.  Completed runs are
cached on disk (``~/.cache/dnn-life`` or ``$DNN_LIFE_CACHE_DIR``) keyed by
(experiment, parameters, code version), so repeated invocations are served
from the cache; disable with ``--no-cache`` or redirect with ``--cache-dir``.

Packed weight streams are additionally persisted in the content-addressed
*stream store* (``<cache dir>/streams`` or ``$DNN_LIFE_STREAM_STORE``) and
memory-mapped back on later runs — ``--stream-store PATH`` redirects it,
``--no-stream-store`` disables it, ``dnn-life cache --streams`` inspects it,
and ``dnn-life sweep --backend serial|process|dask`` picks the executor the
batches fan out on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.orchestration import (
    REGISTRY,
    SWEEP_BACKENDS,
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    load_all_experiments,
    make_executor,
    render_experiment,
    run_experiment,
    split_grid_values,
)
from repro.streamstore import STREAM_STORE_ENV, active_stream_store
from repro.utils.serialization import save_json, to_jsonable
from repro.utils.tables import AsciiTable


#: Extra verb spellings for registered experiments: ``dnn-life level`` runs
#: the ``leveling`` experiment (before/after wear maps + region imbalance).
_COMMAND_ALIASES = {"level": "leveling"}


def _add_param_arguments(sub: argparse.ArgumentParser, spec: ExperimentSpec) -> None:
    """Generate one CLI option per declared parameter of ``spec``.

    Defaults are ``SUPPRESS``ed: only flags the user actually typed land in
    the namespace, so :meth:`ExperimentSpec.resolve` can layer the declared
    defaults and the quick/full configuration *under* the explicit overrides
    (``dnn-life aging --full`` applies the full config's 100 inferences,
    ``dnn-life aging --full --inferences 7`` keeps the explicit 7).
    """
    for param in spec.params:
        if param.type is bool:
            if param.name == "quick":
                sub.add_argument("--quick", dest="quick", action="store_true",
                                 default=argparse.SUPPRESS,
                                 help=param.help or "reduced configuration (default)")
                sub.add_argument("--full", dest="quick", action="store_false",
                                 default=argparse.SUPPRESS,
                                 help="paper-scale configuration (slow)")
            else:
                sub.add_argument(param.cli_flag, dest=param.name,
                                 action=argparse.BooleanOptionalAction,
                                 default=argparse.SUPPRESS, help=param.help)
        else:
            sub.add_argument(param.cli_flag, dest=param.name, type=param.type,
                             default=argparse.SUPPRESS,
                             choices=param.choices, help=param.help)


def _parse_assignment(text: str) -> Tuple[str, str]:
    """Split one ``param=value`` CLI token."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected PARAM=VALUE, got '{text}'")
    name, _, value = text.partition("=")
    return name.strip(), value.strip()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser from the experiment registry."""
    load_all_experiments()
    parser = argparse.ArgumentParser(
        prog="dnn-life",
        description="DNN-Life aging analysis and mitigation framework (DATE 2021 reproduction)",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write the machine-readable result to this JSON file")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result-cache directory (default: $DNN_LIFE_CACHE_DIR "
                             "or ~/.cache/dnn-life)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--stream-store", type=str, default=None,
                        metavar="PATH",
                        help="packed-stream store directory (default: "
                             "<cache dir>/streams, $DNN_LIFE_STREAM_STORE "
                             "overrides); exported to worker processes")
    parser.add_argument("--no-stream-store", action="store_true",
                        help="neither read nor write the packed-stream store")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list every registered experiment and its parameters")
    list_parser.add_argument("--tag", type=str, default=None,
                             help="only list experiments carrying this tag")

    run_parser = subparsers.add_parser(
        "run", help="run one registered experiment by name")
    run_parser.add_argument("experiment", help="experiment name (see `dnn-life list`)")
    run_parser.add_argument("--set", dest="assignments", action="append", default=[],
                            metavar="PARAM=VALUE", type=_parse_assignment,
                            help="override one parameter (repeatable)")
    run_parser.add_argument("--full", action="store_true",
                            help="apply the paper-scale configuration")
    run_parser.add_argument("--no-render", action="store_true",
                            help="skip the ASCII rendering (print the JSON payload)")

    sweep_parser = subparsers.add_parser(
        "sweep", help="expand a parameter grid and run it across worker processes")
    sweep_parser.add_argument("experiment", help="experiment name (see `dnn-life list`)")
    sweep_parser.add_argument("--grid", dest="grid", action="append", default=[],
                              metavar="PARAM=V1,V2,...", type=_parse_assignment,
                              help="one grid axis (repeatable); single-value axes pin "
                                   "a parameter; start the value list with ';', '|' "
                                   "or '/' to use that character as the separator "
                                   "instead of ',' (for values containing commas, "
                                   "e.g. multi-phase scenario specs)")
    sweep_parser.add_argument("--workers", type=int, default=None,
                              help="worker processes (default: CPU-based, "
                                   "$DNN_LIFE_MAX_WORKERS overrides; 1 = serial)")
    sweep_parser.add_argument("--backend", type=str, default=None,
                              choices=SWEEP_BACKENDS,
                              help="executor backend: 'process' (default, "
                                   "single-host pool), 'serial' (inline), or "
                                   "'dask' (dask.distributed cluster, "
                                   "requires dask)")
    sweep_parser.add_argument("--dask-scheduler", type=str, default=None,
                              metavar="ADDRESS",
                              help="dask scheduler address for --backend dask "
                                   "(default: a transient local cluster)")
    sweep_parser.add_argument("--base-seed", type=int, default=0,
                              help="base seed for deterministic per-job seeding")
    sweep_parser.add_argument("--full", action="store_true",
                              help="apply the paper-scale configuration to every job")

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache and the "
                      "packed-stream store")
    cache_parser.add_argument("--clear", action="store_true",
                              help="delete every cached entry (with --streams: "
                                   "every stream-store entry)")
    cache_parser.add_argument("--streams", action="store_true",
                              help="operate on the packed-stream store instead "
                                   "of the result cache")
    cache_parser.add_argument("--gc-days", type=float, default=None,
                              metavar="DAYS",
                              help="with --streams: delete entries not used "
                                   "for DAYS days")

    bench_parser = subparsers.add_parser(
        "bench", help="time the aging engines (blockwise vs packed) and write "
                      "the BENCH_aging.json perf trajectory")
    bench_parser.add_argument("--output", type=str, default=None,
                              metavar="PATH",
                              help="trajectory file (default BENCH_aging.json; "
                                   "'-' skips writing)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="timing repetitions per engine (best is kept)")
    bench_parser.add_argument("--case", dest="cases", action="append", default=[],
                              metavar="NAME",
                              help="run only the named case(s) (repeatable; "
                                   "see repro.bench.default_bench_cases)")
    bench_parser.add_argument("--seed", type=int, default=0,
                              help="stream/policy seed of every case")
    bench_parser.add_argument("--min-speedup", type=float, default=None,
                              help="exit non-zero when any case's packed-engine "
                                   "speedup falls below this factor")
    bench_parser.add_argument("--skip-verify", action="store_true",
                              help="skip the explicit-engine cross-check")
    bench_parser.add_argument("--skip-leveling", action="store_true",
                              help="skip the wear-leveling overhead entry "
                                   "(implied by --case)")
    bench_parser.add_argument("--skip-scenario", action="store_true",
                              help="skip the multi-phase scenario overhead "
                                   "entry (implied by --case)")
    bench_parser.add_argument("--skip-dvfs", action="store_true",
                              help="skip the DVFS multi-operating-point "
                                   "overhead entry (implied by --case)")
    bench_parser.add_argument("--skip-fleet", action="store_true",
                              help="skip the fleet-scale population entry "
                                   "(implied by --case)")
    bench_parser.add_argument("--skip-workloads", action="store_true",
                              help="skip the workload-generator entry "
                                   "(implied by --case)")

    lint_parser = subparsers.add_parser(
        "lint", help="run the repo's determinism/aliasing static analysis "
                     "(rules DL001-DL006) over the shipped sources")
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files or directories to lint (default: the "
                                  "installed repro package)")
    lint_parser.add_argument("--format", dest="format", default="text",
                             choices=("text", "json"),
                             help="report format (default: text)")
    lint_parser.add_argument("--root", type=str, default=None,
                             help="directory findings are reported relative to "
                                  "(default: the directory containing the "
                                  "repro package; rule allowlists match "
                                  "against these relative paths)")
    lint_parser.add_argument("--list", dest="list_rules", action="store_true",
                             help="print the rule catalog and exit")

    for spec in REGISTRY:
        aliases = [alias for alias, target in _COMMAND_ALIASES.items()
                   if target == spec.name]
        sub = subparsers.add_parser(spec.name, aliases=aliases,
                                    help=f"{spec.artifact}: {spec.description}")
        _add_param_arguments(sub, spec)
    return parser


# --------------------------------------------------------------------------- #
# Verb implementations
# --------------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> List[Dict[str, Any]]:
    rows = REGISTRY.describe()
    if args.tag:
        rows = [row for row in rows if args.tag in row["tags"]]
    table = AsciiTable(["experiment", "artifact", "parameters", "description"],
                       title=f"registered experiments ({len(rows)})")
    for row in rows:
        table.add_row([row["name"], row["artifact"],
                       " ".join(row["params"]) or "-", row["description"]])
    print(table.render())
    return rows


def _print_run(run, no_render: bool = False, footer: bool = True) -> None:
    """Print a run's rendering (JSON payload if it has no renderer)."""
    text = None if no_render else render_experiment(run)
    if text is None:
        print(json.dumps(to_jsonable(run.payload), indent=2, sort_keys=True))
    else:
        print(text)
    if footer:
        source = "cache" if run.from_cache else "computed"
        key = run.cache_key[:12] if run.cache_key else "- (cache disabled)"
        print(f"\n[{run.experiment} | {source} in {run.seconds:.2f}s | key {key}]")


def _subcommand_invocation(args: argparse.Namespace):
    """Resolve a per-experiment subcommand's (spec, explicit params, full flag).

    Shared by input validation and execution so the two can't diverge.
    Only flags the user actually typed are in the namespace (defaults are
    ``SUPPRESS``ed); ``--full`` arrives as ``quick=False``, which selects the
    spec's paper-scale configuration underneath the explicit flags.
    """
    spec = REGISTRY.get(_COMMAND_ALIASES.get(args.command, args.command))
    params = {param.name: getattr(args, param.name)
              for param in spec.params if hasattr(args, param.name)}
    return spec, params, params.get("quick") is False


def _parse_grid(args: argparse.Namespace) -> Dict[str, List[Any]]:
    """Parse the repeated ``--grid PARAM=V1,V2,...`` options against the schema.

    Value lists split on commas by default; a list opening with ``;``, ``|``
    or ``/`` uses that character as the axis separator instead
    (:func:`repro.orchestration.sweep.split_grid_values`), so multi-phase
    scenario specs — which contain commas — can ride a grid axis.  Shared by
    input validation and execution so the two can't diverge.  Raises
    ``ValueError`` (a one-line exit-2 usage error) on an empty or duplicated
    axis.
    """
    spec = REGISTRY.get(args.experiment)
    grid: Dict[str, List[Any]] = {}
    for name, values in args.grid:
        param = spec.get_param(name)
        parsed = [param.parse(value) for value in split_grid_values(values)]
        if not parsed:
            raise ValueError(
                f"grid axis '{name}' has no values (separate values with "
                "',', or open the list with ';', '|' or '/' to choose that "
                "separator)")
        if name in grid:
            combined = ",".join(str(value) for value in grid[name] + parsed)
            raise ValueError(
                f"grid axis '{name}' specified twice; list all values in one "
                f"option: --grid {name}={combined}")
        grid[name] = parsed
    return grid


def _cmd_run(args: argparse.Namespace, cache: Optional[ResultCache]) -> Any:
    params = dict(args.assignments)
    run = run_experiment(args.experiment, params, full=args.full, cache=cache)
    _print_run(run, no_render=args.no_render)
    return run.payload


def _cmd_experiment(args: argparse.Namespace, cache: Optional[ResultCache]) -> Any:
    spec, params, full = _subcommand_invocation(args)
    run = run_experiment(spec.name, params, full=full, cache=cache)
    _print_run(run, footer=False)
    return run.payload


def _cmd_sweep(args: argparse.Namespace, cache: Optional[ResultCache]) -> Any:
    grid = _parse_grid(args)
    runner = SweepRunner(cache=cache, max_workers=args.workers,
                         backend=args.backend,
                         dask_scheduler=args.dask_scheduler)
    report = runner.run(args.experiment, grid, base_seed=args.base_seed, full=args.full)

    failed = f", {report.num_failed} failed" if report.num_failed else ""
    table = AsciiTable(
        ["job", "parameters", "source", "seconds"],
        title=(f"sweep '{args.experiment}': {report.num_jobs} jobs, "
               f"{report.num_from_cache} from cache, "
               f"{report.num_computed} computed across "
               f"{max(len(report.worker_pids), 1)} process(es){failed}, "
               f"{report.seconds:.1f}s total"),
        precision=2,
    )
    varying = [name for name, values in grid.items() if len(values) > 1]
    for result in report.results:
        shown = {name: result.job.params[name] for name in varying} if varying \
            else result.job.params
        if result.failed:
            source = "FAILED"
        elif result.from_cache:
            source = "cache"
        else:
            source = f"pid {result.worker_pid}"
        table.add_row([
            result.job.index,
            " ".join(f"{key}={value}" for key, value in shown.items()) or "-",
            source,
            result.seconds,
        ])
    print(table.render())
    if report.stream_store is not None:
        store = report.stream_store
        print(f"stream store at {store['root']}: {store['hits']} hit(s), "
              f"{store['puts']} cold build(s) persisted "
              f"[backend {report.backend}]")
    for result in report.results:
        if result.failed:
            print(f"job {result.job.index} failed: {result.error}", file=sys.stderr)
    return report.summary()


def _cmd_bench(args: argparse.Namespace) -> Tuple[Any, int]:
    """Run the engine benchmark harness; returns (payload, exit code)."""
    from repro.bench import (
        DEFAULT_OUTPUT,
        default_bench_cases,
        render_bench_report,
        run_aging_bench,
    )

    cases = default_bench_cases()
    if args.cases:
        # case names are pre-validated by _validate_user_input
        known = {case.name: case for case in cases}
        cases = [known[name] for name in args.cases]
    # A --case selection bounds the bench to the named cases, so the
    # (unnamed) leveling, scenario and dvfs entries only run on full-suite
    # invocations.
    leveling = not args.skip_leveling and not args.cases
    scenario = not args.skip_scenario and not args.cases
    dvfs = not args.skip_dvfs and not args.cases
    fleet = not args.skip_fleet and not args.cases
    workloads = not args.skip_workloads and not args.cases
    payload = run_aging_bench(cases, repeats=max(args.repeats, 1), seed=args.seed,
                              verify=not args.skip_verify, leveling=leveling,
                              scenario=scenario, dvfs=dvfs, fleet=fleet,
                              workloads=workloads)
    print(render_bench_report(payload))
    output = args.output if args.output is not None else DEFAULT_OUTPUT
    if output != "-":
        path = save_json(payload, output)
        print(f"\nbenchmark trajectory written to {path}")
    exit_code = 0
    verification = payload.get("verification")
    if verification is not None and not verification["explicit_match"]:
        print("dnn-life bench: explicit-engine cross-check FAILED", file=sys.stderr)
        exit_code = 1
    leveling_verification = payload.get("leveling", {}).get("verification")
    if leveling_verification is not None and not leveling_verification["explicit_match"]:
        print("dnn-life bench: leveling explicit-engine cross-check FAILED",
              file=sys.stderr)
        exit_code = 1
    if payload.get("leveling") is not None:
        from repro.bench import check_leveling_overheads

        for violation in check_leveling_overheads(payload["leveling"]):
            print(f"dnn-life bench: {violation}", file=sys.stderr)
            exit_code = 1
    scenario_verification = payload.get("scenario", {}).get("verification")
    if scenario_verification is not None and not scenario_verification["explicit_match"]:
        print("dnn-life bench: scenario explicit-engine cross-check FAILED",
              file=sys.stderr)
        exit_code = 1
    for entry in payload.get("cases", []):
        store_entry = entry.get("stream_store")
        if store_entry is None:
            continue
        if not store_entry["hit"] or not store_entry["bit_identical"]:
            print(f"dnn-life bench: stream-store reload check FAILED for case "
                  f"'{entry['case']['name']}' (hit={store_entry['hit']}, "
                  f"bit_identical={store_entry['bit_identical']})",
                  file=sys.stderr)
            exit_code = 1
    if args.min_speedup is not None and payload["min_speedup"] is not None \
            and payload["min_speedup"] < args.min_speedup:
        print(f"dnn-life bench: minimum case speedup {payload['min_speedup']:.2f}x "
              f"is below the required {args.min_speedup:g}x", file=sys.stderr)
        exit_code = 1
    return payload, exit_code


def _cmd_lint(args: argparse.Namespace) -> Tuple[Any, int]:
    """Run the static-analysis suite; returns (payload, exit code).

    Exit codes follow the usage-error convention: 0 when the tree is clean,
    2 when any rule fires (or a file fails to parse), so CI lanes and
    pre-commit hooks can gate on the result directly.
    """
    from repro.devtools.lint import ALL_RULES, render_report, run_lint

    if args.list_rules:
        table = AsciiTable(["code", "rule", "contract"],
                           title=f"dnn-lint rules ({len(ALL_RULES)})")
        for rule in ALL_RULES:
            table.add_row([rule.code, rule.name, rule.summary])
        print(table.render())
        return [{"code": rule.code, "name": rule.name, "summary": rule.summary}
                for rule in ALL_RULES], 0
    report = run_lint(paths=args.paths or None, root=args.root)
    print(render_report(report, args.format))
    return report.to_payload(), 0 if report.clean else 2


def _cmd_cache(args: argparse.Namespace, cache: Optional[ResultCache]) -> Any:
    if args.streams:
        return _cmd_cache_streams(args)
    if cache is None:
        print("cache disabled (--no-cache)")
        return {"enabled": False}
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return {"cleared": removed, "root": str(cache.root)}
    stats = cache.stats()
    print(f"cache at {stats['root']}: {stats['entries']} entries, "
          f"{stats['bytes'] / 1024:.1f} KiB")
    return stats


def _cmd_cache_streams(args: argparse.Namespace) -> Any:
    """The ``cache --streams`` view of the packed-stream store."""
    import time

    store = active_stream_store()
    if store is None:
        print("stream store disabled (--no-stream-store / "
              f"${STREAM_STORE_ENV})")
        return {"enabled": False}
    if args.clear:
        before_files = store.orphan_files_reclaimed
        before_bytes = store.orphan_bytes_reclaimed
        removed = store.clear()
        orphan_files = store.orphan_files_reclaimed - before_files
        orphan_bytes = store.orphan_bytes_reclaimed - before_bytes
        print(f"removed {removed} stream entr(ies) from {store.root}")
        if orphan_files:
            print(f"reclaimed {orphan_files} orphaned file(s) "
                  f"({orphan_bytes / 2**20:.1f} MiB)")
        return {"cleared": removed, "orphan_files": orphan_files,
                "orphan_bytes": orphan_bytes, "root": str(store.root)}
    if args.gc_days is not None:
        before_files = store.orphan_files_reclaimed
        before_bytes = store.orphan_bytes_reclaimed
        removed = store.gc(args.gc_days * 86400.0)
        orphan_files = store.orphan_files_reclaimed - before_files
        orphan_bytes = store.orphan_bytes_reclaimed - before_bytes
        print(f"gc removed {removed} stream entr(ies) unused for "
              f"{args.gc_days:g}+ days from {store.root}")
        if orphan_files:
            print(f"reclaimed {orphan_files} orphaned file(s) "
                  f"({orphan_bytes / 2**20:.1f} MiB)")
        return {"gc_removed": removed, "unused_days": args.gc_days,
                "orphan_files": orphan_files, "orphan_bytes": orphan_bytes,
                "root": str(store.root)}
    entries = store.entries()
    table = AsciiTable(
        ["key", "network", "geometry", "blocks", "MiB", "unused"],
        title=(f"stream store at {store.root}: {len(entries)} entr(ies), "
               f"{sum(entry['nbytes'] for entry in entries) / 2**20:.1f} MiB"),
    )
    now = time.time()  # dnn-lint: disable=DL002 - display-only entry ages
    for entry in entries:
        geometry = entry.get("geometry") or {}
        describe = entry.get("describe") or {}
        capacity = geometry.get("capacity_bytes")
        geometry_text = (f"{capacity / 1024:.0f}KB/"
                         f"{geometry.get('word_bits', '?')}b"
                         if capacity else "?")
        unused_hours = max(now - (entry.get("last_used_unix") or now), 0) / 3600
        table.add_row([
            entry["key"][:12],
            describe.get("network", "-"),
            geometry_text,
            entry.get("num_blocks", "?"),
            entry["nbytes"] / 2**20,
            f"{unused_hours:.1f}h",
        ])
    print(table.render())
    orphan_bytes = store.orphan_bytes()
    if orphan_bytes:
        print(f"orphaned: {orphan_bytes / 2**20:.1f} MiB not referenced by "
              f"any manifest (reclaimed by --clear / --gc-days)")
    return {"root": str(store.root), "entries": entries,
            "orphan_bytes": orphan_bytes}


def _validate_user_input(args: argparse.Namespace) -> None:
    """Resolve the experiment name and parameters named on the command line.

    Raises the registry's ``KeyError``/``ValueError``/``TypeError`` for
    unknown experiments, unknown parameters or values failing the schema.
    Validation runs *before* any experiment executes, so ``main`` can map
    these to a clean usage error without masking genuine runtime failures.
    The per-experiment subcommands (``dnn-life aging --inferences -5``,
    ``dnn-life scenario --spec lenet5:...``) pre-validate through the same
    schema, so a non-positive duration or an unknown phase token is a
    one-line usage error there too.
    """
    if args.command == "run":
        spec = REGISTRY.get(args.experiment)
        spec.resolve(dict(args.assignments), full=args.full)
    elif args.command == "sweep":
        _parse_grid(args)
        if args.backend is not None:
            # probes backend availability: selecting 'dask' without
            # dask.distributed installed is a one-line usage error
            make_executor(args.backend, max_workers=args.workers,
                          dask_scheduler=args.dask_scheduler)
    elif args.command in REGISTRY or args.command in _COMMAND_ALIASES:
        spec, params, full = _subcommand_invocation(args)
        spec.resolve(params, full=full)
    elif args.command == "bench" and args.cases:
        from repro.bench import default_bench_cases

        known = {case.name for case in default_bench_cases()}
        unknown = [name for name in args.cases if name not in known]
        if unknown:
            raise ValueError(f"unknown bench case(s): {', '.join(unknown)} "
                             f"(known: {', '.join(sorted(known))})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Returns 0 on success and 2 on a usage error (unknown experiment,
    unknown/invalid parameter value), mirroring argparse's convention.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # The stream-store choice is exported through the environment (not
    # threaded as a parameter) so sweep worker processes inherit it.
    if args.no_stream_store:
        os.environ[STREAM_STORE_ENV] = "0"
    elif args.stream_store:
        os.environ[STREAM_STORE_ENV] = args.stream_store
    try:
        _validate_user_input(args)
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"dnn-life: error: {message}", file=sys.stderr)
        return 2
    exit_code = 0
    try:
        if args.command == "list":
            result = _cmd_list(args)
        elif args.command == "run":
            result = _cmd_run(args, cache)
        elif args.command == "sweep":
            result = _cmd_sweep(args, cache)
            if result["num_failed"]:
                exit_code = 1  # partial results are reported/saved, but CI must notice
        elif args.command == "bench":
            result, exit_code = _cmd_bench(args)
        elif args.command == "lint":
            result, exit_code = _cmd_lint(args)
        elif args.command == "cache":
            result = _cmd_cache(args, cache)
        else:
            result = _cmd_experiment(args, cache)
        if args.json:
            path = save_json(result, args.json)
            print(f"\nJSON result written to {path}")
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — the unix-conventional quiet
        # exit.  Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
