"""Command-line interface: ``dnn-life <command>``.

The CLI exposes the experiment drivers so that every table and figure of the
paper can be regenerated from a shell::

    dnn-life fig9 --quick          # Fig. 9 histograms (reduced configuration)
    dnn-life table2                # Table II WDE costs
    dnn-life compare --network custom_mnist --format int8_symmetric

Results are printed as ASCII tables/histograms; ``--json PATH`` additionally
writes the machine-readable result to a JSON file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.utils.serialization import save_json


def _cmd_fig1(args: argparse.Namespace):
    from repro.experiments.fig1 import render_fig1, run_fig1_access_energy, run_fig1_model_comparison

    print(render_fig1())
    return {"fig1a": run_fig1_model_comparison(), "fig1b": run_fig1_access_energy()}


def _cmd_fig2(args: argparse.Namespace):
    from repro.experiments.fig2 import render_fig2, run_fig2_snm_curve

    print(render_fig2())
    return run_fig2_snm_curve()


def _cmd_fig6(args: argparse.Namespace):
    from repro.experiments.fig6 import fig6_observations, render_fig6

    print(render_fig6(quick=args.quick, seed=args.seed))
    return fig6_observations(quick=args.quick, seed=args.seed)


def _cmd_fig7(args: argparse.Namespace):
    from repro.experiments.fig7 import render_fig7, run_fig7_case_study

    print(render_fig7())
    return run_fig7_case_study()


def _cmd_fig9(args: argparse.Namespace):
    from repro.experiments.fig9 import render_fig9, run_fig9_baseline_alexnet

    results = run_fig9_baseline_alexnet(quick=args.quick, seed=args.seed)
    print(render_fig9(quick=args.quick, seed=args.seed))
    return results


def _cmd_fig11(args: argparse.Namespace):
    from repro.experiments.fig11 import render_fig11, run_fig11_tpu_networks

    results = run_fig11_tpu_networks(quick=args.quick, seed=args.seed)
    print(render_fig11(quick=args.quick, seed=args.seed))
    return results


def _cmd_table1(args: argparse.Namespace):
    from repro.experiments.table1 import render_table1, run_table1_configurations

    print(render_table1())
    return run_table1_configurations()


def _cmd_table2(args: argparse.Namespace):
    from repro.experiments.table2 import render_table2, run_table2_wde_costs

    print(render_table2())
    return run_table2_wde_costs()


def _cmd_compare(args: argparse.Namespace):
    from repro.core.framework import DnnLife
    from repro.nn.models import build_model
    from repro.nn.weights import attach_synthetic_weights

    network = attach_synthetic_weights(build_model(args.network), seed=args.seed)
    framework = DnnLife(network, data_format=args.format,
                        num_inferences=args.inferences, seed=args.seed)
    comparison = framework.compare_policies()
    print(comparison.table().render())
    return comparison.summary()


def _cmd_report(args: argparse.Namespace):
    from repro.analysis.report import WorkloadReport
    from repro.core.framework import DnnLife
    from repro.nn.models import build_model
    from repro.nn.weights import attach_synthetic_weights

    network = attach_synthetic_weights(build_model(args.network), seed=args.seed)
    framework = DnnLife(network, data_format=args.format,
                        num_inferences=args.inferences, seed=args.seed)
    report = WorkloadReport(framework)
    print(report.render())
    return report.summary()


def _cmd_energy(args: argparse.Namespace):
    from repro.analysis.energy import energy_overhead_report, energy_overhead_table
    from repro.core.framework import DnnLife
    from repro.nn.models import build_model
    from repro.nn.weights import attach_synthetic_weights

    network = attach_synthetic_weights(build_model(args.network), seed=args.seed)
    framework = DnnLife(network, data_format=args.format,
                        num_inferences=args.inferences, seed=args.seed)
    print(energy_overhead_table(framework).render())
    return energy_overhead_report(framework)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], object]] = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig9": _cmd_fig9,
    "fig11": _cmd_fig11,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "compare": _cmd_compare,
    "energy": _cmd_energy,
    "report": _cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dnn-life",
        description="DNN-Life aging analysis and mitigation framework (DATE 2021 reproduction)",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write the machine-readable result to this JSON file")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("fig1", "fig2", "fig7", "table1", "table2"):
        subparsers.add_parser(name, help=f"regenerate {name} of the paper")
    for name in ("fig6", "fig9", "fig11"):
        sub = subparsers.add_parser(name, help=f"regenerate {name} of the paper")
        sub.add_argument("--quick", action="store_true", default=True,
                         help="reduced configuration (default)")
        sub.add_argument("--full", dest="quick", action="store_false",
                         help="paper-scale configuration (slow)")
        sub.add_argument("--seed", type=int, default=0)
    for name in ("compare", "energy", "report"):
        sub = subparsers.add_parser(name, help=f"{name} policies on one workload")
        sub.add_argument("--network", type=str, default="custom_mnist")
        sub.add_argument("--format", type=str, default="int8_symmetric")
        sub.add_argument("--inferences", type=int, default=50)
        sub.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    result = handler(args)
    if args.json:
        path = save_json(result, args.json)
        print(f"\nJSON result written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
