"""Compile sampled traffic timelines into scenario and fleet specs.

The sampler (:func:`repro.workloads.traffic.sample_timeline`) produces raw
day/night slots; this module turns them into the existing simulation
inputs:

* :func:`compile_timeline` — one slot list into a valid
  :class:`~repro.scenario.phases.LifetimeScenario` through the ``Phase``
  machinery: active slots become inference phases at their slot's
  temperature/corner, idle slots become retention phases of the slot's
  nominal epoch budget (so their wall-clock share stays honest), adjacent
  configuration-identical phases merge, and leading idles are dropped (a
  scenario's retained content is undefined before the first write).
* :func:`compile_history` — sample + compile in one step.
* :func:`compile_fleet_spec` — the batch compiler: N sampled histories
  deduplicated into a weighted :class:`~repro.fleet.spec.FleetSpec`
  scenario mix (weights = history multiplicity / N, first-seen order), the
  direct input to :class:`~repro.fleet.simulator.FleetSimulator`.

Everything downstream of the sampler is pure bookkeeping, so the
determinism contract carries through: the same ``(model, histories)``
produces byte-identical spec strings — and hence byte-identical
``FleetSpec`` payloads — in every process.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aging.stress import DEFAULT_REFERENCE_TEMPERATURE_C
from repro.fleet.spec import FleetSpec
from repro.scenario.phases import (
    LifetimeScenario,
    Phase,
    merge_adjacent_phases,
)
from repro.workloads.traffic import TimelineSlot, TrafficModel, sample_timeline

__all__ = [
    "compile_fleet_spec",
    "compile_history",
    "compile_timeline",
]


def _slot_phase(slot: TimelineSlot) -> Phase:
    """One sampled slot as a scenario phase."""
    voltage, frequency = (slot.corner if slot.corner is not None
                          else (None, None))
    if slot.idle:
        return Phase.idle(slot.nominal_epochs,
                          temperature_c=slot.temperature_c,
                          voltage_v=voltage, frequency_ghz=frequency)
    network, data_format, policy = slot.model
    return Phase.active(network, data_format, policy, slot.epochs,
                        temperature_c=slot.temperature_c,
                        voltage_v=voltage, frequency_ghz=frequency)


def compile_timeline(model: TrafficModel, slots: Sequence[TimelineSlot],
                     years: float = 7.0,
                     reference_temperature_c: float =
                     DEFAULT_REFERENCE_TEMPERATURE_C,
                     name: str = "") -> LifetimeScenario:
    """Compile sampled slots into a valid :class:`LifetimeScenario`.

    The sampled horizon is the deployment's *representative usage pattern*:
    like hand-written specs, phase durations set relative wall-clock shares
    and ``years`` the absolute span.  Leading idle slots are dropped (the
    scenario grammar rejects idle-first timelines); if every slot sampled
    idle — possible for tiny rates with a high idle threshold — the
    timeline degenerates to a single one-epoch inference of the first
    slot's model, the smallest valid scenario of that deployment.
    """
    phases = merge_adjacent_phases(
        tuple(_slot_phase(slot) for slot in slots))
    while phases and phases[0].is_idle:
        phases = phases[1:]
    if not phases:
        first = slots[0]
        network, data_format, policy = first.model
        voltage, frequency = (first.corner if first.corner is not None
                              else (None, None))
        phases = (Phase.active(network, data_format, policy, 1,
                               temperature_c=first.temperature_c,
                               voltage_v=voltage, frequency_ghz=frequency),)
    return LifetimeScenario(phases=phases, years=years,
                            reference_temperature_c=reference_temperature_c,
                            name=name)


def compile_history(model: TrafficModel, history: int = 0,
                    years: float = 7.0,
                    reference_temperature_c: float =
                    DEFAULT_REFERENCE_TEMPERATURE_C) -> LifetimeScenario:
    """Sample history ``history`` of ``model`` and compile it."""
    return compile_timeline(model, sample_timeline(model, history=history),
                            years=years,
                            reference_temperature_c=reference_temperature_c,
                            name=f"workload[{history}]")


def compile_fleet_spec(model: TrafficModel, histories: int,
                       devices: int = 0,
                       years: float = 7.0,
                       reference_temperature_c: float =
                       DEFAULT_REFERENCE_TEMPERATURE_C,
                       usage_sigma: float = 0.0,
                       thermal_sigma_c: float = 0.0,
                       seed_groups: int = 1) -> FleetSpec:
    """Batch-compile N sampled histories into a weighted fleet population.

    Histories are sampled at indices ``0..histories-1``, compiled to their
    canonical spec strings and deduplicated in first-seen order; each unique
    spec's weight is its multiplicity over ``histories``.  ``devices``
    defaults to ``histories`` (one device per sampled history); the fleet's
    sampling seed is the traffic model's, so the whole population is pinned
    by one integer.  Devices ship at the reference corner — per-phase DVFS
    comes from the generator's day/night corners, already baked into the
    compiled specs.
    """
    if not int(histories) > 0:
        raise ValueError(f"histories must be > 0, got {histories}")
    counts: Dict[str, int] = {}
    for history in range(int(histories)):
        spec_text = compile_history(
            model, history, years=years,
            reference_temperature_c=reference_temperature_c).to_spec()
        counts[spec_text] = counts.get(spec_text, 0) + 1
    specs: List[str] = list(counts)
    weights = tuple(count / int(histories) for count in counts.values())
    return FleetSpec(
        num_devices=int(devices) if devices else int(histories),
        scenarios=tuple(specs),
        scenario_weights=weights,
        years=years,
        reference_temperature_c=reference_temperature_c,
        usage_sigma=usage_sigma,
        thermal_sigma_c=thermal_sigma_c,
        seed_groups=seed_groups,
        seed=model.seed,
    )
