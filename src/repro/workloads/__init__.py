"""Stochastic workload generation: traffic models compiled into scenarios.

Scenario phases and fleet mixes were hand-written spec strings until this
package; real deployments are bursty, diurnal and multi-model.  A
:class:`~repro.workloads.traffic.TrafficModel` describes the usage
*distribution* (Poisson/bursty inference rates, day/night modulation,
weighted model mixes, OTA-update schedules, idle gaps) with seeded PCG64
sampling and exact payload round trips;
:mod:`repro.workloads.compiler` turns sampled histories into
:class:`~repro.scenario.phases.LifetimeScenario` timelines and weighted
:class:`~repro.fleet.spec.FleetSpec` populations — so sweeps can ask
"across 1 000 sampled usage histories, what is the lifetime
distribution?" without writing a single phase token by hand.
"""

from repro.workloads.compiler import (
    compile_fleet_spec,
    compile_history,
    compile_timeline,
)
from repro.workloads.traffic import (
    ModelTriple,
    TimelineSlot,
    TrafficModel,
    format_model_mix,
    parse_model_mix,
    parse_optional_corner,
    sample_timeline,
)

__all__ = [
    "ModelTriple",
    "TimelineSlot",
    "TrafficModel",
    "compile_fleet_spec",
    "compile_history",
    "compile_timeline",
    "format_model_mix",
    "parse_model_mix",
    "parse_optional_corner",
    "sample_timeline",
]
