"""Stochastic traffic models: seeded generators of device usage histories.

A :class:`TrafficModel` is the serializable description of how a deployed
accelerator is *used* — not a timeline itself, but the distribution
timelines are drawn from.  It composes five generator families:

* **Poisson/bursty inference rates** — each half-day slot draws its
  inference-epoch count from a Poisson process at the slot's rate; with
  ``burst_probability > 0`` a slot may be a burst, multiplying its rate by
  ``burst_factor`` (a two-state modulated Poisson process).
* **Diurnal day/night modulation** — ``diurnal_amplitude`` skews the rate
  between the day half (``x (1 + a)``) and the night half (``x (1 - a)``),
  each with its own temperature and optional DVFS corner (night throttling).
* **Weighted model/format mixes** — the device runs one
  ``(network, data_format, policy)`` triple at a time, drawn from a
  weighted mix sharing one word width (the weight-memory geometry is
  device-wide).
* **OTA-update schedules** — model swaps arrive as a memoryless process
  with mean inter-arrival ``ota_interval_days``; each arrival redraws the
  active triple from the mix.
* **Idle-gap insertion** — slots drawing at most ``idle_threshold`` epochs
  become retention (idle) phases instead of vanishingly small active ones.

Sampling is deterministic the way :class:`~repro.fleet.spec.FleetSpec`
pins it: a PCG64 stream seeded from ``np.random.SeedSequence([seed,
history])`` with a *fixed draw order* (initial model, OTA schedule, then
per-slot burst/Poisson draws) and state-free degenerate knobs — a
single-entry mix, ``burst_probability`` of exactly 0 or 1 and
``ota_interval_days == 0`` consume no generator state, so enabling one
generator never shifts the draws of another.  The same ``(model,
history)`` pair therefore yields byte-identical timelines in any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.spec import parse_weighted_entries
from repro.quantization.formats import get_format
from repro.scenario.operating_point import parse_point_suffix
from repro.scenario.phases import DEFAULT_PHASE_TEMPERATURE_C, Phase
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_temperature_celsius,
)

__all__ = [
    "ModelTriple",
    "TimelineSlot",
    "TrafficModel",
    "format_model_mix",
    "parse_model_mix",
    "parse_optional_corner",
    "sample_timeline",
]

#: One deployable model: ``(network, data_format, policy)`` with the format
#: name already alias-resolved (``int8`` -> ``int8_symmetric``).
ModelTriple = Tuple[str, str, str]

#: Hours of wall clock one timeline slot represents (a day/night half).
SLOT_HOURS = 12.0


def parse_model_mix(text: str) -> Tuple[Tuple[ModelTriple, ...],
                                        Tuple[float, ...]]:
    """Parse a ``[WEIGHT*]NETWORK:FORMAT:POLICY|...`` model mix.

    Reuses the fleet mix grammar (:func:`~repro.fleet.spec.parse_weighted_entries`)
    for the weights and the phase mini-language's registries for the names;
    format aliases are resolved, so the returned triples are canonical and
    :func:`format_model_mix` is an exact inverse on them.
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError("model mix is empty; expected "
                         "'[WEIGHT*]NETWORK:FORMAT:POLICY' entries joined by '|'")
    entries, weights = parse_weighted_entries(text, "|", "model mix")
    models: List[ModelTriple] = []
    for entry in entries:
        fields = [part.strip() for part in entry.split(":")]
        if len(fields) != 3:
            raise ValueError(f"model mix entry '{entry}': expected "
                             "'NETWORK:FORMAT:POLICY'")
        # Phase.active validates against the registries and resolves the
        # format aliases; the 1-epoch probe phase is discarded.
        probe = Phase.active(fields[0], fields[1], fields[2], 1)
        models.append((probe.network, probe.data_format, probe.policy))
    return tuple(models), weights


def format_model_mix(models: Sequence[ModelTriple],
                     weights: Sequence[float]) -> str:
    """The canonical mix string (inverse of :func:`parse_model_mix`).

    Weights use ``repr`` — the shortest exact float spelling — matching
    :func:`~repro.fleet.spec.format_mix_spec`.
    """
    return "|".join(f"{weight!r}*{network}:{data_format}:{policy}"
                    for (network, data_format, policy), weight
                    in zip(models, weights))


@dataclass(frozen=True)
class TimelineSlot:
    """One sampled day/night half of a usage history.

    ``epochs`` is the Poisson draw of inference epochs; ``idle`` marks slots
    at or below the model's idle threshold, which compile to retention
    phases of ``nominal_epochs`` duration (the slot's expected epoch budget,
    keeping its wall-clock share honest).  ``model`` is the triple active
    during the slot (it changes at OTA arrivals), ``corner`` the slot's
    pinned DVFS point or ``None`` for the reference corner.
    """

    day: int
    daytime: bool
    burst: bool
    epochs: int
    nominal_epochs: int
    idle: bool
    model: ModelTriple
    temperature_c: float
    corner: Optional[Tuple[float, float]]

    def describe(self) -> Dict[str, object]:
        """JSON-safe description (rendered as the CLI timeline table)."""
        return {
            "day": self.day,
            "half": "day" if self.daytime else "night",
            "burst": self.burst,
            "epochs": self.epochs,
            "nominal_epochs": self.nominal_epochs,
            "kind": "idle" if self.idle else "active",
            "network": self.model[0],
            "data_format": self.model[1],
            "policy": self.model[2],
            "temperature_c": self.temperature_c,
            "corner": None if self.corner is None else list(self.corner),
        }


def _optional_corner(value: object, what: str) -> Optional[Tuple[float, float]]:
    """Normalise a corner field: ``None`` stays, pairs become float tuples."""
    if value is None:
        return None
    voltage, frequency = value  # type: ignore[misc]
    voltage, frequency = float(voltage), float(frequency)
    check_positive(voltage, f"{what} voltage")
    check_positive(frequency, f"{what} frequency")
    return (voltage, frequency)


@dataclass(frozen=True)
class TrafficModel:
    """The seeded, serializable traffic distribution of one deployment.

    ``rate_per_day`` is the mean inference epochs per 24 h before burst and
    diurnal modulation; ``horizon_days`` the length of the sampled history
    (the compiled scenario stretches it over its ``years`` span, exactly as
    hand-written phase specs do).  See the module docstring for the five
    generator families and the determinism contract.
    """

    models: Tuple[ModelTriple, ...]
    model_weights: Tuple[float, ...] = ()
    rate_per_day: float = 48.0
    burst_probability: float = 0.0
    burst_factor: float = 3.0
    diurnal_amplitude: float = 0.0
    day_temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C
    night_temperature_c: float = 45.0
    day_corner: Optional[Tuple[float, float]] = None
    night_corner: Optional[Tuple[float, float]] = None
    ota_interval_days: float = 0.0
    idle_threshold: int = 0
    horizon_days: int = 7
    seed: int = 0

    def __post_init__(self) -> None:
        models = tuple((str(network), str(data_format), str(policy))
                       for network, data_format, policy in self.models)
        if not models:
            raise ValueError("a traffic model requires at least one "
                             "(network, format, policy) entry")
        word_bits = {}
        for network, data_format, policy in models:
            probe = Phase.active(network, data_format, policy, 1)
            word_bits.setdefault(get_format(probe.data_format).word_bits,
                                 f"{network}:{data_format}")
        if len(word_bits) > 1:
            described = "; ".join(f"{bits}-bit words from {label}"
                                  for bits, label in sorted(word_bits.items()))
            raise ValueError(
                f"all model-mix entries must share one word width (the "
                f"weight-memory geometry is device-wide), got {described}")
        object.__setattr__(self, "models", models)
        uniform = (1.0 / len(models),) * len(models)
        weights = tuple(float(weight)
                        for weight in (self.model_weights or uniform))
        if len(weights) != len(models):
            raise ValueError(f"model mix: {len(weights)} weights for "
                             f"{len(models)} entries")
        for weight in weights:
            if not weight > 0:
                raise ValueError(f"model mix: weights must be > 0, got {weight}")
        if abs(sum(weights) - 1.0) > 1e-6:
            raise ValueError(f"model mix: weights must sum to 1, "
                             f"got {sum(weights):g}")
        object.__setattr__(self, "model_weights", weights)
        check_positive(self.rate_per_day, "rate_per_day")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError(f"burst_probability must be within [0, 1], "
                             f"got {self.burst_probability}")
        if not self.burst_factor >= 1.0:
            raise ValueError(f"burst_factor must be >= 1, "
                             f"got {self.burst_factor}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(f"diurnal_amplitude must be within [0, 1), "
                             f"got {self.diurnal_amplitude}")
        check_temperature_celsius(self.day_temperature_c, "day_temperature_c")
        check_temperature_celsius(self.night_temperature_c,
                                  "night_temperature_c")
        object.__setattr__(self, "day_corner",
                           _optional_corner(self.day_corner, "day corner"))
        object.__setattr__(self, "night_corner",
                           _optional_corner(self.night_corner, "night corner"))
        if not self.ota_interval_days >= 0:
            raise ValueError(f"ota_interval_days must be >= 0, "
                             f"got {self.ota_interval_days}")
        if not int(self.idle_threshold) >= 0:
            raise ValueError(f"idle_threshold must be >= 0, "
                             f"got {self.idle_threshold}")
        object.__setattr__(self, "idle_threshold", int(self.idle_threshold))
        check_positive_int(self.horizon_days, "horizon_days")

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def mix_spec(self) -> str:
        """The canonical ``[WEIGHT*]NETWORK:FORMAT:POLICY|...`` mix string."""
        return format_model_mix(self.models, self.model_weights)

    def slot_rate(self, daytime: bool, burst: bool) -> float:
        """Mean inference epochs of one half-day slot."""
        half = 0.5 * self.rate_per_day
        diurnal = 1.0 + (self.diurnal_amplitude if daytime
                         else -self.diurnal_amplitude)
        return half * diurnal * (self.burst_factor if burst else 1.0)

    # ------------------------------------------------------------------ #
    # Serialization (exact round trip, like FleetSpec)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation; :meth:`from_payload` round-trips to an
        ``==``-equal model."""
        return {
            "models": [list(triple) for triple in self.models],
            "model_weights": list(self.model_weights),
            "rate_per_day": self.rate_per_day,
            "burst_probability": self.burst_probability,
            "burst_factor": self.burst_factor,
            "diurnal_amplitude": self.diurnal_amplitude,
            "day_temperature_c": self.day_temperature_c,
            "night_temperature_c": self.night_temperature_c,
            "day_corner": (None if self.day_corner is None
                           else list(self.day_corner)),
            "night_corner": (None if self.night_corner is None
                             else list(self.night_corner)),
            "ota_interval_days": self.ota_interval_days,
            "idle_threshold": self.idle_threshold,
            "horizon_days": self.horizon_days,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TrafficModel":
        """Rebuild a model from :meth:`to_payload` output."""
        def corner(value: object) -> Optional[Tuple[float, float]]:
            return None if value is None else (float(value[0]),  # type: ignore[index]
                                               float(value[1]))  # type: ignore[index]

        return cls(
            models=tuple((str(entry[0]), str(entry[1]), str(entry[2]))
                         for entry in payload["models"]),  # type: ignore[index]
            model_weights=tuple(float(weight)
                                for weight in payload["model_weights"]),  # type: ignore[union-attr]
            rate_per_day=float(payload["rate_per_day"]),  # type: ignore[arg-type]
            burst_probability=float(payload["burst_probability"]),  # type: ignore[arg-type]
            burst_factor=float(payload["burst_factor"]),  # type: ignore[arg-type]
            diurnal_amplitude=float(payload["diurnal_amplitude"]),  # type: ignore[arg-type]
            day_temperature_c=float(payload["day_temperature_c"]),  # type: ignore[arg-type]
            night_temperature_c=float(payload["night_temperature_c"]),  # type: ignore[arg-type]
            day_corner=corner(payload["day_corner"]),
            night_corner=corner(payload["night_corner"]),
            ota_interval_days=float(payload["ota_interval_days"]),  # type: ignore[arg-type]
            idle_threshold=int(payload["idle_threshold"]),  # type: ignore[arg-type]
            horizon_days=int(payload["horizon_days"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
        )


def _draw_model_index(rng: np.random.Generator,
                      model: TrafficModel) -> int:
    """Weighted model draw; a single-entry mix consumes no generator state."""
    if len(model.models) == 1:
        return 0
    weights = np.asarray(model.model_weights, dtype=np.float64)
    return int(rng.choice(len(model.models), p=weights / weights.sum()))


def sample_timeline(model: TrafficModel,
                    history: int = 0) -> List[TimelineSlot]:
    """Sample one usage history: ``2 * horizon_days`` day/night slots.

    Deterministic in ``(model, history)``: the generator is a fresh PCG64
    stream from ``np.random.SeedSequence([model.seed, history])`` and the
    draw order is fixed — (1) the initial model, (2) the OTA arrival times
    and their replacement models, (3) per slot, the burst coin (only when
    ``0 < burst_probability < 1``) then the Poisson epoch count.  Degenerate
    knobs consume no state (see the module docstring), so e.g. switching
    bursts off never shifts the OTA schedule.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([int(model.seed), int(history)]))
    current = _draw_model_index(rng, model)
    ota_events: List[Tuple[float, int]] = []
    if model.ota_interval_days > 0:
        arrival = 0.0
        while True:
            arrival += float(rng.exponential(model.ota_interval_days))
            if arrival >= model.horizon_days:
                break
            ota_events.append((arrival, _draw_model_index(rng, model)))
    slots: List[TimelineSlot] = []
    next_event = 0
    for day in range(model.horizon_days):
        for daytime in (True, False):
            start_days = day + (0.0 if daytime else SLOT_HOURS / 24.0)
            while (next_event < len(ota_events)
                   and ota_events[next_event][0] <= start_days):
                current = ota_events[next_event][1]
                next_event += 1
            if 0.0 < model.burst_probability < 1.0:
                burst = bool(rng.random() < model.burst_probability)
            else:
                burst = model.burst_probability >= 1.0
            rate = model.slot_rate(daytime, burst)
            epochs = int(rng.poisson(rate))
            nominal = max(1, int(round(model.slot_rate(daytime, False))))
            slots.append(TimelineSlot(
                day=day,
                daytime=daytime,
                burst=burst,
                epochs=epochs,
                nominal_epochs=nominal,
                idle=epochs <= model.idle_threshold,
                model=model.models[current],
                temperature_c=(model.day_temperature_c if daytime
                               else model.night_temperature_c),
                corner=model.day_corner if daytime else model.night_corner,
            ))
    return slots


def parse_optional_corner(text: str, what: str) -> Optional[Tuple[float, float]]:
    """Parse a CLI corner field: empty means "reference corner" (``None``)."""
    if not text or not text.strip():
        return None
    return parse_point_suffix(text.strip(), what)
