"""Hardware cost substrate (Table II).

The paper synthesises three 64-bit Write Data Encoders (barrel-shifter based,
inversion based, and the proposed design with its aging-mitigation controller)
for TSMC 65 nm with Cadence Genus.  That flow is not available offline, so
this package provides a *structural* cost model instead:

* a 65 nm-class standard-cell :class:`~repro.hwsynth.technology.TechnologyLibrary`
  (area, delay, switching energy and leakage per cell type);
* a :class:`~repro.hwsynth.netlist.Netlist` abstraction composing cell counts
  and logic depth;
* generators for the building blocks the designs need (XOR arrays, crossbar
  barrel shifters, ring oscillators, counters) in
  :mod:`repro.hwsynth.components`;
* the three WDE designs themselves in :mod:`repro.hwsynth.wde_designs` and a
  small synthesis-report layer in :mod:`repro.hwsynth.synthesis`.

The model preserves the *relative* costs the paper reports (the barrel
shifter is one to two orders of magnitude more expensive than the XOR-based
designs; the proposed WDE adds only a small controller on top of the
inversion WDE) — see EXPERIMENTS.md for the quantitative comparison against
Table II.
"""

from repro.hwsynth.netlist import CellType, Netlist
from repro.hwsynth.synthesis import SynthesisReport, synthesize, table2_report
from repro.hwsynth.technology import TechnologyLibrary, tsmc65_like_library
from repro.hwsynth.wde_designs import (
    WdeDesign,
    barrel_shifter_wde,
    inversion_wde,
    proposed_dnn_life_wde,
    wde_for_policy,
)

__all__ = [
    "CellType",
    "Netlist",
    "SynthesisReport",
    "synthesize",
    "table2_report",
    "TechnologyLibrary",
    "tsmc65_like_library",
    "WdeDesign",
    "barrel_shifter_wde",
    "inversion_wde",
    "proposed_dnn_life_wde",
    "wde_for_policy",
]
