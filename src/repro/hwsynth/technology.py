"""65 nm-class standard-cell technology library.

Per-cell figures (area in NAND2-equivalent "cell area" units, intrinsic delay,
switching energy and leakage power) representative of a commercial 65 nm
low-power library at nominal voltage.  Absolute values are order-of-magnitude
calibrated; the experiments only rely on relative comparisons between designs
built from the same library, mirroring how the paper uses its Cadence Genus
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class CellKind(str, Enum):
    """Standard-cell types used by the WDE designs."""

    INV = "INV"
    BUF = "BUF"
    NAND2 = "NAND2"
    NOR2 = "NOR2"
    AND2 = "AND2"
    OR2 = "OR2"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    MUX2 = "MUX2"
    TGATE = "TGATE"
    HALF_ADDER = "HA"
    FULL_ADDER = "FA"
    DFF = "DFF"


@dataclass(frozen=True)
class CellCharacteristics:
    """Electrical/physical characteristics of one standard cell."""

    #: Area in NAND2-equivalent units ("cell area" as reported in Table II).
    area: float
    #: Intrinsic propagation delay in picoseconds (typical load).
    delay_ps: float
    #: Dynamic energy per output transition in femtojoules.
    switching_energy_fj: float
    #: Static leakage power in nanowatts.
    leakage_nw: float


@dataclass(frozen=True)
class TechnologyLibrary:
    """A named collection of characterised standard cells."""

    name: str
    nominal_voltage: float
    cells: Dict[CellKind, CellCharacteristics] = field(default_factory=dict)

    def cell(self, kind: CellKind) -> CellCharacteristics:
        """Characteristics of one cell type."""
        try:
            return self.cells[kind]
        except KeyError:
            raise KeyError(f"library '{self.name}' has no cell of kind {kind}") from None

    def scale_voltage(self, voltage: float) -> "TechnologyLibrary":
        """Derive a library at a different supply voltage.

        Dynamic energy scales with V^2, delay roughly with 1/V (alpha-power
        approximation), leakage roughly linearly.  Used by the
        voltage-scaling ablation benchmark.
        """
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        ratio = voltage / self.nominal_voltage
        scaled = {
            kind: CellCharacteristics(
                area=cell.area,
                delay_ps=cell.delay_ps / ratio,
                switching_energy_fj=cell.switching_energy_fj * ratio ** 2,
                leakage_nw=cell.leakage_nw * ratio,
            )
            for kind, cell in self.cells.items()
        }
        return TechnologyLibrary(name=f"{self.name}@{voltage:.2f}V",
                                 nominal_voltage=voltage, cells=scaled)


def tsmc65_like_library() -> TechnologyLibrary:
    """A 65 nm-class library with representative cell characteristics."""
    cells = {
        CellKind.INV: CellCharacteristics(area=0.7, delay_ps=14.0,
                                          switching_energy_fj=1.1, leakage_nw=1.6),
        CellKind.BUF: CellCharacteristics(area=1.0, delay_ps=28.0,
                                          switching_energy_fj=1.8, leakage_nw=2.2),
        CellKind.NAND2: CellCharacteristics(area=1.0, delay_ps=18.0,
                                            switching_energy_fj=1.5, leakage_nw=2.1),
        CellKind.NOR2: CellCharacteristics(area=1.0, delay_ps=22.0,
                                           switching_energy_fj=1.6, leakage_nw=2.1),
        CellKind.AND2: CellCharacteristics(area=1.3, delay_ps=30.0,
                                           switching_energy_fj=2.0, leakage_nw=2.6),
        CellKind.OR2: CellCharacteristics(area=1.3, delay_ps=32.0,
                                          switching_energy_fj=2.0, leakage_nw=2.6),
        CellKind.XOR2: CellCharacteristics(area=2.2, delay_ps=45.0,
                                           switching_energy_fj=3.4, leakage_nw=3.8),
        CellKind.XNOR2: CellCharacteristics(area=2.2, delay_ps=45.0,
                                            switching_energy_fj=3.4, leakage_nw=3.8),
        CellKind.MUX2: CellCharacteristics(area=2.0, delay_ps=40.0,
                                           switching_energy_fj=2.8, leakage_nw=3.2),
        CellKind.TGATE: CellCharacteristics(area=1.4, delay_ps=25.0,
                                            switching_energy_fj=1.9, leakage_nw=2.4),
        CellKind.HALF_ADDER: CellCharacteristics(area=3.0, delay_ps=60.0,
                                                 switching_energy_fj=4.5, leakage_nw=5.0),
        CellKind.FULL_ADDER: CellCharacteristics(area=4.5, delay_ps=90.0,
                                                 switching_energy_fj=7.0, leakage_nw=7.5),
        CellKind.DFF: CellCharacteristics(area=4.0, delay_ps=120.0,
                                          switching_energy_fj=6.0, leakage_nw=6.5),
    }
    return TechnologyLibrary(name="generic65lp", nominal_voltage=1.2, cells=cells)
