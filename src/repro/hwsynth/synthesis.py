"""Synthesis-report layer: turns netlists into Table II style reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hwsynth.netlist import Netlist
from repro.hwsynth.technology import TechnologyLibrary, tsmc65_like_library
from repro.hwsynth.wde_designs import (
    DEFAULT_CLOCK_HZ,
    TABLE2_DATAPATH_BITS,
    barrel_shifter_wde,
    inversion_wde,
    proposed_dnn_life_wde,
)
from repro.utils.tables import AsciiTable

#: The numbers reported in the paper's Table II, for side-by-side comparison.
PAPER_TABLE2 = {
    "Barrel Shifter based WDE": {"delay_ps": 977.7, "power_nw": 345190.0, "area_cell_units": 9035.0},
    "Inversion based WDE": {"delay_ps": 811.6, "power_nw": 10716.0, "area_cell_units": 195.0},
    "Proposed WDE with Aging Mitigation Controller": {
        "delay_ps": 581.8, "power_nw": 13747.0, "area_cell_units": 295.0},
}


@dataclass(frozen=True)
class SynthesisReport:
    """Area / power / delay estimate of one netlist."""

    design: str
    area_cell_units: float
    delay_ps: float
    power_nw: float
    leakage_nw: float
    total_cells: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view used by serialization."""
        return {
            "design": self.design,
            "area_cell_units": self.area_cell_units,
            "delay_ps": self.delay_ps,
            "power_nw": self.power_nw,
            "leakage_nw": self.leakage_nw,
            "total_cells": float(self.total_cells),
        }


def synthesize(netlist: Netlist, library: Optional[TechnologyLibrary] = None,
               clock_hz: float = DEFAULT_CLOCK_HZ) -> SynthesisReport:
    """Estimate area/power/delay of a netlist against a technology library."""
    library = library or tsmc65_like_library()
    return SynthesisReport(
        design=netlist.name,
        area_cell_units=netlist.area(library),
        delay_ps=netlist.delay_ps(library),
        power_nw=netlist.power_nw(library, clock_hz),
        leakage_nw=netlist.leakage_power_nw(library),
        total_cells=netlist.total_cells,
    )


def table2_report(width: int = TABLE2_DATAPATH_BITS,
                  library: Optional[TechnologyLibrary] = None,
                  clock_hz: float = DEFAULT_CLOCK_HZ) -> List[Dict[str, float]]:
    """Regenerate Table II: the three WDE designs at the given width."""
    designs = [
        barrel_shifter_wde(width, library=library, clock_hz=clock_hz),
        inversion_wde(width, library=library, clock_hz=clock_hz),
        proposed_dnn_life_wde(width, library=library, clock_hz=clock_hz),
    ]
    return [design.report() for design in designs]


def table2_ascii(width: int = TABLE2_DATAPATH_BITS,
                 library: Optional[TechnologyLibrary] = None) -> str:
    """Render Table II (measured vs. paper) as an ASCII table."""
    rows = table2_report(width, library=library)
    table = AsciiTable(
        ["design", "delay [ps]", "power [nW]", "area [cells]",
         "paper delay", "paper power", "paper area"],
        title=f"Table II — Write Data Encoder hardware costs ({width}-bit datapath)",
        precision=1,
    )
    for row in rows:
        reference = PAPER_TABLE2.get(row["design"], {})
        table.add_row([
            row["design"], row["delay_ps"], row["power_nw"], row["area_cell_units"],
            reference.get("delay_ps", "-"), reference.get("power_nw", "-"),
            reference.get("area_cell_units", "-"),
        ])
    return table.render()
