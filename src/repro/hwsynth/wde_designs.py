"""The three Write Data Encoder designs compared in Table II.

All three designs are built for a 64-bit memory interface (the width used in
the paper's synthesis experiments) from the structural components in
:mod:`repro.hwsynth.components`:

* **barrel-shifter WDE** — a full crossbar rotator plus the write counter that
  supplies the rotation amount;
* **inversion WDE** — a rank of XOR gates driven by a toggle flip-flop;
* **proposed WDE with aging-mitigation controller** — the same XOR rank plus
  the DNN-Life controller: a 5-stage ring-oscillator TRBG, the M-bit
  bias-balancing register and the enable glue logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsynth.components import (
    binary_counter,
    crossbar_barrel_shifter,
    enable_control_logic,
    ring_oscillator_trbg,
    xor_inversion_array,
)
from repro.hwsynth.netlist import Netlist
from repro.hwsynth.technology import TechnologyLibrary, tsmc65_like_library
from repro.utils.validation import check_positive_int

#: Interface width used for the Table II comparison.
TABLE2_DATAPATH_BITS = 64
#: Reference clock used to translate switching energy into power figures.
DEFAULT_CLOCK_HZ = 500.0e6


@dataclass
class WdeDesign:
    """A WDE design together with its estimation context."""

    name: str
    datapath_bits: int
    netlist: Netlist
    library: TechnologyLibrary
    clock_hz: float = DEFAULT_CLOCK_HZ

    @property
    def area_cell_units(self) -> float:
        """Area in NAND2-equivalent cell-area units (Table II column 3)."""
        return self.netlist.area(self.library)

    @property
    def delay_ps(self) -> float:
        """Critical-path delay in picoseconds (Table II column 1)."""
        return self.netlist.delay_ps(self.library)

    @property
    def power_nw(self) -> float:
        """Total power at the reference clock in nanowatts (Table II column 2)."""
        return self.netlist.power_nw(self.library, self.clock_hz)

    def energy_per_transfer_joules(self) -> float:
        """Dynamic energy of encoding one ``datapath_bits``-wide transfer."""
        return self.netlist.energy_per_cycle_joules(self.library)

    def report(self) -> dict:
        """Table II row for this design."""
        return {
            "design": self.name,
            "datapath_bits": self.datapath_bits,
            "delay_ps": self.delay_ps,
            "power_nw": self.power_nw,
            "area_cell_units": self.area_cell_units,
            "total_cells": self.netlist.total_cells,
            "energy_per_transfer_joules": self.energy_per_transfer_joules(),
        }


def barrel_shifter_wde(width: int = TABLE2_DATAPATH_BITS,
                       library: TechnologyLibrary = None,
                       clock_hz: float = DEFAULT_CLOCK_HZ) -> WdeDesign:
    """Barrel-shifter based WDE (rotation-amount counter + crossbar rotator)."""
    check_positive_int(width, "width")
    library = library or tsmc65_like_library()
    shifter = crossbar_barrel_shifter(width)
    amount_counter = binary_counter(max(width.bit_length() - 1, 1), name="shift_counter")
    netlist = amount_counter.cascade(shifter, name="barrel_shifter_wde")
    return WdeDesign(name="Barrel Shifter based WDE", datapath_bits=width,
                     netlist=netlist, library=library, clock_hz=clock_hz)


def inversion_wde(width: int = TABLE2_DATAPATH_BITS,
                  library: TechnologyLibrary = None,
                  clock_hz: float = DEFAULT_CLOCK_HZ) -> WdeDesign:
    """Classic inversion WDE (XOR rank driven by a toggle flip-flop)."""
    check_positive_int(width, "width")
    library = library or tsmc65_like_library()
    toggle = binary_counter(1, name="toggle_flop")
    netlist = toggle.cascade(xor_inversion_array(width), name="inversion_wde")
    return WdeDesign(name="Inversion based WDE", datapath_bits=width,
                     netlist=netlist, library=library, clock_hz=clock_hz)


def proposed_dnn_life_wde(width: int = TABLE2_DATAPATH_BITS,
                          balance_register_bits: int = 4,
                          trbg_stages: int = 5,
                          library: TechnologyLibrary = None,
                          clock_hz: float = DEFAULT_CLOCK_HZ) -> WdeDesign:
    """The proposed WDE with its aging-mitigation controller (paper Fig. 8)."""
    check_positive_int(width, "width")
    library = library or tsmc65_like_library()
    controller = (ring_oscillator_trbg(trbg_stages)
                  + binary_counter(balance_register_bits, name="bias_balancer")
                  + enable_control_logic())
    netlist = controller.cascade(xor_inversion_array(width), name="proposed_wde")
    return WdeDesign(name="Proposed WDE with Aging Mitigation Controller",
                     datapath_bits=width, netlist=netlist, library=library,
                     clock_hz=clock_hz)


def wde_for_policy(policy, word_bits: int, interface_bits: int = TABLE2_DATAPATH_BITS,
                   library: TechnologyLibrary = None) -> WdeDesign:
    """The WDE design that implements a given mitigation policy.

    Used by the system-level energy accounting: the interface width defaults
    to the Table II 64-bit datapath (several weight words per transfer).
    """
    from repro.core.policies import (
        BarrelShifterPolicy,
        DnnLifePolicy,
        NoMitigationPolicy,
        PeriodicInversionPolicy,
    )

    library = library or tsmc65_like_library()
    width = max(interface_bits, word_bits)
    if isinstance(policy, NoMitigationPolicy):
        # A bare buffered interface: no mitigation logic at all.
        from repro.hwsynth.technology import CellKind

        passthrough = Netlist(name="passthrough")
        passthrough.add_cells(CellKind.BUF, max(width // 8, 1))
        passthrough.set_critical_path([CellKind.BUF])
        return WdeDesign(name="Pass-through interface", datapath_bits=width,
                         netlist=passthrough, library=library)
    if isinstance(policy, PeriodicInversionPolicy):
        return inversion_wde(width, library=library)
    if isinstance(policy, BarrelShifterPolicy):
        return barrel_shifter_wde(width, library=library)
    if isinstance(policy, DnnLifePolicy):
        balance_bits = (policy.controller.bias_balancer.num_bits
                        if policy.controller.bias_balancer is not None else 1)
        return proposed_dnn_life_wde(width, balance_register_bits=balance_bits,
                                     library=library)
    raise TypeError(f"no WDE design is associated with policy type {type(policy).__name__}")
