"""Structural generators for the building blocks of the WDE designs."""

from __future__ import annotations

import math

from repro.hwsynth.netlist import Netlist
from repro.hwsynth.technology import CellKind
from repro.utils.validation import check_positive_int


def xor_inversion_array(width: int, name: str = "xor_array") -> Netlist:
    """A rank of ``width`` XOR gates sharing one enable input.

    This is the inversion datapath of both the classic inversion WDE and the
    proposed design: each data bit is XOR-ed with the (buffered) enable
    signal.  One buffer per 8 bits is added for the enable fan-out.
    """
    check_positive_int(width, "width")
    netlist = Netlist(name=name)
    netlist.add_cells(CellKind.XOR2, width)
    netlist.add_cells(CellKind.BUF, max(width // 8, 1))
    netlist.set_critical_path([CellKind.BUF, CellKind.XOR2])
    return netlist


def crossbar_barrel_shifter(width: int, name: str = "barrel_shifter") -> Netlist:
    """A single-stage (crossbar) barrel rotator of ``width`` bits.

    Every output bit selects among all ``width`` input bits through a one-hot
    column of transmission gates, plus a shift-amount decoder.  This is the
    classical barrel-shifter structure whose area grows with ``width**2`` —
    the reason Table II reports it as by far the most expensive WDE.
    """
    check_positive_int(width, "width")
    netlist = Netlist(name=name, routing_overhead=0.35, wire_delay_per_stage_ps=12.0)
    netlist.add_cells(CellKind.TGATE, width * width)
    # One-hot decoder for the shift amount (width AND gates over log2(width)
    # buffered select lines).
    select_bits = max(int(math.ceil(math.log2(width))), 1)
    netlist.add_cells(CellKind.AND2, width * max(select_bits - 1, 1))
    netlist.add_cells(CellKind.BUF, width)
    netlist.add_cells(CellKind.INV, select_bits)
    # Critical path: decode the shift amount, drive the long select wires,
    # traverse the transmission gate and the output buffer.
    netlist.set_critical_path(
        [CellKind.INV] + [CellKind.AND2] * max(select_bits - 1, 1)
        + [CellKind.BUF, CellKind.TGATE, CellKind.BUF])
    return netlist


def logarithmic_barrel_shifter(width: int, name: str = "log_shifter") -> Netlist:
    """A log2(width)-stage mux-based rotator (cheaper alternative structure).

    Provided for the design-space ablation: it trades the crossbar's area for
    logic depth.
    """
    check_positive_int(width, "width")
    stages = max(int(math.ceil(math.log2(width))), 1)
    netlist = Netlist(name=name, routing_overhead=0.2)
    netlist.add_cells(CellKind.MUX2, width * stages)
    netlist.add_cells(CellKind.BUF, stages)
    netlist.set_critical_path([CellKind.MUX2] * stages + [CellKind.BUF])
    return netlist


def ring_oscillator_trbg(stages: int = 5, name: str = "trbg") -> Netlist:
    """A ``stages``-stage ring oscillator sampled by a flip-flop (Sec. V-C)."""
    check_positive_int(stages, "stages")
    if stages % 2 == 0:
        raise ValueError("a ring oscillator needs an odd number of inverter stages")
    netlist = Netlist(name=name, activity_factor=0.5)
    netlist.add_cells(CellKind.INV, stages)
    netlist.add_cells(CellKind.DFF, 1)       # sampling flop
    netlist.add_cells(CellKind.NAND2, 1)     # enable gate
    netlist.set_critical_path([CellKind.DFF])
    return netlist


def binary_counter(bits: int, name: str = "counter") -> Netlist:
    """An M-bit synchronous counter (the bias-balancing register)."""
    check_positive_int(bits, "bits")
    netlist = Netlist(name=name)
    netlist.add_cells(CellKind.DFF, bits)
    netlist.add_cells(CellKind.HALF_ADDER, bits)
    netlist.set_critical_path([CellKind.HALF_ADDER, CellKind.DFF])
    return netlist


def pipeline_register(width: int, name: str = "pipeline_register") -> Netlist:
    """An output register rank of ``width`` flip-flops."""
    check_positive_int(width, "width")
    netlist = Netlist(name=name)
    netlist.add_cells(CellKind.DFF, width)
    netlist.set_critical_path([CellKind.DFF])
    return netlist


def enable_control_logic(name: str = "enable_control") -> Netlist:
    """Glue logic combining TRBG output, balancing phase and control signals."""
    netlist = Netlist(name=name)
    netlist.add_cells(CellKind.XOR2, 1)   # TRBG output xor balancing phase
    netlist.add_cells(CellKind.AND2, 1)   # gated by the write-valid signal
    netlist.add_cells(CellKind.DFF, 1)    # registered enable / metadata bit
    netlist.set_critical_path([CellKind.XOR2, CellKind.AND2, CellKind.DFF])
    return netlist
