"""Netlist abstraction: cell counts + logic depth + wiring overhead.

A :class:`Netlist` is a bag of standard cells plus the information needed to
estimate the three quantities Table II reports:

* **area** — sum of cell areas times a routing overhead factor;
* **delay** — the critical path, expressed as an ordered list of cell kinds
  traversed from input to output, plus a wire-delay allowance per stage;
* **power** — dynamic power (switching energy x per-group activity x clock
  frequency) plus leakage.

Cells are added in *groups*; each group carries its own switching-activity
factor, so an always-toggling ring oscillator and a rarely-toggling datapath
can coexist in one netlist without distorting each other's power.  Netlists
compose with ``+`` (parallel composition: areas and power add, the critical
path is the longer one) and :meth:`cascade` (series composition: critical
paths concatenate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hwsynth.technology import CellKind, TechnologyLibrary

#: Backwards-compatible alias used throughout the package's public API.
CellType = CellKind

#: Default fraction of cells toggling per cycle for datapath logic.
DEFAULT_ACTIVITY = 0.15


@dataclass(frozen=True)
class CellGroup:
    """A homogeneous group of cells sharing one switching-activity factor."""

    kind: CellKind
    count: int
    activity: float


@dataclass
class Netlist:
    """A structural description sufficient for area/power/delay estimation."""

    name: str
    cell_groups: List[CellGroup] = field(default_factory=list)
    critical_path: List[CellKind] = field(default_factory=list)
    #: Fractional area added for routing/wiring (0.1 = 10%).
    routing_overhead: float = 0.10
    #: Additional wire delay per critical-path stage, in ps.
    wire_delay_per_stage_ps: float = 5.0
    #: Activity factor applied to cells added without an explicit one.
    activity_factor: float = DEFAULT_ACTIVITY

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_cells(self, kind: CellKind, count: int,
                  activity: Optional[float] = None) -> "Netlist":
        """Add ``count`` cells of the given kind (returns self for chaining)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return self
        self.cell_groups.append(CellGroup(kind=kind, count=int(count),
                                          activity=self.activity_factor
                                          if activity is None else float(activity)))
        return self

    def set_critical_path(self, path: List[CellKind]) -> "Netlist":
        """Define the ordered list of cells on the critical path."""
        self.critical_path = list(path)
        return self

    def __add__(self, other: "Netlist") -> "Netlist":
        """Parallel composition: cells add, the longer critical path wins."""
        merged = Netlist(name=f"{self.name}+{other.name}",
                         routing_overhead=max(self.routing_overhead, other.routing_overhead),
                         wire_delay_per_stage_ps=max(self.wire_delay_per_stage_ps,
                                                     other.wire_delay_per_stage_ps))
        merged.cell_groups = list(self.cell_groups) + list(other.cell_groups)
        longer = self if len(self.critical_path) >= len(other.critical_path) else other
        merged.critical_path = list(longer.critical_path)
        return merged

    def cascade(self, other: "Netlist", name: Optional[str] = None) -> "Netlist":
        """Series composition: cells add and critical paths concatenate."""
        combined = self + other
        combined.name = name or f"{self.name}->{other.name}"
        combined.critical_path = list(self.critical_path) + list(other.critical_path)
        return combined

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    @property
    def cell_counts(self) -> Dict[CellKind, int]:
        """Aggregate cell counts by kind."""
        counts: Dict[CellKind, int] = {}
        for group in self.cell_groups:
            counts[group.kind] = counts.get(group.kind, 0) + group.count
        return counts

    @property
    def total_cells(self) -> int:
        """Total number of standard cells."""
        return sum(group.count for group in self.cell_groups)

    def area(self, library: TechnologyLibrary) -> float:
        """Area in NAND2-equivalent cell-area units (incl. routing overhead)."""
        raw = sum(library.cell(group.kind).area * group.count for group in self.cell_groups)
        return raw * (1.0 + self.routing_overhead)

    def delay_ps(self, library: TechnologyLibrary) -> float:
        """Critical-path delay in picoseconds."""
        logic = sum(library.cell(kind).delay_ps for kind in self.critical_path)
        wires = self.wire_delay_per_stage_ps * len(self.critical_path)
        return logic + wires

    def energy_per_cycle_joules(self, library: TechnologyLibrary) -> float:
        """Dynamic energy consumed in one active cycle, in joules."""
        energy_fj = sum(
            library.cell(group.kind).switching_energy_fj * group.count * group.activity
            for group in self.cell_groups
        )
        return energy_fj * 1e-15

    def dynamic_power_nw(self, library: TechnologyLibrary, frequency_hz: float) -> float:
        """Dynamic power at the given clock frequency, in nanowatts."""
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        return self.energy_per_cycle_joules(library) * frequency_hz * 1e9

    def leakage_power_nw(self, library: TechnologyLibrary) -> float:
        """Static leakage power in nanowatts."""
        return sum(library.cell(group.kind).leakage_nw * group.count
                   for group in self.cell_groups)

    def power_nw(self, library: TechnologyLibrary, frequency_hz: float) -> float:
        """Total power (dynamic + leakage) in nanowatts."""
        return self.dynamic_power_nw(library, frequency_hz) + self.leakage_power_nw(library)

    def describe(self, library: TechnologyLibrary, frequency_hz: float) -> Dict[str, float]:
        """All estimated quantities in one dictionary."""
        return {
            "cells": float(self.total_cells),
            "area_cell_units": self.area(library),
            "delay_ps": self.delay_ps(library),
            "power_nw": self.power_nw(library, frequency_hz),
            "leakage_nw": self.leakage_power_nw(library),
            "energy_per_cycle_joules": self.energy_per_cycle_joules(library),
        }
