"""The Fig. 5 dataflow: partitioning layer weights into on-chip blocks.

The paper's dataflow (Sec. II-B) splits the filters of a CONV layer into
*filter sets* of ``f`` filters (the number the processing array can handle in
parallel).  From each set, a *block* of ``r x c x ch`` weights is taken from
the same location of every filter and moved into the on-chip weight memory;
the block positions are then traversed in a fixed order (channel-major, then
spatial) until the whole set has been streamed, after which the next set is
processed.  Fully-connected layers are handled as filters of shape
``1 x 1 x in_features``.

The tile shape ``(r, c, ch)`` is chosen such that one block fills the
available on-chip capacity as completely as possible (assumption (c) of the
paper's probabilistic model), preferring to keep the full spatial extent of
the kernel and splitting along channels — the same policy SmartShuttle-style
tiling optimisers converge to for weight-dominated layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Layer, Linear
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TileShape:
    """Per-filter tile shape ``(ch, r, c)`` of one on-chip block."""

    channels: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.channels, "channels")
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")

    @property
    def weights_per_filter(self) -> int:
        """Weights contributed by a single filter to one block."""
        return self.channels * self.rows * self.cols


@dataclass(frozen=True)
class FilterSet:
    """A group of up to ``f`` filters processed together (Fig. 5 colours)."""

    set_index: int
    filter_indices: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of filters in this set (the last set may hold fewer)."""
        return len(self.filter_indices)


def iter_filter_sets(num_filters: int, parallel_filters: int) -> Iterator[FilterSet]:
    """Split ``num_filters`` filters into sets of at most ``parallel_filters``."""
    check_positive_int(num_filters, "num_filters")
    check_positive_int(parallel_filters, "parallel_filters")
    for set_index, start in enumerate(range(0, num_filters, parallel_filters)):
        stop = min(start + parallel_filters, num_filters)
        yield FilterSet(set_index=set_index, filter_indices=tuple(range(start, stop)))


def select_tile_shape(filter_shape: Tuple[int, int, int], capacity_per_filter: int) -> TileShape:
    """Choose the ``(ch, r, c)`` tile for a filter of shape ``(CH, R, C)``.

    Keeps the full spatial extent if it fits and splits channels; otherwise
    falls back to splitting rows, then columns.  The returned tile always fits
    within ``capacity_per_filter`` weights.
    """
    channels, rows, cols = filter_shape
    check_positive_int(capacity_per_filter, "capacity_per_filter")
    spatial = rows * cols
    if capacity_per_filter >= spatial:
        tile_channels = min(channels, capacity_per_filter // spatial)
        return TileShape(channels=tile_channels, rows=rows, cols=cols)
    if capacity_per_filter >= cols:
        tile_rows = min(rows, capacity_per_filter // cols)
        return TileShape(channels=1, rows=tile_rows, cols=cols)
    return TileShape(channels=1, rows=1, cols=min(cols, capacity_per_filter))


def _layer_filter_view(layer: Layer) -> np.ndarray:
    """View a layer's weights as ``(num_filters, CH, R, C)``."""
    if layer.weights is None:
        raise ValueError(f"layer '{layer.name}' has no weights attached")
    weights = np.asarray(layer.weights)
    if isinstance(layer, Conv2d):
        return weights
    if isinstance(layer, Linear):
        return weights.reshape(weights.shape[0], weights.shape[1], 1, 1)
    # Generic fallback: first axis indexes output units ("filters").
    flat = weights.reshape(weights.shape[0], -1)
    return flat.reshape(flat.shape[0], flat.shape[1], 1, 1)


def layer_filter_shape(layer: Layer) -> Tuple[int, int, int]:
    """``(CH, R, C)`` shape of one filter of the layer."""
    if isinstance(layer, Conv2d):
        _, in_channels, kernel_h, kernel_w = layer.weight_shape
        return (in_channels, kernel_h, kernel_w)
    if isinstance(layer, Linear):
        return (layer.in_features, 1, 1)
    shape = layer.weight_shape
    if shape is None:
        raise ValueError(f"layer '{layer.name}' has no weights")
    return (int(np.prod(shape[1:])), 1, 1)


@dataclass
class BlockSlice:
    """Description of one block: which weights of which filters it contains."""

    layer_name: str
    set_index: int
    filter_indices: Tuple[int, ...]
    channel_range: Tuple[int, int]
    row_range: Tuple[int, int]
    col_range: Tuple[int, int]

    @property
    def weights_per_filter(self) -> int:
        """Number of weights taken from each filter."""
        return ((self.channel_range[1] - self.channel_range[0])
                * (self.row_range[1] - self.row_range[0])
                * (self.col_range[1] - self.col_range[0]))

    @property
    def total_weights(self) -> int:
        """Total number of weights in the block."""
        return self.weights_per_filter * len(self.filter_indices)


def iter_block_slices(layer: Layer, parallel_filters: int,
                      block_capacity_words: int) -> Iterator[BlockSlice]:
    """Enumerate the Fig. 5 blocks of a layer without touching weight data."""
    check_positive_int(block_capacity_words, "block_capacity_words")
    num_filters = layer.weight_shape[0]
    filter_shape = layer_filter_shape(layer)
    channels, rows, cols = filter_shape
    for filter_set in iter_filter_sets(num_filters, parallel_filters):
        capacity_per_filter = block_capacity_words // filter_set.size
        if capacity_per_filter == 0:
            raise ValueError(
                f"block capacity {block_capacity_words} cannot hold even one weight "
                f"per filter for a set of {filter_set.size} filters"
            )
        tile = select_tile_shape(filter_shape, capacity_per_filter)
        # Traversal order (the "steps" of Fig. 5): channels first, then rows,
        # then columns within the filter volume.
        for channel_start in range(0, channels, tile.channels):
            channel_stop = min(channel_start + tile.channels, channels)
            for row_start in range(0, rows, tile.rows):
                row_stop = min(row_start + tile.rows, rows)
                for col_start in range(0, cols, tile.cols):
                    col_stop = min(col_start + tile.cols, cols)
                    yield BlockSlice(
                        layer_name=layer.name,
                        set_index=filter_set.set_index,
                        filter_indices=filter_set.filter_indices,
                        channel_range=(channel_start, channel_stop),
                        row_range=(row_start, row_stop),
                        col_range=(col_start, col_stop),
                    )


def extract_block_weights(layer: Layer, block: BlockSlice) -> np.ndarray:
    """Materialise the float weights of a block, filter-major, flattened."""
    filters = _layer_filter_view(layer)
    selected = filters[
        list(block.filter_indices),
        block.channel_range[0]:block.channel_range[1],
        block.row_range[0]:block.row_range[1],
        block.col_range[0]:block.col_range[1],
    ]
    return np.ascontiguousarray(selected, dtype=np.float32).reshape(-1)


def iter_layer_blocks(layer: Layer, parallel_filters: int,
                      block_capacity_words: int) -> Iterator[np.ndarray]:
    """Yield the float weight content of every Fig. 5 block of a layer."""
    for block in iter_block_slices(layer, parallel_filters, block_capacity_words):
        yield extract_block_weights(layer, block)


def count_layer_blocks(layer: Layer, parallel_filters: int,
                       block_capacity_words: int) -> int:
    """Number of blocks the layer contributes per inference."""
    return sum(1 for _ in iter_block_slices(layer, parallel_filters, block_capacity_words))


def validate_block_coverage(layer: Layer, blocks: Sequence[BlockSlice]) -> None:
    """Check that the blocks cover every weight of the layer exactly once."""
    num_filters = layer.weight_shape[0]
    filter_shape = layer_filter_shape(layer)
    coverage = np.zeros((num_filters,) + filter_shape, dtype=np.int64)
    for block in blocks:
        coverage[
            list(block.filter_indices),
            block.channel_range[0]:block.channel_range[1],
            block.row_range[0]:block.row_range[1],
            block.col_range[0]:block.col_range[1],
        ] += 1
    if not np.all(coverage == 1):
        missing = int(np.sum(coverage == 0))
        duplicated = int(np.sum(coverage > 1))
        raise AssertionError(
            f"dataflow coverage error for layer '{layer.name}': "
            f"{missing} weights never streamed, {duplicated} streamed more than once"
        )
