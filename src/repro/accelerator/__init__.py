"""DNN accelerator substrate.

Models the two accelerator organisations evaluated in the paper (Table I):

* the **baseline accelerator** of Sec. II-A — activation buffer, 512 KB weight
  buffer, a processing array of ``f`` PEs with ``N`` multipliers each and an
  accumulation unit (Bit-Tactical / DaDianNao-style);
* a **TPU-like NPU** with a 256 x 256 MAC array and a weight FIFO that is four
  tiles deep, modelled as a circular buffer.

The central artefact for the aging analysis is the *weight-block write stream*
each accelerator issues to its on-chip weight memory while executing the
Fig. 5 dataflow; :mod:`repro.accelerator.scheduler` generates it for any
network / data format / memory geometry combination.
"""

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import (
    TABLE_I_CONFIGS,
    AcceleratorConfig,
    baseline_config,
    tpu_like_config,
)
from repro.accelerator.dataflow import (
    FilterSet,
    TileShape,
    iter_filter_sets,
    iter_layer_blocks,
    select_tile_shape,
)
from repro.accelerator.pe_array import AccumulationUnit, PeArray, ProcessingElement
from repro.accelerator.scheduler import (
    CachedWeightStream,
    PackedBitTensor,
    WeightBlock,
    WeightStreamScheduler,
    packed_bit_tensor,
)
from repro.accelerator.tiling_optimizer import TilingCandidate, TilingOptimizer, TilingSolution
from repro.accelerator.tpu import TpuLikeNpu

__all__ = [
    "CachedWeightStream",
    "PackedBitTensor",
    "packed_bit_tensor",
    "TilingCandidate",
    "TilingOptimizer",
    "TilingSolution",
    "BaselineAccelerator",
    "TABLE_I_CONFIGS",
    "AcceleratorConfig",
    "baseline_config",
    "tpu_like_config",
    "FilterSet",
    "TileShape",
    "iter_filter_sets",
    "iter_layer_blocks",
    "select_tile_shape",
    "AccumulationUnit",
    "PeArray",
    "ProcessingElement",
    "WeightBlock",
    "WeightStreamScheduler",
    "TpuLikeNpu",
]
