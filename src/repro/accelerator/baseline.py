"""The baseline DNN accelerator of Sec. II-A (Table I, left column)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.accelerator.config import AcceleratorConfig, baseline_config
from repro.accelerator.pe_array import PeArray
from repro.accelerator.scheduler import WeightStreamScheduler
from repro.memory.energy import MemoryEnergyModel
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SramArray
from repro.nn.network import Network
from repro.quantization.formats import DataFormat, get_format


@dataclass
class BaselineAccelerator:
    """Bit-Tactical / DaDianNao-style accelerator with a 512 KB weight buffer.

    The object bundles the static configuration with factory helpers for the
    pieces the experiments need: the weight-memory geometry for a given data
    format, the weight-stream scheduler implementing the Fig. 5 dataflow and
    a functional processing array.
    """

    config: AcceleratorConfig = field(default_factory=baseline_config)

    @property
    def parallel_filters(self) -> int:
        """``f``: filters processed in parallel (8 for the baseline)."""
        return self.config.parallel_filters

    def weight_memory_geometry(self, data_format: Union[str, DataFormat]) -> MemoryGeometry:
        """Weight-memory geometry for the given weight data format."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return self.config.weight_memory_geometry(fmt.word_bits)

    def weight_memory(self, data_format: Union[str, DataFormat]) -> SramArray:
        """A fresh 6T-SRAM weight-memory array for explicit simulation."""
        return SramArray(self.weight_memory_geometry(data_format))

    def weight_memory_energy_model(self, data_format: Union[str, DataFormat]) -> MemoryEnergyModel:
        """Access-energy model of the weight memory."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return MemoryEnergyModel(capacity_bytes=self.config.weight_memory_bytes,
                                 word_bits=fmt.word_bits)

    def build_scheduler(self, network: Network,
                        data_format: Union[str, DataFormat]) -> WeightStreamScheduler:
        """Weight-stream scheduler for one inference of ``network``."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return WeightStreamScheduler(
            network=network,
            data_format=fmt,
            geometry=self.weight_memory_geometry(fmt),
            parallel_filters=self.parallel_filters,
            fifo_depth_tiles=self.config.weight_fifo_depth_tiles,
        )

    def processing_array(self) -> PeArray:
        """Functional model of the processing array (f PEs x N multipliers)."""
        return PeArray(num_pes=self.config.num_pes,
                       multipliers_per_pe=self.config.multipliers_per_pe)

    def describe(self) -> dict:
        """Machine-readable description (Table I row)."""
        return self.config.describe()
