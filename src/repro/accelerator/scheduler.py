"""Weight-block write-stream generation.

The :class:`WeightStreamScheduler` turns (network, data format, memory
geometry, dataflow parameters) into the sequence of *weight blocks* the
accelerator writes into its on-chip weight memory during one inference:

1. every weight layer is quantized once (per-tensor parameters, computed on
   the full layer as a deployment toolchain would);
2. the layer's weights are traversed in the Fig. 5 dataflow order
   (filter sets of ``f`` filters, ``r x c x ch`` tiles per filter);
3. the resulting word stream is packed into blocks that exactly fill the
   on-chip memory (or one FIFO tile for FIFO-organised memories), matching
   the paper's assumption that each block fits the memory perfectly;
4. blocks are assigned to a memory *region*: full-memory placement rewrites
   the whole array every block, circular-FIFO placement writes tile
   ``i mod depth`` (the TPU-like NPU's four-tile weight FIFO).

The same stream repeats every inference, which is exactly the property that
makes naive aging mitigation ineffective for DNN workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.accelerator.dataflow import BlockSlice, iter_block_slices
from repro.memory.geometry import MemoryGeometry
from repro.nn.layers import Layer
from repro.nn.network import Network
from repro.quantization.formats import DataFormat, get_format
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.memory.trace import WriteTrace


def _storage_dtype(word_bits: int) -> np.dtype:
    """Smallest unsigned dtype able to hold a word of ``word_bits`` bits."""
    if word_bits <= 8:
        return np.dtype(np.uint8)
    if word_bits <= 16:
        return np.dtype(np.uint16)
    if word_bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


@dataclass
class WeightBlock:
    """One block of encoded weights written to the on-chip memory."""

    index: int
    words: np.ndarray
    region: int = 0
    layer_names: Tuple[str, ...] = ()

    @property
    def num_words(self) -> int:
        """Number of weight words in the block."""
        return int(self.words.size)


class WeightStreamScheduler:
    """Generates the per-inference weight write stream of an accelerator."""

    def __init__(self, network: Network, data_format: Union[str, DataFormat],
                 geometry: MemoryGeometry, parallel_filters: int,
                 fifo_depth_tiles: int = 1, pad_final_block: bool = True):
        self.network = network
        self.data_format = get_format(data_format) if isinstance(data_format, str) else data_format
        self.geometry = geometry
        self.parallel_filters = check_positive_int(parallel_filters, "parallel_filters")
        self.fifo_depth_tiles = check_positive_int(fifo_depth_tiles, "fifo_depth_tiles")
        self.pad_final_block = bool(pad_final_block)
        if self.data_format.word_bits != geometry.word_bits:
            raise ValueError(
                f"data format '{self.data_format.name}' is {self.data_format.word_bits}-bit "
                f"but the memory geometry expects {geometry.word_bits}-bit words"
            )
        if geometry.rows % self.fifo_depth_tiles != 0:
            raise ValueError(
                f"{geometry.rows} memory rows cannot be divided into "
                f"{self.fifo_depth_tiles} equal FIFO tiles"
            )
        network.validate_weights()

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    @property
    def words_per_block(self) -> int:
        """Number of weight words per block (memory rows, or one FIFO tile)."""
        return self.geometry.rows // self.fifo_depth_tiles

    @property
    def total_weight_words(self) -> int:
        """Total weight words streamed per inference."""
        return self.network.weight_count

    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference (K of the paper's Eq. 1)."""
        return (self.total_weight_words + self.words_per_block - 1) // self.words_per_block

    @property
    def blocks_per_region(self) -> np.ndarray:
        """How many blocks land in each memory region over one inference."""
        counts = np.zeros(self.fifo_depth_tiles, dtype=np.int64)
        for block_index in range(self.num_blocks):
            counts[block_index % self.fifo_depth_tiles] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def _iter_layer_words(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(layer name, word chunk)`` in Fig. 5 dataflow order."""
        dtype = _storage_dtype(self.geometry.word_bits)
        for layer in self.network.weight_layers():
            # Per-tensor quantization parameters are computed on the whole
            # layer, exactly as a post-training-quantization toolchain would;
            # dataflow chunks are then cut out of the quantized word tensor.
            layer_words = self.data_format.to_words(
                np.asarray(layer.weights, dtype=np.float32)).astype(dtype)
            for block in iter_block_slices(layer, self.parallel_filters, self.words_per_block):
                chunk = _extract_block_words(layer, layer_words, block)
                yield layer.name, chunk

    def iter_blocks(self) -> Iterator[WeightBlock]:
        """Yield the packed, memory-sized blocks of one inference."""
        pending: List[np.ndarray] = []
        pending_words = 0
        pending_layers: List[str] = []
        block_index = 0
        capacity = self.words_per_block

        def emit(words: np.ndarray, layers: Tuple[str, ...]) -> WeightBlock:
            nonlocal block_index
            block = WeightBlock(
                index=block_index,
                words=words,
                region=block_index % self.fifo_depth_tiles,
                layer_names=layers,
            )
            block_index += 1
            return block

        for layer_name, chunk in self._iter_layer_words():
            if not pending_layers or pending_layers[-1] != layer_name:
                pending_layers.append(layer_name)
            position = 0
            while position < chunk.size:
                take = min(chunk.size - position, capacity - pending_words)
                pending.append(chunk[position:position + take])
                pending_words += take
                position += take
                if pending_words == capacity:
                    yield emit(np.concatenate(pending), tuple(pending_layers))
                    pending = []
                    pending_words = 0
                    pending_layers = [layer_name]
        if pending_words:
            words = np.concatenate(pending)
            if self.pad_final_block:
                dtype = words.dtype
                padding = np.zeros(capacity - pending_words, dtype=dtype)
                words = np.concatenate([words, padding])
            yield emit(words, tuple(pending_layers))

    def block_bit_matrix(self, block: WeightBlock) -> np.ndarray:
        """Unpack a block into its ``(words, word_bits)`` bit matrix."""
        from repro.quantization.bitops import unpack_bits

        return unpack_bits(block.words, self.geometry.word_bits)

    def describe(self) -> dict:
        """Machine-readable description of the schedule."""
        return {
            "network": self.network.name,
            "data_format": self.data_format.name,
            "word_bits": self.geometry.word_bits,
            "memory_capacity_bytes": self.geometry.capacity_bytes,
            "memory_rows": self.geometry.rows,
            "words_per_block": self.words_per_block,
            "fifo_depth_tiles": self.fifo_depth_tiles,
            "parallel_filters": self.parallel_filters,
            "total_weight_words": self.total_weight_words,
            "num_blocks_per_inference": self.num_blocks,
        }


def _extract_block_words(layer: Layer, layer_words: np.ndarray,
                         block: BlockSlice) -> np.ndarray:
    """Extract the words of one dataflow block from the quantized layer words."""
    # The flat word array is viewed as (num_filters, CH, R, C) — for
    # fully-connected layers CH is the input dimension and R = C = 1 —
    # mirroring ``extract_block_weights`` for the float tensor.
    from repro.accelerator.dataflow import layer_filter_shape

    filter_shape = layer_filter_shape(layer)
    view = layer_words.reshape((layer.weight_shape[0],) + filter_shape)
    selected = view[
        list(block.filter_indices),
        block.channel_range[0]:block.channel_range[1],
        block.row_range[0]:block.row_range[1],
        block.col_range[0]:block.col_range[1],
    ]
    return np.ascontiguousarray(selected).reshape(-1)


#: Column-chunk budget (bytes of source data per chunk) of the block-axis
#: reductions.  Chosen so a chunk's accumulator stays cache-resident: summing
#: a (blocks, cells) tensor over its *outer* axis in one numpy call streams
#: the full-size accumulator from memory once per block, which for memory-
#: sized blocks costs many times the traffic of reading the data itself.
_REDUCE_CHUNK_BYTES = 1 << 22

#: Headroom kept below the uint16 ceiling when picking the SIMD-friendly
#: small-integer accumulator for weighted block reductions.
_UINT16_BUDGET = 60_000


def block_axis_sum(view: np.ndarray, weights: Optional[np.ndarray] = None,
                   max_value: Optional[int] = None) -> np.ndarray:
    """Sum a ``(B, ...)`` array over its block axis, cache-friendly and exact.

    The reduction runs in column chunks so each chunk's accumulator fits in
    cache, and accumulates in uint16 where the value range *provably* allows
    it (numpy vectorizes uint8→uint16 adds ~3x better than widening to
    int64).  ``max_value`` is the caller's bound on the entries of ``view``
    — bool data is implicitly bounded by 1; anything else keeps the wide
    accumulator unless a bound is declared, so an unknown value range can
    never overflow silently.  ``weights`` (shape ``(B, W)``, optional)
    scales each block word before the reduction.  All supported inputs are
    integral, so the float64 result is exact.
    """
    num_blocks = view.shape[0]
    if max_value is None and view.dtype == np.bool_:
        max_value = 1
    if weights is None:
        flat = view.reshape(num_blocks, -1)
        columns = flat.shape[1]
        small = (view.dtype.itemsize == 1 and max_value is not None
                 and max_value * num_blocks <= _UINT16_BUDGET)
        accumulator = np.uint16 if small else (
            np.int64 if view.dtype.kind in "bui" else np.float64)
        out = np.empty(columns, dtype=np.float64)
        chunk = max(4096, _REDUCE_CHUNK_BYTES
                    // max(num_blocks * view.dtype.itemsize, 1))
        for start in range(0, columns, chunk):
            stop = min(start + chunk, columns)
            out[start:stop] = flat[:, start:stop].sum(axis=0, dtype=accumulator)
        return out.reshape(view.shape[1:])
    if view.ndim == 2:
        return (view * np.asarray(weights, dtype=np.float64)).sum(
            axis=0, dtype=np.float64)
    words, word_bits = view.shape[1], view.shape[2]
    out = np.empty((words, word_bits), dtype=np.float64)
    chunk = max(64, _REDUCE_CHUNK_BYTES
                // max(num_blocks * word_bits * view.dtype.itemsize, 1))
    weight_max = int(weights.max()) if weights.size else 0
    small = (view.dtype == np.uint8 and weights.dtype.kind in "bui"
             and max_value is not None
             and max_value * weight_max <= 255
             and max_value * weight_max * num_blocks <= _UINT16_BUDGET)
    if small:
        weights = weights.astype(np.uint8, copy=False)
        for start in range(0, words, chunk):
            stop = min(start + chunk, words)
            scaled = view[:, start:stop] * weights[:, start:stop, None]
            out[start:stop] = scaled.sum(axis=0, dtype=np.uint16)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        for start in range(0, words, chunk):
            stop = min(start + chunk, words)
            out[start:stop] = np.einsum("bwn,bw->wn", view[:, start:stop],
                                        weights[:, start:stop])
    return out


def as_stride_indexer(indices: np.ndarray) -> Union[np.ndarray, slice]:
    """Compress sorted block indices into a slice when they form a stride.

    Slicing keeps the subsequent reduction a zero-copy view; the fancy-index
    fallback only triggers for irregular region/class layouts.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return indices
    if indices.size == 1:
        return slice(int(indices[0]), int(indices[0]) + 1)
    steps = np.diff(indices)
    if np.all(steps == steps[0]):
        step = int(steps[0])
        return slice(int(indices[0]), int(indices[-1]) + 1, step)
    return indices


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only: the runtime guard behind lint rule DL004.

    Cached packed-stream tensors are shared by every policy evaluation (and,
    with sweep stream affinity, by every job a worker process serves); a
    frozen buffer turns an accidental in-place write into an immediate
    ``ValueError`` at the mutation site instead of silently corrupting all
    later consumers.
    """
    array.setflags(write=False)
    return array


#: Anything exposing the scheduler streaming surface the simulators consume:
#: ``geometry``, ``words_per_block``, ``fifo_depth_tiles``, ``num_blocks``
#: and ``iter_blocks()``.
StreamLike = Union[WeightStreamScheduler, "CachedWeightStream"]


class PackedBitTensor:
    """One inference's entire block stream as a single packed bit tensor.

    The fast aging kernels are whole-tensor reductions; feeding them block by
    block forces a Python loop and an :func:`unpack_bits` call per block.
    This container performs quantization and bit-unpacking exactly once and
    stores the result as a ``(num_blocks, words_per_block, word_bits)`` uint8
    array, so every subsequent policy evaluation on the same workload is a
    handful of NumPy reductions over one contiguous array.

    Blocks shorter than ``words_per_block`` (an unpadded final block) are
    zero-padded in ``bits``; ``valid_words`` records each block's true length
    and :meth:`valid_mask` exposes the per-word validity the kernels use to
    keep write counts exact.

    Attributes
    ----------
    bits:
        ``uint8`` array of shape ``(num_blocks, words_per_block, word_bits)``
        holding the unpacked (MSB-first) bits of every block.
    regions:
        ``int64`` array of shape ``(num_blocks,)``: the memory region (FIFO
        tile) each block is written to.
    valid_words:
        ``int64`` array of shape ``(num_blocks,)``: the number of genuine
        (non-padding) words in each block.
    word_offsets:
        ``int64`` array of shape ``(num_blocks,)``: cumulative number of
        genuine words written *before* each block within one inference —
        i.e. the value of a per-word write counter when the block starts.
    """

    def __init__(self, bits: np.ndarray, regions: np.ndarray,
                 valid_words: np.ndarray, geometry: MemoryGeometry,
                 fifo_depth_tiles: int):
        bits = np.ascontiguousarray(bits, dtype=np.uint8)
        if bits.ndim != 3:
            raise ValueError(f"bits must be (blocks, words, word_bits), got {bits.shape}")
        self.bits = bits
        self.regions = np.asarray(regions, dtype=np.int64).reshape(-1)
        self.valid_words = np.asarray(valid_words, dtype=np.int64).reshape(-1)
        if not (self.regions.size == self.valid_words.size == bits.shape[0]):
            raise ValueError("regions/valid_words length must match the block count")
        self.geometry = geometry
        self.fifo_depth_tiles = int(fifo_depth_tiles)
        self.word_offsets = np.concatenate(
            [[0], np.cumsum(self.valid_words)[:-1]]).astype(np.int64)
        # The tensor is shared across policy evaluations, scenario phases and
        # sweep jobs with stream affinity; freezing every long-lived array
        # turns any aliasing bug the DL004 lint rule misses into an immediate
        # "assignment destination is read-only" instead of a cross-job
        # heisenbug.  Consumers that need scratch space take a .copy().
        for array in (self.bits, self.regions, self.valid_words,
                      self.word_offsets):
            _freeze(array)
        self._valid_mask: Optional[np.ndarray] = None
        self._rows_ones: Optional[np.ndarray] = None
        self._rows_writes: Optional[np.ndarray] = None

    # -- construction ---------------------------------------------------- #
    @classmethod
    def from_stream(cls, stream: "StreamLike") -> "PackedBitTensor":
        """Build the tensor from anything exposing the scheduler interface."""
        from repro.quantization.bitops import unpack_bits

        geometry = stream.geometry
        words_per_block = stream.words_per_block
        word_bits = geometry.word_bits
        num_blocks = int(stream.num_blocks)
        if num_blocks <= 0:
            raise ValueError("cannot pack an empty weight stream")
        bits = np.zeros((num_blocks, words_per_block, word_bits), dtype=np.uint8)
        regions = np.zeros(num_blocks, dtype=np.int64)
        valid = np.zeros(num_blocks, dtype=np.int64)
        count = 0
        for block in stream.iter_blocks():
            if count >= num_blocks:
                raise ValueError(f"stream yielded more than its declared "
                                 f"{num_blocks} blocks")
            if block.num_words > words_per_block:
                raise ValueError(
                    f"block {block.index} holds {block.num_words} words but the "
                    f"schedule allows at most {words_per_block}")
            bits[count, :block.num_words] = unpack_bits(block.words, word_bits)
            regions[count] = block.region
            valid[count] = block.num_words
            count += 1
        if count != num_blocks:
            raise ValueError(f"stream yielded {count} blocks but declared {num_blocks}")
        return cls(bits=bits, regions=regions, valid_words=valid, geometry=geometry,
                   fifo_depth_tiles=stream.fifo_depth_tiles)

    # -- sizing ----------------------------------------------------------- #
    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference."""
        return int(self.bits.shape[0])

    @property
    def words_per_block(self) -> int:
        """Words per (padded) block — the second axis of :attr:`bits`."""
        return int(self.bits.shape[1])

    @property
    def word_bits(self) -> int:
        """Bits per word — the third axis of :attr:`bits`."""
        return int(self.bits.shape[2])

    @property
    def total_words(self) -> int:
        """Genuine (non-padding) words streamed per inference."""
        return int(self.valid_words.sum())

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed bit tensor."""
        return int(self.bits.nbytes)

    def valid_mask(self) -> np.ndarray:
        """Boolean ``(num_blocks, words_per_block)`` mask of genuine words.

        The returned array is cached, shared and read-only; ``.copy()`` it
        for scratch use.
        """
        if self._valid_mask is None:
            word_index = np.arange(self.words_per_block, dtype=np.int64)
            self._valid_mask = _freeze(
                word_index[None, :] < self.valid_words[:, None])
        return self._valid_mask

    def region_blocks(self, region: int) -> np.ndarray:
        """Indices (in stream order) of the blocks written to ``region``."""
        return np.flatnonzero(self.regions == region)

    def region_indexers(self) -> Iterator[Tuple[slice, Union[np.ndarray, slice]]]:
        """Yield ``(row_slice, block indexer)`` for every memory region.

        The indexer selects a region's blocks (in stream order) out of any
        ``(num_blocks, ...)`` array.  For the round-robin region assignment
        the scheduler produces it is a stride (a view, no copy); arbitrary
        region maps fall back to fancy indexing.
        """
        depth = self.fifo_depth_tiles
        words = self.words_per_block
        round_robin = bool(np.array_equal(
            self.regions, np.arange(self.num_blocks, dtype=np.int64) % depth))
        for region in range(depth):
            row_slice = slice(region * words, (region + 1) * words)
            indexer = (slice(region, None, depth) if round_robin
                       else self.region_blocks(region))
            yield row_slice, indexer

    def rows_sum(self, array: np.ndarray,
                 weights: Optional[np.ndarray] = None,
                 max_value: Optional[int] = None) -> np.ndarray:
        """Reduce a per-block ``(B, W[, n])`` array into per-memory-row totals.

        ``max_value`` bounds the entries of ``array`` and unlocks the narrow
        SIMD accumulator in :func:`block_axis_sum`; leave it ``None`` when
        the range is unknown.
        """
        out = np.zeros((self.geometry.rows,) + array.shape[2:], dtype=np.float64)
        for row_slice, indexer in self.region_indexers():
            view = array[indexer]
            if view.shape[0]:
                out[row_slice] = block_axis_sum(
                    view, None if weights is None else weights[indexer],
                    max_value=max_value)
        return out

    def rows_ones(self) -> np.ndarray:
        """Per-cell count of '1' bits written in one inference (cached).

        Policy-independent, so every kernel evaluating the same stream —
        a policy suite, a sweep batch — shares one reduction pass.  The
        returned array is read-only; ``.copy()`` it for scratch use.
        """
        if self._rows_ones is None:
            self._rows_ones = _freeze(self.rows_sum(self.bits, max_value=1))
        return self._rows_ones

    def rows_writes(self) -> np.ndarray:
        """Per-row count of genuine writes in one inference (cached,
        read-only)."""
        if self._rows_writes is None:
            self._rows_writes = _freeze(self.rows_sum(self.valid_mask()))
        return self._rows_writes


class CachedWeightStream:
    """A scheduler wrapper that materialises the block list once.

    Evaluating several mitigation policies on the same workload re-streams the
    same blocks; caching them avoids re-quantizing the network for every
    policy.  The wrapper exposes the subset of the scheduler interface the
    aging simulators use, plus :meth:`packed_bits` — the bit-unpacked form of
    the whole stream, built once and shared by every policy evaluation.

    When attached to a :class:`~repro.streamstore.StreamStore` (via the
    constructor or :meth:`attach_store`), :meth:`packed_bits` first tries to
    memory-map a previously persisted tensor under ``store_key`` and, on a
    miss, offers the freshly-built one back to the store — so the expensive
    bit-unpacking happens once per unique stream across *all* processes, not
    once per process.
    """

    def __init__(self, scheduler: WeightStreamScheduler, store: Any = None,
                 store_key: Optional[str] = None):
        self._scheduler = scheduler
        self._blocks = list(scheduler.iter_blocks())
        # The block list is replayed by every policy evaluation sharing this
        # stream (and by the explicit cross-check engines); freeze the word
        # arrays so an encoder that mutated its input would fail fast
        # instead of corrupting the next evaluation's stream.
        for block in self._blocks:
            _freeze(block.words)
        self._packed: Optional[PackedBitTensor] = None
        self._store = store
        self._store_key = store_key

    def attach_store(self, store: Any, key: str) -> None:
        """Back :meth:`packed_bits` with a stream-store entry under ``key``."""
        self._store = store
        self._store_key = key

    @property
    def geometry(self) -> MemoryGeometry:
        """Geometry of the underlying weight memory."""
        return self._scheduler.geometry

    @property
    def words_per_block(self) -> int:
        """Words per block of the underlying schedule."""
        return self._scheduler.words_per_block

    @property
    def fifo_depth_tiles(self) -> int:
        """FIFO depth of the underlying schedule."""
        return self._scheduler.fifo_depth_tiles

    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference."""
        return len(self._blocks)

    def iter_blocks(self) -> Iterator[WeightBlock]:
        """Yield the cached blocks in order."""
        return iter(self._blocks)

    def packed_bits(self) -> PackedBitTensor:
        """The whole stream as one :class:`PackedBitTensor` (built lazily once).

        With an attached stream store the tensor is memory-mapped from disk
        when a matching entry exists; a cold build is offered back to the
        store (best-effort) so the next process loads instead of rebuilding.
        """
        if self._packed is None:
            if self._store is not None and self._store_key is not None:
                loaded = self._store.get(self._store_key)
                if loaded is not None and self._matches(loaded):
                    self._packed = loaded
                    return self._packed
            self._packed = PackedBitTensor.from_stream(self)
            if self._store is not None and self._store_key is not None:
                self._store.offer(self._store_key, self._packed,
                                  describe=self.describe())
        return self._packed

    def _matches(self, packed: PackedBitTensor) -> bool:
        """Sanity-check a store-loaded tensor against this schedule's shape.

        Content addressing makes a mismatch all but impossible; this guards
        against a manifest pointing at the wrong payload (manual tampering,
        copy errors) so such an entry degrades to a rebuild, not a wrong
        simulation.
        """
        return (packed.num_blocks == self.num_blocks
                and packed.words_per_block == self.words_per_block
                and packed.fifo_depth_tiles == self.fifo_depth_tiles
                and packed.geometry == self.geometry)

    def describe(self) -> dict:
        """Description of the underlying schedule."""
        return self._scheduler.describe()


def packed_bit_tensor(stream: Union["StreamLike", PackedBitTensor]) -> PackedBitTensor:
    """Resolve the packed form of ``stream``, reusing its cache when it has one.

    :class:`CachedWeightStream` (and any stream exposing ``packed_bits()``)
    returns its shared tensor; bare schedulers are packed on the fly.
    """
    if isinstance(stream, PackedBitTensor):
        return stream
    packed = getattr(stream, "packed_bits", None)
    if callable(packed):
        return packed()
    return PackedBitTensor.from_stream(stream)


def stream_to_trace(scheduler: WeightStreamScheduler, num_inferences: int = 1,
                    residency: float = 1.0) -> "WriteTrace":
    """Record ``num_inferences`` repetitions of the stream as a WriteTrace.

    Only intended for small networks / memories (explicit simulation and
    tests); the fast aging simulator consumes :meth:`iter_blocks` directly.
    """
    from repro.memory.trace import WriteRecord, WriteTrace

    check_positive_int(num_inferences, "num_inferences")
    trace = WriteTrace(word_bits=scheduler.geometry.word_bits)
    for _ in range(num_inferences):
        for block in scheduler.iter_blocks():
            trace.append(WriteRecord(block_index=block.index,
                                     words=block.words.astype(np.uint64),
                                     residency=residency,
                                     start_row=block.region * scheduler.words_per_block))
    return trace
