"""Weight-block write-stream generation.

The :class:`WeightStreamScheduler` turns (network, data format, memory
geometry, dataflow parameters) into the sequence of *weight blocks* the
accelerator writes into its on-chip weight memory during one inference:

1. every weight layer is quantized once (per-tensor parameters, computed on
   the full layer as a deployment toolchain would);
2. the layer's weights are traversed in the Fig. 5 dataflow order
   (filter sets of ``f`` filters, ``r x c x ch`` tiles per filter);
3. the resulting word stream is packed into blocks that exactly fill the
   on-chip memory (or one FIFO tile for FIFO-organised memories), matching
   the paper's assumption that each block fits the memory perfectly;
4. blocks are assigned to a memory *region*: full-memory placement rewrites
   the whole array every block, circular-FIFO placement writes tile
   ``i mod depth`` (the TPU-like NPU's four-tile weight FIFO).

The same stream repeats every inference, which is exactly the property that
makes naive aging mitigation ineffective for DNN workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.accelerator.dataflow import iter_block_slices
from repro.memory.geometry import MemoryGeometry
from repro.nn.network import Network
from repro.quantization.formats import DataFormat, get_format
from repro.utils.validation import check_positive_int


def _storage_dtype(word_bits: int) -> np.dtype:
    """Smallest unsigned dtype able to hold a word of ``word_bits`` bits."""
    if word_bits <= 8:
        return np.dtype(np.uint8)
    if word_bits <= 16:
        return np.dtype(np.uint16)
    if word_bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


@dataclass
class WeightBlock:
    """One block of encoded weights written to the on-chip memory."""

    index: int
    words: np.ndarray
    region: int = 0
    layer_names: Tuple[str, ...] = ()

    @property
    def num_words(self) -> int:
        """Number of weight words in the block."""
        return int(self.words.size)


class WeightStreamScheduler:
    """Generates the per-inference weight write stream of an accelerator."""

    def __init__(self, network: Network, data_format: Union[str, DataFormat],
                 geometry: MemoryGeometry, parallel_filters: int,
                 fifo_depth_tiles: int = 1, pad_final_block: bool = True):
        self.network = network
        self.data_format = get_format(data_format) if isinstance(data_format, str) else data_format
        self.geometry = geometry
        self.parallel_filters = check_positive_int(parallel_filters, "parallel_filters")
        self.fifo_depth_tiles = check_positive_int(fifo_depth_tiles, "fifo_depth_tiles")
        self.pad_final_block = bool(pad_final_block)
        if self.data_format.word_bits != geometry.word_bits:
            raise ValueError(
                f"data format '{self.data_format.name}' is {self.data_format.word_bits}-bit "
                f"but the memory geometry expects {geometry.word_bits}-bit words"
            )
        if geometry.rows % self.fifo_depth_tiles != 0:
            raise ValueError(
                f"{geometry.rows} memory rows cannot be divided into "
                f"{self.fifo_depth_tiles} equal FIFO tiles"
            )
        network.validate_weights()

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    @property
    def words_per_block(self) -> int:
        """Number of weight words per block (memory rows, or one FIFO tile)."""
        return self.geometry.rows // self.fifo_depth_tiles

    @property
    def total_weight_words(self) -> int:
        """Total weight words streamed per inference."""
        return self.network.weight_count

    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference (K of the paper's Eq. 1)."""
        return (self.total_weight_words + self.words_per_block - 1) // self.words_per_block

    @property
    def blocks_per_region(self) -> np.ndarray:
        """How many blocks land in each memory region over one inference."""
        counts = np.zeros(self.fifo_depth_tiles, dtype=np.int64)
        for block_index in range(self.num_blocks):
            counts[block_index % self.fifo_depth_tiles] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Stream generation
    # ------------------------------------------------------------------ #
    def _iter_layer_words(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(layer name, word chunk)`` in Fig. 5 dataflow order."""
        dtype = _storage_dtype(self.geometry.word_bits)
        for layer in self.network.weight_layers():
            # Per-tensor quantization parameters are computed on the whole
            # layer, exactly as a post-training-quantization toolchain would;
            # dataflow chunks are then cut out of the quantized word tensor.
            layer_words = self.data_format.to_words(
                np.asarray(layer.weights, dtype=np.float32)).astype(dtype)
            for block in iter_block_slices(layer, self.parallel_filters, self.words_per_block):
                chunk = _extract_block_words(layer, layer_words, block)
                yield layer.name, chunk

    def iter_blocks(self) -> Iterator[WeightBlock]:
        """Yield the packed, memory-sized blocks of one inference."""
        pending: List[np.ndarray] = []
        pending_words = 0
        pending_layers: List[str] = []
        block_index = 0
        capacity = self.words_per_block

        def emit(words: np.ndarray, layers: Tuple[str, ...]) -> WeightBlock:
            nonlocal block_index
            block = WeightBlock(
                index=block_index,
                words=words,
                region=block_index % self.fifo_depth_tiles,
                layer_names=layers,
            )
            block_index += 1
            return block

        for layer_name, chunk in self._iter_layer_words():
            if not pending_layers or pending_layers[-1] != layer_name:
                pending_layers.append(layer_name)
            position = 0
            while position < chunk.size:
                take = min(chunk.size - position, capacity - pending_words)
                pending.append(chunk[position:position + take])
                pending_words += take
                position += take
                if pending_words == capacity:
                    yield emit(np.concatenate(pending), tuple(pending_layers))
                    pending = []
                    pending_words = 0
                    pending_layers = [layer_name]
        if pending_words:
            words = np.concatenate(pending)
            if self.pad_final_block:
                dtype = words.dtype
                padding = np.zeros(capacity - pending_words, dtype=dtype)
                words = np.concatenate([words, padding])
            yield emit(words, tuple(pending_layers))

    def block_bit_matrix(self, block: WeightBlock) -> np.ndarray:
        """Unpack a block into its ``(words, word_bits)`` bit matrix."""
        from repro.quantization.bitops import unpack_bits

        return unpack_bits(block.words, self.geometry.word_bits)

    def describe(self) -> dict:
        """Machine-readable description of the schedule."""
        return {
            "network": self.network.name,
            "data_format": self.data_format.name,
            "word_bits": self.geometry.word_bits,
            "memory_capacity_bytes": self.geometry.capacity_bytes,
            "memory_rows": self.geometry.rows,
            "words_per_block": self.words_per_block,
            "fifo_depth_tiles": self.fifo_depth_tiles,
            "parallel_filters": self.parallel_filters,
            "total_weight_words": self.total_weight_words,
            "num_blocks_per_inference": self.num_blocks,
        }


def _extract_block_words(layer, layer_words: np.ndarray, block) -> np.ndarray:
    """Extract the words of one dataflow block from the quantized layer words."""
    # The flat word array is viewed as (num_filters, CH, R, C) — for
    # fully-connected layers CH is the input dimension and R = C = 1 —
    # mirroring ``extract_block_weights`` for the float tensor.
    from repro.accelerator.dataflow import layer_filter_shape

    filter_shape = layer_filter_shape(layer)
    view = layer_words.reshape((layer.weight_shape[0],) + filter_shape)
    selected = view[
        list(block.filter_indices),
        block.channel_range[0]:block.channel_range[1],
        block.row_range[0]:block.row_range[1],
        block.col_range[0]:block.col_range[1],
    ]
    return np.ascontiguousarray(selected).reshape(-1)


class CachedWeightStream:
    """A scheduler wrapper that materialises the block list once.

    Evaluating several mitigation policies on the same workload re-streams the
    same blocks; caching them avoids re-quantizing the network for every
    policy.  The wrapper exposes the subset of the scheduler interface the
    aging simulators use.
    """

    def __init__(self, scheduler: WeightStreamScheduler):
        self._scheduler = scheduler
        self._blocks = list(scheduler.iter_blocks())

    @property
    def geometry(self) -> MemoryGeometry:
        """Geometry of the underlying weight memory."""
        return self._scheduler.geometry

    @property
    def words_per_block(self) -> int:
        """Words per block of the underlying schedule."""
        return self._scheduler.words_per_block

    @property
    def fifo_depth_tiles(self) -> int:
        """FIFO depth of the underlying schedule."""
        return self._scheduler.fifo_depth_tiles

    @property
    def num_blocks(self) -> int:
        """Number of blocks per inference."""
        return len(self._blocks)

    def iter_blocks(self):
        """Yield the cached blocks in order."""
        return iter(self._blocks)

    def describe(self) -> dict:
        """Description of the underlying schedule."""
        return self._scheduler.describe()


def stream_to_trace(scheduler: WeightStreamScheduler, num_inferences: int = 1,
                    residency: float = 1.0):
    """Record ``num_inferences`` repetitions of the stream as a WriteTrace.

    Only intended for small networks / memories (explicit simulation and
    tests); the fast aging simulator consumes :meth:`iter_blocks` directly.
    """
    from repro.memory.trace import WriteRecord, WriteTrace

    check_positive_int(num_inferences, "num_inferences")
    trace = WriteTrace(word_bits=scheduler.geometry.word_bits)
    for _ in range(num_inferences):
        for block in scheduler.iter_blocks():
            trace.append(WriteRecord(block_index=block.index,
                                     words=block.words.astype(np.uint64),
                                     residency=residency,
                                     start_row=block.region * scheduler.words_per_block))
    return trace
