"""Accelerator hardware configurations (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.memory.geometry import MemoryGeometry
from repro.utils.units import KB, MB
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static configuration of a DNN accelerator.

    Attributes
    ----------
    name:
        Configuration name used in reports.
    weight_memory_bytes:
        Capacity of the on-chip weight buffer / FIFO.
    activation_memory_bytes:
        Capacity of the on-chip activation buffer.
    num_pes:
        Number of processing elements (``f`` in the paper: filters processed
        in parallel, each PE accumulates one filter's partial sum).
    multipliers_per_pe:
        Number of multipliers per PE (``N``: activations shared per cycle).
    weight_fifo_depth_tiles:
        For FIFO-organised weight memories (TPU-like NPU), the number of tiles
        the FIFO holds; ``1`` means the whole memory is (re)written as a unit.
    """

    name: str
    weight_memory_bytes: int
    activation_memory_bytes: int
    num_pes: int
    multipliers_per_pe: int
    weight_fifo_depth_tiles: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.weight_memory_bytes, "weight_memory_bytes")
        check_positive_int(self.activation_memory_bytes, "activation_memory_bytes")
        check_positive_int(self.num_pes, "num_pes")
        check_positive_int(self.multipliers_per_pe, "multipliers_per_pe")
        check_positive_int(self.weight_fifo_depth_tiles, "weight_fifo_depth_tiles")

    @property
    def parallel_filters(self) -> int:
        """``f``: number of filters whose weights are consumed in parallel."""
        return self.num_pes

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle."""
        return self.num_pes * self.multipliers_per_pe

    def weight_memory_geometry(self, word_bits: int) -> MemoryGeometry:
        """Geometry of the weight memory for a given weight word width."""
        return MemoryGeometry(capacity_bytes=self.weight_memory_bytes, word_bits=word_bits)

    def weights_per_tile(self, word_bits: int) -> int:
        """Number of weight words in one FIFO tile."""
        geometry = self.weight_memory_geometry(word_bits)
        if geometry.rows % self.weight_fifo_depth_tiles != 0:
            raise ValueError(
                f"{geometry.rows} rows cannot be split into "
                f"{self.weight_fifo_depth_tiles} equal tiles"
            )
        return geometry.rows // self.weight_fifo_depth_tiles

    def describe(self) -> Dict[str, object]:
        """Machine-readable description (used by the Table I benchmark)."""
        return {
            "name": self.name,
            "weight_memory_KB": self.weight_memory_bytes / KB,
            "activation_memory_MB": self.activation_memory_bytes / MB,
            "num_pes": self.num_pes,
            "multipliers_per_pe": self.multipliers_per_pe,
            "parallel_filters_f": self.parallel_filters,
            "weight_fifo_depth_tiles": self.weight_fifo_depth_tiles,
            "macs_per_cycle": self.macs_per_cycle,
        }


def baseline_config() -> AcceleratorConfig:
    """The baseline accelerator of Table I.

    512 KB weight memory, 4 MB activation memory, 8 PEs with 8 multipliers
    each (``f = 8``, ``N = 8``).
    """
    return AcceleratorConfig(
        name="baseline",
        weight_memory_bytes=512 * KB,
        activation_memory_bytes=4 * MB,
        num_pes=8,
        multipliers_per_pe=8,
        weight_fifo_depth_tiles=1,
    )


def tpu_like_config() -> AcceleratorConfig:
    """The TPU-like NPU of Table I.

    256 KB weight FIFO (four tiles deep, one tile = weights for the
    256 x 256 MAC array), 24 MB activation memory, ``f = 256``.
    """
    return AcceleratorConfig(
        name="tpu_like_npu",
        weight_memory_bytes=256 * KB,
        activation_memory_bytes=24 * MB,
        num_pes=256,
        multipliers_per_pe=256,
        weight_fifo_depth_tiles=4,
    )


#: Table I of the paper, keyed by configuration name.
TABLE_I_CONFIGS: Dict[str, AcceleratorConfig] = {
    "baseline": baseline_config(),
    "tpu_like_npu": tpu_like_config(),
}

#: Networks evaluated on each configuration in the paper (Table I bottom row).
TABLE_I_NETWORKS: Dict[str, Tuple[str, ...]] = {
    "baseline": ("alexnet",),
    "tpu_like_npu": ("alexnet", "vgg16", "custom_mnist"),
}
