"""Functional and timing model of the processing array (paper Fig. 4b).

The baseline accelerator's processing array is made of ``f`` processing
elements.  Every cycle each PE receives the same ``N`` input activations, its
own ``N`` weights (one filter per PE), multiplies them pairwise and reduces
the products through an adder tree; the accumulation unit adds the per-cycle
partial sum into the running output activation.

This module is used by the end-to-end integration tests (the accelerator
produces the same outputs as the numpy reference forward pass) and by the
cycle-count/energy accounting of the ablation studies.  It is *not* used by
the aging simulation, which only needs the weight write stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass
class ProcessingElement:
    """One PE: ``N`` multipliers feeding an adder tree."""

    num_multipliers: int

    def __post_init__(self) -> None:
        check_positive_int(self.num_multipliers, "num_multipliers")

    def multiply_accumulate(self, activations: np.ndarray, weights: np.ndarray) -> float:
        """One cycle: pairwise multiply and reduce through the adder tree."""
        activations = np.asarray(activations, dtype=np.float64).reshape(-1)
        weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        if activations.size != weights.size:
            raise ValueError("activations and weights must have equal length")
        if activations.size > self.num_multipliers:
            raise ValueError(
                f"PE has {self.num_multipliers} multipliers but received "
                f"{activations.size} operand pairs"
            )
        return float(np.dot(activations, weights))

    @property
    def adder_tree_depth(self) -> int:
        """Depth of the reduction tree (log2 of the multiplier count)."""
        return int(np.ceil(np.log2(max(self.num_multipliers, 2))))


@dataclass
class AccumulationUnit:
    """Holds one running partial sum per PE (paper Fig. 4b right)."""

    num_lanes: int
    partial_sums: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_lanes, "num_lanes")
        self.partial_sums = np.zeros(self.num_lanes, dtype=np.float64)

    def accumulate(self, values: np.ndarray) -> None:
        """Add one per-PE partial sum vector into the running totals."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size != self.num_lanes:
            raise ValueError(f"expected {self.num_lanes} partial sums, got {values.size}")
        self.partial_sums += values

    def flush(self) -> np.ndarray:
        """Return the accumulated outputs and reset the registers."""
        outputs = self.partial_sums.copy()
        self.partial_sums[:] = 0.0
        return outputs


class PeArray:
    """An array of ``f`` PEs sharing activations (paper Fig. 4b left)."""

    def __init__(self, num_pes: int, multipliers_per_pe: int):
        check_positive_int(num_pes, "num_pes")
        check_positive_int(multipliers_per_pe, "multipliers_per_pe")
        self.num_pes = num_pes
        self.multipliers_per_pe = multipliers_per_pe
        self.pes: List[ProcessingElement] = [
            ProcessingElement(multipliers_per_pe) for _ in range(num_pes)
        ]
        self.accumulator = AccumulationUnit(num_pes)
        self.cycles = 0

    def cycle(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Execute one array cycle.

        Parameters
        ----------
        activations:
            ``N`` activation values broadcast to every PE.
        weights:
            ``(f, N)`` weights — one row per PE / filter.

        Returns
        -------
        numpy.ndarray
            The per-PE partial sums produced this cycle (also accumulated).
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != self.num_pes:
            raise ValueError(f"expected {self.num_pes} weight rows, got {weights.shape[0]}")
        partials = np.array([
            pe.multiply_accumulate(activations, weights[index])
            for index, pe in enumerate(self.pes)
        ])
        self.accumulator.accumulate(partials)
        self.cycles += 1
        return partials

    def compute_dot_products(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute ``f`` full dot products by streaming ``N`` operands per cycle.

        ``activations`` has length ``L`` and ``weights`` shape ``(f, L)``;
        the operands are consumed in chunks of ``N`` per cycle exactly as the
        real datapath would, and the accumulated outputs are returned.
        """
        activations = np.asarray(activations, dtype=np.float64).reshape(-1)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_pes, activations.size):
            raise ValueError(
                f"weights must have shape ({self.num_pes}, {activations.size}), "
                f"got {weights.shape}"
            )
        chunk = self.multipliers_per_pe
        for start in range(0, activations.size, chunk):
            stop = min(start + chunk, activations.size)
            self.cycle(activations[start:stop], weights[:, start:stop])
        return self.accumulator.flush()

    def cycles_for_dot_product(self, length: int) -> int:
        """Cycles needed to reduce a dot product of the given length."""
        check_positive_int(length, "length")
        return (length + self.multipliers_per_pe - 1) // self.multipliers_per_pe
