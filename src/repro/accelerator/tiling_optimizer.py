"""SmartShuttle-style tiling optimisation (extension).

The paper assumes that an optimal tiling / computation-scheduling policy for
each layer is provided by an external tool such as SmartShuttle (Li et al.,
DATE 2018).  This module implements a small version of that optimiser so the
library is self-contained: given a layer, the accelerator configuration and
the on-chip buffer sizes, it enumerates candidate ``(r, c, ch)`` weight tiles
and output-tile shapes, estimates the DRAM traffic each candidate implies, and
returns the schedule minimising off-chip transfers (ties broken by PE
utilisation).

The weight-memory aging analysis itself only depends on the *order* in which
weight blocks are streamed, which the optimiser does not change; the optimiser
is used by the ablation benchmarks to confirm that DNN-Life is insensitive to
the tiling choice, and by users who want realistic traffic/energy numbers for
their own configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.dataflow import TileShape
from repro.nn.layers import Conv2d, Layer, Linear
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TilingCandidate:
    """One evaluated tiling configuration for a layer."""

    tile: TileShape
    output_tile_rows: int
    output_tile_cols: int
    weight_traffic_bytes: float
    activation_traffic_bytes: float
    partial_sum_traffic_bytes: float
    pe_utilization: float

    @property
    def total_dram_traffic_bytes(self) -> float:
        """Total off-chip traffic implied by this tiling."""
        return (self.weight_traffic_bytes + self.activation_traffic_bytes
                + self.partial_sum_traffic_bytes)


@dataclass(frozen=True)
class TilingSolution:
    """The selected tiling for a layer plus the candidates that lost."""

    layer_name: str
    best: TilingCandidate
    candidates: Tuple[TilingCandidate, ...]

    @property
    def traffic_reduction_vs_worst(self) -> float:
        """DRAM-traffic ratio between the worst candidate and the chosen one."""
        worst = max(candidate.total_dram_traffic_bytes for candidate in self.candidates)
        return worst / max(self.best.total_dram_traffic_bytes, 1e-12)


class TilingOptimizer:
    """Exhaustive-search tiling optimiser over a small candidate space."""

    def __init__(self, config: AcceleratorConfig, bytes_per_weight: float = 1.0,
                 bytes_per_activation: float = 1.0):
        self.config = config
        self.bytes_per_weight = float(bytes_per_weight)
        self.bytes_per_activation = float(bytes_per_activation)

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    def _channel_splits(self, channels: int) -> List[int]:
        splits = sorted({1, 2, 4, 8, 16, 32, 64, channels})
        return [split for split in splits if split <= channels]

    def _output_tile_sizes(self, extent: int) -> List[int]:
        sizes = sorted({1, 2, 4, 7, 8, 14, 16, 28, extent})
        return [size for size in sizes if size <= extent]

    def candidates_for_conv(self, layer: Conv2d,
                            input_shape: Tuple[int, int, int]) -> Iterable[TilingCandidate]:
        """Enumerate tilings of a convolution layer."""
        out_channels, out_height, out_width = layer.output_shape(input_shape)
        kernel_h, kernel_w = layer.kernel_size
        in_channels = layer.in_channels
        weight_capacity = self.config.weight_memory_bytes / self.bytes_per_weight
        activation_capacity = self.config.activation_memory_bytes / self.bytes_per_activation

        for tile_channels in self._channel_splits(in_channels):
            tile = TileShape(channels=tile_channels, rows=kernel_h, cols=kernel_w)
            weights_resident = tile.weights_per_filter * min(self.config.parallel_filters,
                                                             out_channels)
            if weights_resident > weight_capacity:
                continue
            for tile_out_h in self._output_tile_sizes(out_height):
                for tile_out_w in self._output_tile_sizes(out_width):
                    input_tile = ((tile_out_h - 1) * layer.stride + kernel_h) \
                        * ((tile_out_w - 1) * layer.stride + kernel_w) * tile_channels
                    if input_tile > activation_capacity:
                        continue
                    candidate = self._score_conv_candidate(
                        layer, input_shape, tile, tile_out_h, tile_out_w)
                    yield candidate

    def _score_conv_candidate(self, layer: Conv2d, input_shape: Tuple[int, int, int],
                              tile: TileShape, tile_out_h: int, tile_out_w: int
                              ) -> TilingCandidate:
        out_channels, out_height, out_width = layer.output_shape(input_shape)
        in_channels = layer.in_channels
        kernel_h, kernel_w = layer.kernel_size

        channel_passes = int(np.ceil(in_channels / tile.channels))
        spatial_tiles = (int(np.ceil(out_height / tile_out_h))
                         * int(np.ceil(out_width / tile_out_w)))

        # Weights: each filter's weights are fetched once per spatial tile
        # unless the whole filter set stays resident (output-stationary reuse
        # of weights across spatial tiles is not available on this datapath).
        weight_bytes = (layer.weight_count * self.bytes_per_weight
                        * max(spatial_tiles // max(channel_passes, 1), 1)
                        if spatial_tiles > 1 else layer.weight_count * self.bytes_per_weight)

        # Activations: each input tile is fetched once per filter-set pass.
        filter_sets = int(np.ceil(layer.out_channels / self.config.parallel_filters))
        input_tile_elems = ((tile_out_h - 1) * layer.stride + kernel_h) \
            * ((tile_out_w - 1) * layer.stride + kernel_w) * tile.channels
        activation_bytes = (input_tile_elems * spatial_tiles * channel_passes * filter_sets
                            * self.bytes_per_activation)

        # Partial sums spill to DRAM only when the channel dimension is split.
        partial_sum_bytes = 0.0
        if channel_passes > 1:
            partial_sum_bytes = (out_channels * out_height * out_width
                                 * (channel_passes - 1) * 2 * self.bytes_per_activation)

        lanes_used = min(self.config.parallel_filters, layer.out_channels)
        multipliers_used = min(self.config.multipliers_per_pe, tile.weights_per_filter)
        utilization = (lanes_used * multipliers_used) / self.config.macs_per_cycle
        return TilingCandidate(
            tile=tile, output_tile_rows=tile_out_h, output_tile_cols=tile_out_w,
            weight_traffic_bytes=float(weight_bytes),
            activation_traffic_bytes=float(activation_bytes),
            partial_sum_traffic_bytes=float(partial_sum_bytes),
            pe_utilization=float(utilization),
        )

    def candidates_for_linear(self, layer: Linear) -> Iterable[TilingCandidate]:
        """Enumerate tilings of a fully-connected layer."""
        weight_capacity = self.config.weight_memory_bytes / self.bytes_per_weight
        for tile_channels in self._channel_splits(layer.in_features):
            tile = TileShape(channels=tile_channels, rows=1, cols=1)
            resident = tile_channels * min(self.config.parallel_filters, layer.out_features)
            if resident > weight_capacity:
                continue
            channel_passes = int(np.ceil(layer.in_features / tile_channels))
            weight_bytes = layer.weight_count * self.bytes_per_weight
            activation_bytes = (layer.in_features
                                * int(np.ceil(layer.out_features / self.config.parallel_filters))
                                * self.bytes_per_activation)
            partial_bytes = (layer.out_features * (channel_passes - 1) * 2
                             * self.bytes_per_activation if channel_passes > 1 else 0.0)
            lanes_used = min(self.config.parallel_filters, layer.out_features)
            multipliers_used = min(self.config.multipliers_per_pe, tile_channels)
            yield TilingCandidate(
                tile=tile, output_tile_rows=1, output_tile_cols=1,
                weight_traffic_bytes=float(weight_bytes),
                activation_traffic_bytes=float(activation_bytes),
                partial_sum_traffic_bytes=float(partial_bytes),
                pe_utilization=float(lanes_used * multipliers_used / self.config.macs_per_cycle),
            )

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def optimize_layer(self, layer: Layer,
                       input_shape: Optional[Tuple[int, int, int]] = None) -> TilingSolution:
        """Pick the minimum-traffic tiling for one layer."""
        if isinstance(layer, Conv2d):
            if input_shape is None:
                raise ValueError("input_shape is required for convolution layers")
            candidates = tuple(self.candidates_for_conv(layer, input_shape))
        elif isinstance(layer, Linear):
            candidates = tuple(self.candidates_for_linear(layer))
        else:
            raise TypeError(f"cannot tile layer of type {type(layer).__name__}")
        if not candidates:
            raise ValueError(
                f"no feasible tiling for layer '{layer.name}' on accelerator "
                f"'{self.config.name}'")
        best = min(candidates,
                   key=lambda c: (c.total_dram_traffic_bytes, -c.pe_utilization))
        return TilingSolution(layer_name=layer.name, best=best, candidates=candidates)

    def optimize_network(self, network) -> List[TilingSolution]:
        """Optimise every weight-carrying layer of a network in order."""
        solutions = []
        shape = network.input_shape
        for layer in network.layers:
            if isinstance(layer, Conv2d):
                solutions.append(self.optimize_layer(layer, shape))
            elif isinstance(layer, Linear):
                solutions.append(self.optimize_layer(layer))
            shape = layer.output_shape(shape)
        return solutions

    def total_dram_traffic(self, network) -> float:
        """Total off-chip traffic (bytes) of one inference under the best tilings."""
        return float(sum(solution.best.total_dram_traffic_bytes
                         for solution in self.optimize_network(network)))
