"""TPU-like Neural Processing Unit (Table I, right column).

The paper validates DNN-Life on a second accelerator: a TPU-like NPU whose
weight storage is an on-chip *weight FIFO* that is four tiles deep, one tile
holding the weights of the full 256 x 256 MAC array.  The FIFO is modelled as
a circular buffer: consecutive weight tiles are written to consecutive FIFO
slots, wrapping around, so every physical cell only ever sees the tiles whose
index is congruent to its slot modulo the FIFO depth.  The small custom MNIST
network of the paper occupies fewer tiles than one full rotation, which is
what makes the classic inversion scheme fail on it (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.accelerator.config import AcceleratorConfig, tpu_like_config
from repro.accelerator.scheduler import WeightStreamScheduler
from repro.memory.energy import MemoryEnergyModel
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SramArray
from repro.nn.network import Network
from repro.quantization.formats import DataFormat, get_format


@dataclass
class TpuLikeNpu:
    """TPU-like NPU with a four-tile circular weight FIFO."""

    config: AcceleratorConfig = field(default_factory=tpu_like_config)

    @property
    def parallel_filters(self) -> int:
        """``f``: filters (MAC-array columns) loaded in parallel — 256."""
        return self.config.parallel_filters

    @property
    def fifo_depth_tiles(self) -> int:
        """Depth of the circular weight FIFO in tiles (4 in the paper)."""
        return self.config.weight_fifo_depth_tiles

    def weight_memory_geometry(self, data_format: Union[str, DataFormat]) -> MemoryGeometry:
        """Geometry of the whole weight FIFO (all tiles)."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return self.config.weight_memory_geometry(fmt.word_bits)

    def weight_memory(self, data_format: Union[str, DataFormat]) -> SramArray:
        """A fresh 6T-SRAM array covering the whole FIFO."""
        return SramArray(self.weight_memory_geometry(data_format))

    def weight_memory_energy_model(self, data_format: Union[str, DataFormat]) -> MemoryEnergyModel:
        """Access-energy model of the weight FIFO."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return MemoryEnergyModel(capacity_bytes=self.config.weight_memory_bytes,
                                 word_bits=fmt.word_bits)

    def weights_per_tile(self, data_format: Union[str, DataFormat]) -> int:
        """Number of weight words one FIFO tile holds (256 x 256 for int8)."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return self.config.weights_per_tile(fmt.word_bits)

    def build_scheduler(self, network: Network,
                        data_format: Union[str, DataFormat]) -> WeightStreamScheduler:
        """Weight-stream scheduler writing tiles round-robin into the FIFO."""
        fmt = get_format(data_format) if isinstance(data_format, str) else data_format
        return WeightStreamScheduler(
            network=network,
            data_format=fmt,
            geometry=self.weight_memory_geometry(fmt),
            parallel_filters=self.parallel_filters,
            fifo_depth_tiles=self.fifo_depth_tiles,
        )

    def describe(self) -> dict:
        """Machine-readable description (Table I row)."""
        return self.config.describe()
