"""DNN-Life: aging analysis and mitigation for on-chip weight memories.

Reproduction of *"DNN-Life: An Energy-Efficient Aging Mitigation Framework for
Improving the Lifetime of On-Chip Weight Memories in Deep Neural Network
Hardware Architectures"* (Hanif & Shafique, DATE 2021).

Quick start
-----------
>>> from repro import DnnLife
>>> from repro.nn import build_model, attach_synthetic_weights
>>> network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
>>> framework = DnnLife(network, data_format="int8_symmetric", num_inferences=10)
>>> result = framework.simulate("dnn_life")
>>> round(float(result.snm_degradation().mean()), 1)  # doctest: +SKIP
10.9

The main subpackages are:

* :mod:`repro.core` — the DNN-Life mitigation scheme, policies and simulators;
* :mod:`repro.nn` — DNN architectures and trained-like weights;
* :mod:`repro.quantization` — data representations of the weights;
* :mod:`repro.accelerator` — accelerator configurations and the Fig. 5 dataflow;
* :mod:`repro.memory` — the 6T-SRAM weight-memory model;
* :mod:`repro.aging` — NBTI/SNM aging models and the paper's probabilistic model;
* :mod:`repro.hwsynth` — hardware cost models of the mitigation circuits;
* :mod:`repro.analysis` — bit-distribution and aging statistics;
* :mod:`repro.experiments` — drivers regenerating every table and figure;
* :mod:`repro.scenario` — multi-phase lifetime scenarios (model swaps, idle
  retention, thermal corners) composed from the simulators;
* :mod:`repro.orchestration` — experiment registry, result cache and
  parallel sweep runner behind ``dnn-life run/sweep/list``.
"""

from repro.accelerator.scheduler import CachedWeightStream, PackedBitTensor
from repro.core.framework import DnnLife, PolicyComparison
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    MitigationPolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
    default_policy_suite,
    make_policy,
)
from repro.core.simulation import AgingResult, AgingSimulator, ExplicitAgingSimulator
from repro.scenario import (
    ExplicitScenarioSimulator,
    LifetimeScenario,
    Phase,
    ScenarioAgingSimulator,
    ScenarioResult,
)

__version__ = "1.0.0"

__all__ = [
    "ExplicitScenarioSimulator",
    "LifetimeScenario",
    "Phase",
    "ScenarioAgingSimulator",
    "ScenarioResult",
    "CachedWeightStream",
    "PackedBitTensor",
    "DnnLife",
    "PolicyComparison",
    "BarrelShifterPolicy",
    "DnnLifePolicy",
    "MitigationPolicy",
    "NoMitigationPolicy",
    "PeriodicInversionPolicy",
    "default_policy_suite",
    "make_policy",
    "AgingResult",
    "AgingSimulator",
    "ExplicitAgingSimulator",
    "__version__",
]
