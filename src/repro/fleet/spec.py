"""Fleet population specs: per-device distributions with seeded sampling.

A :class:`FleetSpec` declares the *population* a fleet simulation draws its
devices from — which lifetime scenarios the fleet runs (a weighted mix of
phase-spec strings), which DVFS corners devices ship at (a weighted set of
``(voltage, frequency)`` operating points applied through
:meth:`~repro.scenario.phases.LifetimeScenario.with_default_operating_point`),
how usage intensity and the thermal environment vary device-to-device, and
how many distinct policy-seed groups the population spans.  Sampling is
fully deterministic from ``seed`` (a PCG64 stream from a
``np.random.SeedSequence``), so the same spec produces the same device draws
in every process — the property the cross-process determinism tests pin.

The CLI addresses the two categorical distributions through compact spec
strings:

* **scenario mix** — ``[WEIGHT*]SPEC`` entries joined by ``|`` (phase specs
  contain commas, so the mix needs its own separator)::

      0.7*lenet5:int8:dnn_life:10,idle:5@45C|0.3*custom_mnist:int8:none:10

* **corner mix** — ``[WEIGHT*]V:F`` entries joined by commas, reusing the
  phase mini-language's operating-point grammar::

      0.6*0.9V:1GHz,0.4*0.8V:0.6GHz

Weights are optional: a mix with no weights is uniform, a mix with all
weights must sum to 1 (to a small tolerance; they are renormalised exactly
afterwards).  Mixing weighted and unweighted entries is rejected — like all
schema errors here, as a single-line ``ValueError`` the CLI turns into an
exit-2 usage error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    DEFAULT_REFERENCE_TEMPERATURE_C,
    DEFAULT_REFERENCE_VOLTAGE_V,
)
from repro.scenario.operating_point import parse_point_suffix
from repro.scenario.phases import LifetimeScenario
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_temperature_celsius,
)

__all__ = [
    "FleetSpec",
    "FleetSample",
    "parse_mix_spec",
    "parse_corner_spec",
    "parse_weighted_entries",
    "format_mix_spec",
    "format_corner_spec",
]

#: Tolerance on user-supplied mix weights summing to 1 (weights are
#: renormalised exactly after passing this check).
WEIGHT_SUM_TOLERANCE = 1e-6

#: Largest thermal offset a device can sample (degrees C, either side); the
#: normal draw is clipped here so a wide ``thermal_sigma_c`` cannot push a
#: device to a physically silly corner.
MAX_THERMAL_OFFSET_C = 40.0


def parse_weighted_entries(text: str, separator: str,
                           what: str) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
    """Split ``[WEIGHT*]ENTRY`` items and resolve their weights.

    Entries either all carry a ``WEIGHT*`` prefix (weights must sum to 1) or
    none do (uniform); a mixture is rejected.  Returns the bare entries and
    the exactly-normalised weights.  Shared grammar of the fleet mixes here
    and the workload-generator model mixes
    (:func:`repro.workloads.parse_model_mix`).
    """
    items = [item.strip() for item in text.split(separator) if item.strip()]
    if not items:
        raise ValueError(f"{what} is empty")
    entries: List[str] = []
    weights: List[float] = []
    weighted = 0
    for item in items:
        head, star, rest = item.partition("*")
        weight = None
        if star and ":" not in head:  # a bare V:F corner never splits here
            try:
                weight = float(head)
            except ValueError:
                raise ValueError(f"{what}: invalid weight '{head}' in "
                                 f"'{item}' (expected e.g. '0.5*{rest}')") from None
            item = rest.strip()
            if not item:
                raise ValueError(f"{what}: weight '{head}*' has no entry")
            if not weight > 0:  # also rejects NaN
                raise ValueError(f"{what}: weight must be > 0, got {weight}")
            weighted += 1
        entries.append(item)
        weights.append(1.0 if weight is None else weight)
    if 0 < weighted < len(items):
        raise ValueError(f"{what}: either every entry carries a 'WEIGHT*' "
                         f"prefix or none does ({weighted} of {len(items)} do)")
    total = sum(weights)
    if weighted and abs(total - 1.0) > WEIGHT_SUM_TOLERANCE:
        raise ValueError(f"{what}: weights must sum to 1, got {total:g}")
    return tuple(entries), tuple(weight / total for weight in weights)


def parse_mix_spec(text: str) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
    """Parse a ``[WEIGHT*]SPEC|...`` scenario mix into (specs, weights).

    Each ``SPEC`` is validated through the phase mini-language
    (:meth:`LifetimeScenario.from_spec`), so an unknown network or an
    idle-first timeline inside the mix is caught here as a one-line error.
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError("scenario mix is empty; expected '[WEIGHT*]SPEC' "
                         "entries joined by '|'")
    specs, weights = parse_weighted_entries(text, "|", "scenario mix")
    for spec in specs:
        LifetimeScenario.from_spec(spec)
    return specs, weights


def parse_corner_spec(text: str) -> Tuple[Tuple[Tuple[float, float], ...],
                                          Tuple[float, ...]]:
    """Parse a ``[WEIGHT*]V:F,...`` corner mix into (corners, weights)."""
    if not isinstance(text, str) or not text.strip():
        raise ValueError("corner mix is empty; expected '[WEIGHT*]V:F' "
                         "entries joined by ','")
    entries, weights = parse_weighted_entries(text, ",", "corner mix")
    corners = tuple(parse_point_suffix(entry, entry) for entry in entries)
    return corners, weights


def format_mix_spec(scenarios: Sequence[str], weights: Sequence[float]) -> str:
    """The canonical mix string (inverse of :func:`parse_mix_spec`).

    Weights are written with ``repr`` — the shortest exact float spelling —
    so machine-generated mixes (e.g. 1/6 from six sampled histories)
    re-parse to the same values instead of drifting past the sum tolerance
    under 6-significant-digit truncation.
    """
    return "|".join(f"{weight!r}*{spec}"
                    for spec, weight in zip(scenarios, weights))


def format_corner_spec(corners: Sequence[Tuple[float, float]],
                       weights: Sequence[float]) -> str:
    """The canonical corner string (inverse of :func:`parse_corner_spec`)."""
    return ",".join(f"{weight!r}*{voltage:g}V:{frequency:g}GHz"
                    for (voltage, frequency), weight in zip(corners, weights))


def _validated_weights(weights: Sequence[float], count: int,
                       what: str) -> Tuple[float, ...]:
    """Check a weight vector (positive, summing to 1) without rescaling it.

    The values are kept exactly as given — rescaling here would make
    ``from_payload(to_payload(spec))`` drift from ``spec`` — and
    :meth:`FleetSpec.sample` normalises exactly at draw time instead.
    """
    weights = tuple(float(weight) for weight in weights)
    if len(weights) != count:
        raise ValueError(f"{what}: {len(weights)} weights for {count} entries")
    for weight in weights:
        if not weight > 0:
            raise ValueError(f"{what}: weights must be > 0, got {weight}")
    total = sum(weights)
    if abs(total - 1.0) > WEIGHT_SUM_TOLERANCE:
        raise ValueError(f"{what}: weights must sum to 1, got {total:g}")
    return weights


@dataclass(frozen=True)
class FleetSample:
    """One seeded draw of a fleet's per-device attributes.

    All arrays are device-indexed (length ``num_devices``):
    ``scenario_index``/``corner_index`` select from the spec's mixes,
    ``seed_group`` the device's policy-seed cohort, ``usage`` its
    usage-intensity multiplier (mean 1), ``temperature_offset_c`` its
    thermal-environment shift applied to every phase temperature.
    """

    scenario_index: np.ndarray
    corner_index: np.ndarray
    seed_group: np.ndarray
    usage: np.ndarray
    temperature_offset_c: np.ndarray

    @property
    def num_devices(self) -> int:
        """Number of sampled devices."""
        return int(self.scenario_index.size)

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation (exact float64 / int64 round-trip)."""
        return {
            "scenario_index": self.scenario_index.tolist(),
            "corner_index": self.corner_index.tolist(),
            "seed_group": self.seed_group.tolist(),
            "usage": self.usage.tolist(),
            "temperature_offset_c": self.temperature_offset_c.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FleetSample":
        """Rebuild a sample from :meth:`to_payload` output."""
        return cls(
            scenario_index=np.asarray(payload["scenario_index"], dtype=np.int64),
            corner_index=np.asarray(payload["corner_index"], dtype=np.int64),
            seed_group=np.asarray(payload["seed_group"], dtype=np.int64),
            usage=np.asarray(payload["usage"], dtype=np.float64),
            temperature_offset_c=np.asarray(payload["temperature_offset_c"],
                                            dtype=np.float64),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FleetSample):
            return NotImplemented
        return all(np.array_equal(getattr(self, name), getattr(other, name))
                   for name in ("scenario_index", "corner_index", "seed_group",
                                "usage", "temperature_offset_c"))


@dataclass(frozen=True)
class FleetSpec:
    """The population a fleet simulation draws its devices from.

    ``scenarios`` are phase-spec strings sampled with ``scenario_weights``;
    every scenario shares ``years`` (wall-clock span per timeline pass) and
    ``reference_temperature_c`` (the Arrhenius anchor).  ``corners`` are
    ``(voltage_v, frequency_ghz)`` default operating points sampled with
    ``corner_weights`` and applied through
    :meth:`LifetimeScenario.with_default_operating_point` — phases pinning
    their own ``@V:F`` keep it.  ``usage_sigma`` is the lognormal sigma of
    the mean-1 usage-intensity multiplier (0 = every device at nominal
    usage, exactly), ``thermal_sigma_c`` the normal sigma of the per-device
    temperature offset (0 = exactly no offset), and ``seed_groups`` the
    number of distinct policy-seed cohorts (group ``g`` runs at seed
    ``seed + g``, so group 0 is byte-identical to a plain scenario run at
    ``seed``).
    """

    num_devices: int
    scenarios: Tuple[str, ...]
    scenario_weights: Tuple[float, ...] = ()
    years: float = 7.0
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    corners: Tuple[Tuple[float, float], ...] = (
        (DEFAULT_REFERENCE_VOLTAGE_V, DEFAULT_REFERENCE_FREQUENCY_GHZ),)
    corner_weights: Tuple[float, ...] = ()
    usage_sigma: float = 0.0
    thermal_sigma_c: float = 0.0
    seed_groups: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.num_devices, "num_devices")
        check_positive_int(self.seed_groups, "seed_groups")
        check_positive(self.years, "years")
        check_temperature_celsius(self.reference_temperature_c,
                                  "reference_temperature_c")
        if not self.usage_sigma >= 0:
            raise ValueError(f"usage_sigma must be >= 0, got {self.usage_sigma}")
        if not self.thermal_sigma_c >= 0:
            raise ValueError(f"thermal_sigma_c must be >= 0, "
                             f"got {self.thermal_sigma_c}")
        object.__setattr__(self, "scenarios",
                           tuple(str(spec) for spec in self.scenarios))
        if not self.scenarios:
            raise ValueError("a fleet requires at least one scenario")
        uniform = (1.0 / len(self.scenarios),) * len(self.scenarios)
        object.__setattr__(
            self, "scenario_weights",
            _validated_weights(self.scenario_weights or uniform,
                                len(self.scenarios), "scenario mix"))
        object.__setattr__(self, "corners",
                           tuple((float(voltage), float(frequency))
                                 for voltage, frequency in self.corners))
        if not self.corners:
            raise ValueError("a fleet requires at least one operating corner")
        for voltage, frequency in self.corners:
            check_positive(voltage, "corner voltage")
            check_positive(frequency, "corner frequency")
        uniform = (1.0 / len(self.corners),) * len(self.corners)
        object.__setattr__(
            self, "corner_weights",
            _validated_weights(self.corner_weights or uniform,
                                len(self.corners), "corner mix"))
        # Parse every scenario now: a bad phase token is a construction-time
        # one-line error, not a failure deep inside a cohort run.
        self.build_scenarios()

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def build_scenarios(self) -> List[LifetimeScenario]:
        """Materialise the scenario mix (shared years / reference corner)."""
        return [LifetimeScenario.from_spec(
                    spec, years=self.years,
                    reference_temperature_c=self.reference_temperature_c)
                for spec in self.scenarios]

    def group_seed(self, group: int) -> int:
        """Policy/stream seed of one seed group (group 0 = the base seed)."""
        return int(self.seed) + int(group)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> FleetSample:
        """Draw the population's per-device attributes (deterministic in seed).

        The generator is a fresh PCG64 stream from
        ``np.random.SeedSequence(seed)``, and the draw order is fixed, so
        identical specs produce identical samples in any process.  Degenerate
        distributions are exact: ``usage_sigma=0`` yields exactly 1.0 for
        every device and ``thermal_sigma_c=0`` exactly 0.0 — no generator
        state is consumed for them, so adding a distribution later cannot
        silently shift the draws of the others.
        """
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        devices = self.num_devices
        scenario_p = np.asarray(self.scenario_weights, dtype=np.float64)
        corner_p = np.asarray(self.corner_weights, dtype=np.float64)
        scenario_index = rng.choice(len(self.scenarios), size=devices,
                                    p=scenario_p / scenario_p.sum())
        corner_index = rng.choice(len(self.corners), size=devices,
                                  p=corner_p / corner_p.sum())
        seed_group = rng.integers(0, self.seed_groups, size=devices)
        if self.usage_sigma > 0:
            # Lognormal with exact mean 1: exp(sigma*z - sigma^2/2).
            usage = np.exp(self.usage_sigma * rng.standard_normal(devices)
                           - 0.5 * self.usage_sigma ** 2)
        else:
            usage = np.ones(devices, dtype=np.float64)
        if self.thermal_sigma_c > 0:
            offset = np.clip(rng.normal(0.0, self.thermal_sigma_c, devices),
                             -MAX_THERMAL_OFFSET_C, MAX_THERMAL_OFFSET_C)
        else:
            offset = np.zeros(devices, dtype=np.float64)
        return FleetSample(scenario_index=scenario_index.astype(np.int64),
                           corner_index=corner_index.astype(np.int64),
                           seed_group=seed_group.astype(np.int64),
                           usage=usage,
                           temperature_offset_c=offset)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation; :meth:`from_payload` round-trips to
        an ``==``-equal spec."""
        return {
            "num_devices": self.num_devices,
            "scenarios": list(self.scenarios),
            "scenario_weights": list(self.scenario_weights),
            "years": self.years,
            "reference_temperature_c": self.reference_temperature_c,
            "corners": [list(corner) for corner in self.corners],
            "corner_weights": list(self.corner_weights),
            "usage_sigma": self.usage_sigma,
            "thermal_sigma_c": self.thermal_sigma_c,
            "seed_groups": self.seed_groups,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FleetSpec":
        """Rebuild a spec from :meth:`to_payload` output."""
        return cls(
            num_devices=int(payload["num_devices"]),
            scenarios=tuple(str(spec) for spec in payload["scenarios"]),
            scenario_weights=tuple(float(weight)
                                   for weight in payload["scenario_weights"]),
            years=float(payload["years"]),
            reference_temperature_c=float(payload["reference_temperature_c"]),
            corners=tuple((float(corner[0]), float(corner[1]))
                          for corner in payload["corners"]),
            corner_weights=tuple(float(weight)
                                 for weight in payload["corner_weights"]),
            usage_sigma=float(payload["usage_sigma"]),
            thermal_sigma_c=float(payload["thermal_sigma_c"]),
            seed_groups=int(payload["seed_groups"]),
            seed=int(payload["seed"]),
        )

    def describe(self) -> Dict[str, object]:
        """Human-oriented summary (serialised into experiment payloads)."""
        return {
            **self.to_payload(),
            "mix_spec": format_mix_spec(self.scenarios, self.scenario_weights),
            "corner_spec": format_corner_spec(self.corners, self.corner_weights),
        }
