"""Fleet-scale Monte Carlo lifetime modelling.

:mod:`repro.fleet.spec` declares *populations* — per-device distributions
over scenario mix, DVFS corner, usage intensity and thermal environment,
with seeded, serializable sampling; :mod:`repro.fleet.simulator` evaluates
them through cohort-shared scenario kernels, closed-form on the device
axis, and pins itself to the single-device engines through
:func:`~repro.fleet.simulator.failure_times_from_scenario_result`.
"""

from repro.fleet.spec import (
    FleetSample,
    FleetSpec,
    format_corner_spec,
    format_mix_spec,
    parse_corner_spec,
    parse_mix_spec,
    parse_weighted_entries,
)
from repro.fleet.simulator import (
    DEFAULT_QUANTILES,
    FleetResult,
    FleetSimulator,
    failure_times_from_scenario_result,
)

__all__ = [
    "DEFAULT_QUANTILES",
    "FleetResult",
    "FleetSample",
    "FleetSimulator",
    "FleetSpec",
    "failure_times_from_scenario_result",
    "format_corner_spec",
    "format_mix_spec",
    "parse_corner_spec",
    "parse_mix_spec",
    "parse_weighted_entries",
]
