"""Fleet-scale Monte Carlo lifetime engine (cohort-vectorized, closed-form).

The single-device stack answers "when does *this* memory die"; this module
answers the population question — "which fraction of a fleet of devices is
still alive at year ``t``, and what kills them first" — without simulating
any device individually.  The key observation is a factorisation of the
scenario engine's math:

* the per-cell **duty arrays** of a timeline depend only on (scenario,
  policy seed, leveler) — the cohort axis.  One packed
  :class:`~repro.scenario.driver.ScenarioAgingSimulator` run per cohort
  (evaluating each active phase with one ``counts_kernel`` call) produces
  the duty arrays, the exact last-written values entering each idle phase
  and the cohort's effective :class:`~repro.core.simulation.AgingResult`;
* everything a *device* adds — its default DVFS corner (via
  :meth:`~repro.scenario.phases.LifetimeScenario.with_default_operating_point`
  semantics), its thermal offset, its usage intensity — enters only through
  the scalar **stress weights** of :func:`repro.aging.stress.aggregate_stress`
  (phase years x Arrhenius/voltage time factor) and through the idle
  retention model's scalar corner arguments.

:class:`FleetSimulator` therefore groups the sampled devices of a
:class:`~repro.fleet.spec.FleetSpec` into ``(scenario, seed-group)``
cohorts sharing one base run and one process-wide packed stream cache, and
vectorizes the device axis of the stress aggregation: per-phase
``(device, phase)`` grids of temperatures, voltages and wall-clock shares
collapse through :meth:`~repro.aging.stress.ArrheniusTimeScaling.time_factor_array`
into per-device effective ``(duty, years)`` pairs, evaluated chunk-wise
against the SNM model.  Every reduction that feeds a comparison against the
single-device engine accumulates **sequentially over phases in the same
association order** as the scalar code, so a device sampled at the
reference corner with zero offsets reproduces the scenario engine's numbers
bit for bit — the property the equivalence test battery pins.

Failure-time composition (shared with the per-device reference path through
:func:`failure_times_from_scenario_result`):

* **SNM wear-out** — the scenario-mix lifetime of
  :meth:`repro.aging.lifetime.LifetimeEstimator.memory_lifetime_years_phases`
  (most-aged cell reaches the degradation threshold, wall-clock accelerated
  by ``effective_years / wall_years``), divided by the device's usage
  intensity;
* **idle retention** — each recorded idle phase contributes its expected
  bit-flip count at the device's corner; flips are treated as a Poisson
  process over timeline passes, so the expected time to the first flip is
  ``wall_years / (flips_per_pass * usage)`` (infinite when no cell is at
  risk, e.g. at the nominal idle supply).

A device fails at the earlier of the two; the earlier mechanism is its
failure-mode attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aging.lifetime import LifetimeEstimator
from repro.aging.nbti import BOLTZMANN_EV
from repro.aging.snm import (
    REFERENCE_LIFETIME_YEARS,
    CalibratedSnmModel,
    SnmDegradationModel,
    default_snm_model,
)
from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    ArrheniusTimeScaling,
    PhaseStress,
    scaling_for_model,
)
from repro.fleet.spec import FleetSample, FleetSpec
from repro.scenario.driver import (
    ScenarioAgingSimulator,
    ScenarioResult,
    StreamFactory,
    _factory_seed,
    scenario_stream_factory,
)
from repro.scenario.operating_point import RetentionModel
from repro.scenario.phases import LifetimeScenario, Phase
from repro.utils.validation import check_positive, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.leveling.remap import WearLeveler

__all__ = [
    "FleetResult",
    "FleetSimulator",
    "failure_times_from_scenario_result",
]

#: Quantile levels reported by default (p1 ... p99 of the failure times).
DEFAULT_QUANTILES = (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


class _RecordingScenarioSimulator(ScenarioAgingSimulator):
    """The packed scenario driver, recording idle-phase retention inputs.

    The base engine reduces each idle phase to a summary report; the fleet
    needs the raw inputs (the exact last-written cell values and the phase's
    position in the stress timeline) to re-evaluate retention at every
    *device's* corner.  The override snapshots them and then delegates, so
    the cohort result itself stays byte-identical to a plain scenario run.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: ``(position_in_phase_stress, held_copy)`` per reported idle phase.
        self.recorded_idles: List[Tuple[int, np.ndarray]] = []

    def _retention_report(self, phase: Phase, idle_years: float,
                          stress_so_far: List[PhaseStress],
                          label: str) -> Optional[Dict[str, object]]:
        held = self._held
        if held is not None and np.any(np.isfinite(held)):
            self.recorded_idles.append((len(stress_so_far) - 1, held.copy()))
        return super()._retention_report(phase, idle_years, stress_so_far, label)


def failure_times_from_scenario_result(
        result: ScenarioResult, usage: float = 1.0,
        max_degradation_percent: float = 15.0,
        reference_years: float = REFERENCE_LIFETIME_YEARS) -> Dict[str, object]:
    """Failure-time composition of one device from its scenario result.

    This is the single-device reference path of the fleet engine — the
    equivalence tests and the bench's per-device loop both run a plain
    :class:`~repro.scenario.driver.ScenarioAgingSimulator` per device and
    compose failure times through this function, so "fleet == N independent
    scenario runs" is a statement about one shared formula.
    """
    check_positive(usage, "usage")
    estimator = LifetimeEstimator(snm_model=result.effective.snm_model,
                                  max_degradation_percent=max_degradation_percent,
                                  reference_years=reference_years)
    snm_years = estimator.memory_lifetime_years_phases(
        result.phase_stress, scaling=result.scaling) / usage
    flips = 0.0
    for entry in (result.phase_retention or []):
        if entry is not None:
            flips = flips + float(entry["expected_bit_flips"])
    retention_years = (result.wall_years / (flips * usage) if flips > 0
                       else float("inf"))
    failure_years = min(snm_years, retention_years)
    return {
        "snm_years": float(snm_years),
        "retention_years": float(retention_years),
        "failure_years": float(failure_years),
        "mode": "retention" if retention_years < snm_years else "snm",
    }


def _finite_to_payload(values: np.ndarray) -> List[Optional[float]]:
    """JSON-safe float list: non-finite entries (never-failing devices) -> None."""
    return [float(value) if np.isfinite(value) else None for value in values]


def _finite_from_payload(values: Sequence[Optional[float]]) -> np.ndarray:
    return np.asarray([np.inf if value is None else float(value)
                       for value in values], dtype=np.float64)


@dataclass
class FleetResult:
    """Population outcome of one fleet simulation.

    Device-indexed arrays (aligned with ``sample``): ``snm_years`` /
    ``retention_years`` / ``failure_years`` are wall-clock years until each
    failure mechanism (``inf`` = never), ``modes`` the per-device
    attribution (``"snm"`` or ``"retention"``).  ``cohorts`` carries one
    entry per ``(scenario, seed-group)`` cohort including the base run's
    full effective :class:`~repro.core.simulation.AgingResult` payload —
    the byte-level anchor of the single-device equivalence tests.
    """

    spec: FleetSpec
    sample: FleetSample
    cohorts: List[Dict[str, object]]
    snm_years: np.ndarray
    retention_years: np.ndarray
    failure_years: np.ndarray
    modes: np.ndarray
    scaling: ArrheniusTimeScaling
    max_degradation_percent: float
    reference_years: float

    @property
    def num_devices(self) -> int:
        """Number of simulated devices."""
        return int(self.failure_years.size)

    # ------------------------------------------------------------------ #
    # Population statistics
    # ------------------------------------------------------------------ #
    def failure_quantiles(self, quantiles: Sequence[float] = DEFAULT_QUANTILES
                          ) -> Dict[str, float]:
        """Failure-time quantiles (years); permutation-invariant, monotone in q."""
        values = np.quantile(self.failure_years, np.asarray(quantiles))
        return {f"p{100 * q:g}": float(value)
                for q, value in zip(quantiles, values)}

    def survival_curve(self, max_years: Optional[float] = None,
                       points: int = 33) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, surviving_fraction)`` of the population.

        ``surviving_fraction[i]`` is the fraction of devices whose failure
        time strictly exceeds ``times[i]``.  The grid spans ``[0,
        max_years]`` (default: the latest finite failure, or the spec's
        wall-clock years when no device fails).
        """
        check_positive_int(points, "points")
        if max_years is None:
            finite = self.failure_years[np.isfinite(self.failure_years)]
            max_years = float(finite.max()) if finite.size else self.spec.years
        times = np.linspace(0.0, float(max_years), points)
        surviving = (self.failure_years[None, :] > times[:, None]).mean(axis=1)
        return times, surviving

    def mode_summary(self) -> Dict[str, int]:
        """Device counts per failure-mode attribution."""
        labels, counts = np.unique(self.modes, return_counts=True)
        return {str(label): int(count) for label, count in zip(labels, counts)}

    def summary(self) -> Dict[str, object]:
        """Headline population metrics."""
        times, surviving = self.survival_curve()
        return {
            "num_devices": self.num_devices,
            "num_cohorts": len(self.cohorts),
            "quantiles_years": self.failure_quantiles(),
            "modes": self.mode_summary(),
            "median_snm_years": float(np.median(self.snm_years)),
            "fraction_retention_limited": float(
                np.mean(self.retention_years < self.snm_years)),
            "survival_times_years": times.tolist(),
            "survival_fraction": surviving.tolist(),
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation (``inf`` failure times become ``null``)."""
        return {
            "spec": self.spec.to_payload(),
            "sample": self.sample.to_payload(),
            "cohorts": [dict(entry) for entry in self.cohorts],
            "snm_years": _finite_to_payload(self.snm_years),
            "retention_years": _finite_to_payload(self.retention_years),
            "failure_years": _finite_to_payload(self.failure_years),
            "modes": [str(mode) for mode in self.modes],
            "scaling": self.scaling.describe(),
            "max_degradation_percent": self.max_degradation_percent,
            "reference_years": self.reference_years,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FleetResult":
        """Rebuild a result from :meth:`to_payload` output."""
        return cls(
            spec=FleetSpec.from_payload(payload["spec"]),
            sample=FleetSample.from_payload(payload["sample"]),
            cohorts=[dict(entry) for entry in payload["cohorts"]],
            snm_years=_finite_from_payload(payload["snm_years"]),
            retention_years=_finite_from_payload(payload["retention_years"]),
            failure_years=_finite_from_payload(payload["failure_years"]),
            modes=np.asarray([str(mode) for mode in payload["modes"]]),
            scaling=ArrheniusTimeScaling(**dict(payload["scaling"])),
            max_degradation_percent=float(payload["max_degradation_percent"]),
            reference_years=float(payload["reference_years"]),
        )


class FleetSimulator:
    """Evaluates a :class:`FleetSpec` population through cohort-shared kernels.

    Devices agreeing on ``(scenario, seed group)`` form a cohort: one packed
    scenario run (kernel evaluations, leveler walk, last-written-value
    tracking) serves all of them, and the per-device physics — DVFS corner,
    thermal offset, usage intensity — is applied analytically on top (see
    the module docstring for the factorisation).  All cohorts share one
    ``stream_factory``, so distinct cohorts of the same workload ride the
    process-wide stream cache, and sweep jobs with stream affinity reuse it
    across fleet points.
    """

    def __init__(self, spec: FleetSpec,
                 stream_factory: Optional[StreamFactory] = None,
                 snm_model: Optional[SnmDegradationModel] = None,
                 leveler: Optional["WearLeveler"] = None,
                 scaling: Optional[ArrheniusTimeScaling] = None,
                 retention_model: Optional[RetentionModel] = None,
                 max_degradation_percent: float = 15.0,
                 reference_years: float = REFERENCE_LIFETIME_YEARS,
                 device_chunk: int = 64):
        self.spec = spec
        self.snm_model = snm_model or default_snm_model()
        self.leveler = leveler
        self.retention_model = retention_model or RetentionModel()
        self.scaling = scaling or self._default_scaling()
        self.stream_factory = (stream_factory or
                               scenario_stream_factory(seed=_factory_seed(spec.seed)))
        self.max_degradation_percent = check_positive(
            float(max_degradation_percent), "max_degradation_percent")
        self.reference_years = check_positive(float(reference_years),
                                              "reference_years")
        self.device_chunk = check_positive_int(device_chunk, "device_chunk")
        self.scenarios = spec.build_scenarios()

    def _default_scaling(self) -> ArrheniusTimeScaling:
        # Mirrors _ScenarioEngineBase._default_scaling so a cohort run inside
        # the fleet uses the exact scaling a standalone scenario run would.
        base = scaling_for_model(self.snm_model)
        if base.reference_temperature_c != self.spec.reference_temperature_c:
            base = ArrheniusTimeScaling(
                activation_energy_ev=base.activation_energy_ev,
                time_exponent=base.time_exponent,
                reference_temperature_c=self.spec.reference_temperature_c)
        return base

    # ------------------------------------------------------------------ #
    # Single-device reference view (used by the equivalence tests / bench)
    # ------------------------------------------------------------------ #
    def device_scenario(self, sample: FleetSample, device: int) -> LifetimeScenario:
        """The exact scenario one sampled device runs, as a standalone object.

        Applies the device's default corner through
        :meth:`LifetimeScenario.with_default_operating_point` (phases with
        explicit ``@V:F`` points keep them) and shifts every phase
        temperature by the device's thermal offset — the timeline a plain
        :class:`ScenarioAgingSimulator` must be given to reproduce this
        device individually.
        """
        scenario = self.scenarios[int(sample.scenario_index[device])]
        voltage, frequency = self.spec.corners[int(sample.corner_index[device])]
        scenario = scenario.with_default_operating_point(voltage, frequency)
        offset = float(sample.temperature_offset_c[device])
        if offset != 0.0:
            scenario = LifetimeScenario(
                phases=tuple(_dc_replace(phase,
                                         temperature_c=phase.temperature_c + offset)
                             for phase in scenario.phases),
                years=scenario.years,
                reference_temperature_c=scenario.reference_temperature_c,
                name=scenario.name)
        return scenario

    def device_seed(self, sample: FleetSample, device: int) -> int:
        """The policy/stream seed of one sampled device (its seed group's)."""
        return self.spec.group_seed(int(sample.seed_group[device]))

    # ------------------------------------------------------------------ #
    # Population evaluation
    # ------------------------------------------------------------------ #
    def run(self) -> FleetResult:
        """Sample the population and evaluate every cohort; returns the result."""
        sample = self.spec.sample()
        devices = sample.num_devices
        snm_years = np.full(devices, np.nan)
        retention_years = np.full(devices, np.nan)

        cohort_keys = sorted(set(zip(sample.scenario_index.tolist(),
                                     sample.seed_group.tolist())))
        cohorts: List[Dict[str, object]] = []
        for scenario_index, group in cohort_keys:
            scenario = self.scenarios[scenario_index]
            seed = self.spec.group_seed(group)
            engine = _RecordingScenarioSimulator(
                scenario, stream_factory=self.stream_factory, seed=seed,
                snm_model=self.snm_model, leveler=self.leveler,
                scaling=self.scaling, retention_model=self.retention_model)
            result = engine.run()
            members = np.nonzero((sample.scenario_index == scenario_index)
                                 & (sample.seed_group == group))[0]
            cohort_snm, cohort_retention = self._evaluate_cohort(
                scenario, result, engine.recorded_idles, sample, members)
            snm_years[members] = cohort_snm
            retention_years[members] = cohort_retention
            cohorts.append({
                "scenario_index": int(scenario_index),
                "seed_group": int(group),
                "seed": int(seed),
                "num_devices": int(members.size),
                "spec": self.spec.scenarios[scenario_index],
                "effective": result.effective.to_payload(),
            })

        failure_years = np.minimum(snm_years, retention_years)
        modes = np.where(retention_years < snm_years, "retention", "snm")
        return FleetResult(
            spec=self.spec,
            sample=sample,
            cohorts=cohorts,
            snm_years=snm_years,
            retention_years=retention_years,
            failure_years=failure_years,
            modes=modes,
            scaling=self.scaling,
            max_degradation_percent=self.max_degradation_percent,
            reference_years=self.reference_years,
        )

    # ------------------------------------------------------------------ #
    # The vectorized device axis of one cohort
    # ------------------------------------------------------------------ #
    def _evaluate_cohort(self, scenario: LifetimeScenario,
                         result: ScenarioResult,
                         recorded_idles: List[Tuple[int, np.ndarray]],
                         sample: FleetSample,
                         members: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-device (snm_years, retention_years) of one cohort's members.

        Builds the ``(device, phase)`` corner grid, folds it through the
        vectorized time scaling into per-device stress weights, and blends
        the cohort's shared duty arrays into per-device effective stress —
        accumulating over phases in exactly
        :func:`repro.aging.stress.aggregate_stress`'s association order, so
        a reference-corner device reproduces the scalar path bit for bit.
        """
        spec = self.spec
        phases = scenario.phases
        num_phases = len(phases)
        count = members.size
        corner = np.asarray(spec.corners, dtype=np.float64)[sample.corner_index[members]]
        offset = sample.temperature_offset_c[members]
        usage = sample.usage[members]

        # (device, phase) grids: explicit @V:F points override the corner.
        voltage = np.empty((count, num_phases))
        frequency = np.empty((count, num_phases))
        temperature = np.empty((count, num_phases))
        durations = np.empty(num_phases)
        for index, phase in enumerate(phases):
            point = phase.operating_point
            if phase.has_explicit_point:
                voltage[:, index] = point.voltage_v
                frequency[:, index] = point.frequency_ghz
            else:
                voltage[:, index] = corner[:, 0]
                frequency[:, index] = corner[:, 1]
            temperature[:, index] = phase.temperature_c + offset
            durations[index] = phase.duration

        # Wall-clock shares (LifetimeScenario.phase_years, device axis):
        # duration / relative-frequency, normalised over the timeline.
        relative = np.where(frequency == DEFAULT_REFERENCE_FREQUENCY_GHZ, 1.0,
                            frequency / DEFAULT_REFERENCE_FREQUENCY_GHZ)
        shares = durations[None, :] / relative
        total = shares[:, 0].copy()
        for index in range(1, num_phases):
            total = total + shares[:, index]
        years = spec.years * (shares / total[:, None])

        # Stress weights (aggregate_stress, device axis): phase years times
        # the Arrhenius/voltage time factor at the device's corner.
        factors = self.scaling.time_factor_array(temperature, voltage)
        weights = years * factors
        effective_years = weights[:, 0].copy()
        wall_years = years[:, 0].copy()
        for index in range(1, num_phases):
            effective_years = effective_years + weights[:, index]
            wall_years = wall_years + years[:, index]
        acceleration = effective_years / wall_years

        duties = [stress.duty.reshape(-1) for stress in result.phase_stress]
        time_exponent = float(getattr(self.snm_model, "time_exponent", 1.0 / 6.0))

        snm_years = np.empty(count)
        for start in range(0, count, self.device_chunk):
            chunk = slice(start, min(start + self.device_chunk, count))
            blend = self._blend(duties, weights[chunk], effective_years[chunk],
                                num_phases)
            # The memory's lifetime is its most-aged cell's; degradation is
            # monotone in the stress fraction max(d, 1-d), so only each
            # device's max-stress cell needs the power law (clip commutes
            # with max, and the retained cell evaluates through the exact
            # per-cell ops of LifetimeEstimator.cell_lifetimes_years).
            stress_max = np.maximum(blend, 1.0 - blend).max(axis=1)
            worst = self.snm_model.degradation_percent(stress_max,
                                                       self.reference_years)
            with np.errstate(divide="ignore"):
                ratio = self.max_degradation_percent / worst
                base = self.reference_years * np.power(ratio, 1.0 / time_exponent)
            snm_years[chunk] = base / acceleration[chunk] / usage[chunk]

        retention_years = self._retention_years(
            scenario, result, recorded_idles, sample, members,
            voltage, temperature, years, weights, usage)
        return snm_years, retention_years

    def _blend(self, duties: List[np.ndarray], weights: np.ndarray,
               effective_years: np.ndarray, num_phases: int) -> np.ndarray:
        """Per-device effective duty over the first ``num_phases`` phases.

        The sequential accumulation mirrors ``aggregate_stress`` exactly:
        ``eff = (w0/W) * d0`` then ``eff = eff + (wi/W) * di``.
        """
        coefficient = weights[:, 0] / effective_years
        blend = coefficient[:, None] * duties[0][None, :]
        for index in range(1, num_phases):
            coefficient = weights[:, index] / effective_years
            blend = blend + coefficient[:, None] * duties[index][None, :]
        return blend

    def _retention_years(self, scenario: LifetimeScenario,
                         result: ScenarioResult,
                         recorded_idles: List[Tuple[int, np.ndarray]],
                         sample: FleetSample, members: np.ndarray,
                         voltage: np.ndarray, temperature: np.ndarray,
                         years: np.ndarray, weights: np.ndarray,
                         usage: np.ndarray) -> np.ndarray:
        """Expected wall-clock years to the first retention flip, per device.

        Each recorded idle phase is re-evaluated at every device's corner:
        the stress accumulated through the end of the idle window (the
        prefix of the weight matrix) and the phase's per-device idle span
        feed :meth:`_batched_flips` — a device-batched transliteration of
        :meth:`RetentionModel.failure_probability` — so a reference-corner
        device reproduces the scenario's ``expected_bit_flips`` bit for bit.
        """
        count = members.size
        flips = np.zeros(count)
        if recorded_idles:
            duties = [stress.duty for stress in result.phase_stress]
            for position, held in recorded_idles:
                prefix = position + 1
                stressed = weights[:, 0].copy()
                for index in range(1, prefix):
                    stressed = stressed + weights[:, index]
                flat = [duty.reshape(-1) for duty in duties[:prefix]]
                for start in range(0, count, self.device_chunk):
                    chunk = slice(start, min(start + self.device_chunk, count))
                    blend = self._blend(flat, weights[chunk], stressed[chunk],
                                        prefix)
                    flips[chunk] = flips[chunk] + self._batched_flips(
                        held.reshape(-1), blend, stressed[chunk],
                        voltage[chunk, position], temperature[chunk, position],
                        years[chunk, position])
        with np.errstate(divide="ignore"):
            return np.where(flips > 0, result.wall_years / (flips * usage), np.inf)

    def _batched_flips(self, held: np.ndarray, blend: np.ndarray,
                       stressed: np.ndarray, voltage: np.ndarray,
                       temperature: np.ndarray,
                       idle_years: np.ndarray) -> np.ndarray:
        """Expected bit flips of one idle phase for a chunk of devices.

        A device-batched transliteration of
        :meth:`RetentionModel.failure_probability` followed by the scenario
        report's ``nansum``: the per-cell elementwise operations run in the
        same sequence over ``(device, cell)`` grids (IEEE elementwise ops
        broadcast bit-identically), the per-device scalars (one-sided
        degradation anchors, thermal factor) are computed through the exact
        scalar calls, and cells whose hold-probability is *exactly* 0 on a
        side are skipped — their term is an exact IEEE ``0 * finite = 0``,
        the additive identity — which for deterministic policies (held
        values 0/1) halves the transcendental work.  Cells never written
        (NaN held value) contribute NaN in the scalar path, which ``nansum``
        ignores; here they are simply excluded from both sides.
        """
        model = self.retention_model
        count = blend.shape[0]
        if isinstance(self.snm_model, CalibratedSnmModel):
            # Vectorized one-sided anchors: worst_case_percent(y) is exactly
            # worst_percent * (y/ref)**te (np.power(1.0, gamma) == 1.0), and
            # best_case_percent shares the time scale — same elementwise ops
            # as the scalar methods, without their per-call array plumbing.
            snm = self.snm_model
            time_scale = np.power(stressed / snm.reference_years,
                                  snm.time_exponent)
            worst = snm.worst_percent * time_scale
            best = (snm.worst_percent * np.power(0.5, snm.gamma)) * time_scale
        else:
            worst = np.empty(count)
            best = np.empty(count)
            for index in range(count):
                worst[index] = self.snm_model.worst_case_percent(
                    float(stressed[index]))
                best[index] = self.snm_model.best_case_percent(
                    float(stressed[index]))
        # RetentionModel._thermal_factor, device axis.
        kelvin = temperature + 273.15
        reference_kelvin = model.reference_temperature_c + 273.15
        thermal = np.exp((model.activation_energy_ev / BOLTZMANN_EV)
                         * (1.0 / reference_kelvin - 1.0 / kelvin))
        with np.errstate(divide="ignore", invalid="ignore"):
            gamma = np.where(worst > best, np.log2(worst / best), 1.0)
        margin_offset = voltage - model.retention_voltage_v
        finite = np.isfinite(held)
        probability = np.zeros_like(blend)
        for value_probability, side_stress in ((held, blend),
                                               ((1.0 - held), 1.0 - blend)):
            columns = np.nonzero(finite & (value_probability != 0.0))[0]
            if not columns.size:
                continue
            stress = side_stress[:, columns]
            with np.errstate(invalid="ignore"):
                degradation = worst[:, None] * np.power(
                    np.clip(stress, 0.0, 1.0), gamma[:, None])
            margin = margin_offset[:, None] - (model.margin_loss_v_per_percent
                                               * degradation)
            with np.errstate(over="ignore", invalid="ignore"):
                rate = model.attempts_per_year * np.exp(-margin
                                                        / model.voltage_scale_v)
                rate = rate * thermal[:, None]
                probability[:, columns] += value_probability[None, columns] * (
                    1.0 - np.exp(-rate * idle_years[:, None]))
        # The scalar path clips the summed sides and nansums the full cell
        # array; zeros standing in for the NaN (never-written) cells sum
        # identically to the NaNs nansum would discard.
        return np.nansum(np.clip(probability, 0.0, 1.0), axis=1)
