"""Stochastic-workload experiment — generated traffic through the stack.

Where ``dnn-life scenario`` and ``dnn-life fleet`` evaluate hand-written
phase specs, ``dnn-life workload`` *samples* them: a seeded
:class:`~repro.workloads.traffic.TrafficModel` (Poisson/bursty rates,
diurnal day/night modulation, a weighted model mix, OTA model swaps, idle
gaps) is compiled into either one lifetime timeline (``--mode scenario``)
or a weighted fleet population from N sampled usage histories
(``--mode fleet``), then handed to the existing engines::

    dnn-life workload --mode scenario --horizon-days 14 \
        --models "0.7*lenet5:int8:dnn_life|0.3*custom_mnist:int8:inversion" \
        --ota-days 3 --burst-probability 0.3

    dnn-life workload --histories 1000 --devices 1000 --seed 7

    dnn-life sweep workload --grid rate_per_day=16,64,256 \
        --grid diurnal_amplitude=0,0.6

Everything downstream is deterministic in ``(config, seed)``: the same
invocation produces byte-identical compiled specs — and hence payloads —
in any process.  Sweep jobs agreeing on the geometry/seed affinity keys
share the per-process stream cache, so same-network histories across a
grid pay each packed stream build once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.common import check_non_negative, check_swap_fraction
from repro.experiments.fleet import run_fleet_point, render_fleet_point
from repro.experiments.scenario import run_scenario_point, render_scenario_point
from repro.fleet.spec import format_mix_spec
from repro.leveling import LEVELER_CHOICES
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.utils.tables import AsciiTable
from repro.utils.validation import check_temperature_celsius
from repro.workloads import (
    TrafficModel,
    compile_fleet_spec,
    compile_timeline,
    parse_model_mix,
    parse_optional_corner,
    sample_timeline,
)

#: Default mix: a deployment alternating between a retrained classifier and
#: a smaller fallback model, both 8-bit (one shared word width).
DEFAULT_MODELS = "0.6*lenet5:int8:dnn_life|0.4*custom_mnist:int8:inversion"

#: Default night corner: DVFS throttling while the device idles cool.
DEFAULT_NIGHT_CORNER = "0.7V:0.2GHz"


def _check_models(models: str) -> None:
    """Schema validator: parse the mix and check the shared word width."""
    mix_models, mix_weights = parse_model_mix(models)
    TrafficModel(models=mix_models, model_weights=mix_weights)


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"must be within [0, 1], got {value}")


def _check_amplitude(value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"must be within [0, 1), got {value}")


def _check_burst_factor(value: float) -> None:
    if not value >= 1.0:
        raise ValueError(f"must be >= 1, got {value}")


def _check_corner(value: str) -> None:
    """Schema validator: empty (reference corner) or a ``V:F`` point."""
    parse_optional_corner(value, value)


def _traffic_model(models: str, rate_per_day: float, burst_probability: float,
                   burst_factor: float, diurnal_amplitude: float,
                   day_temperature_c: float, night_temperature_c: float,
                   day_corner: str, night_corner: str, ota_days: float,
                   idle_threshold: int, horizon_days: int,
                   seed: int) -> TrafficModel:
    """Build the validated traffic model from the experiment parameters."""
    mix_models, mix_weights = parse_model_mix(models)
    return TrafficModel(
        models=mix_models,
        model_weights=mix_weights,
        rate_per_day=rate_per_day,
        burst_probability=burst_probability,
        burst_factor=burst_factor,
        diurnal_amplitude=diurnal_amplitude,
        day_temperature_c=day_temperature_c,
        night_temperature_c=night_temperature_c,
        day_corner=parse_optional_corner(day_corner, "day corner"),
        night_corner=parse_optional_corner(night_corner, "night corner"),
        ota_interval_days=ota_days,
        idle_threshold=idle_threshold,
        horizon_days=horizon_days,
        seed=seed,
    )


def run_workload(mode: str = "fleet",
                 histories: int = 16,
                 devices: int = 0,
                 models: str = DEFAULT_MODELS,
                 rate_per_day: float = 48.0,
                 burst_probability: float = 0.25,
                 burst_factor: float = 3.0,
                 diurnal_amplitude: float = 0.6,
                 day_temperature_c: float = 85.0,
                 night_temperature_c: float = 45.0,
                 day_corner: str = "",
                 night_corner: str = DEFAULT_NIGHT_CORNER,
                 ota_days: float = 2.0,
                 idle_threshold: int = 2,
                 horizon_days: int = 7,
                 usage_sigma: float = 0.3,
                 thermal_sigma_c: float = 5.0,
                 seed_groups: int = 1,
                 weight_memory_kb: int = 8,
                 fifo_depth_tiles: int = 1,
                 leveling: str = "none",
                 leveling_period: int = 2,
                 rotation_step: int = 1,
                 swap_fraction: float = 0.5,
                 years: float = 7.0,
                 reference_temperature_c: float = 85.0,
                 max_degradation_percent: float = 15.0,
                 quick: bool = True,
                 seed: int = 0) -> Dict[str, object]:
    """Sample a traffic model, compile it, and run the compiled spec.

    Parameters
    ----------
    mode:
        ``scenario`` runs history 0 as one multi-phase timeline;
        ``fleet`` batch-compiles ``histories`` sampled histories into a
        weighted scenario mix and runs the fleet Monte Carlo on it.
    histories / devices:
        Number of sampled usage histories (fleet mode) and the population
        size; ``devices`` of 0 defaults to one device per history.
    models:
        Weighted model mix ``[WEIGHT*]NETWORK:FORMAT:POLICY|...`` — the
        triples the OTA schedule swaps between (one shared word width).
    rate_per_day / burst_probability / burst_factor:
        Mean inference epochs per day and the bursty modulation of the
        Poisson process (a burst slot's rate is multiplied by the factor).
    diurnal_amplitude / day_temperature_c / night_temperature_c:
        Day/night rate skew and the two half-day thermal corners.
    day_corner / night_corner:
        Optional DVFS points (``V:F``) pinned on day/night phases; empty
        means the reference corner.
    ota_days:
        Mean days between OTA model swaps (0 disables updates).
    idle_threshold:
        Slots sampling at most this many epochs become idle (retention)
        phases.
    horizon_days:
        Days of usage sampled per history (2 slots per day).
    usage_sigma / thermal_sigma_c / seed_groups:
        Fleet-mode device spread and policy-seed cohorts, as in ``fleet``.
    weight_memory_kb ... max_degradation_percent:
        Geometry, wear leveling and lifetime knobs shared with the
        ``scenario``/``fleet`` experiments.
    quick / seed:
        Scale cap and the traffic model's sampling seed (also the engines'
        policy/stream seed).
    """
    model = _traffic_model(models, rate_per_day, burst_probability,
                           burst_factor, diurnal_amplitude, day_temperature_c,
                           night_temperature_c, day_corner, night_corner,
                           ota_days, idle_threshold, horizon_days, seed)
    slots = sample_timeline(model, history=0)
    timeline = compile_timeline(model, slots, years=years,
                                reference_temperature_c=reference_temperature_c)
    engine_params = dict(weight_memory_kb=weight_memory_kb,
                         fifo_depth_tiles=fifo_depth_tiles,
                         leveling=leveling, leveling_period=leveling_period,
                         rotation_step=rotation_step,
                         swap_fraction=swap_fraction, years=years,
                         reference_temperature_c=reference_temperature_c,
                         max_degradation_percent=max_degradation_percent,
                         quick=quick, seed=seed)
    if mode == "scenario":
        compiled: Dict[str, object] = {
            "mode": mode,
            "histories": 1,
            "unique_scenarios": 1,
            "spec": timeline.to_spec(),
        }
        result = run_scenario_point(spec=timeline.to_spec(), **engine_params)
    else:
        fleet_spec = compile_fleet_spec(
            model, histories=histories, devices=devices, years=years,
            reference_temperature_c=reference_temperature_c,
            usage_sigma=usage_sigma, thermal_sigma_c=thermal_sigma_c,
            seed_groups=seed_groups)
        mix = format_mix_spec(fleet_spec.scenarios,
                              fleet_spec.scenario_weights)
        compiled = {
            "mode": mode,
            "histories": int(histories),
            "unique_scenarios": len(fleet_spec.scenarios),
            "mix_spec": mix,
        }
        result = run_fleet_point(devices=fleet_spec.num_devices, mix=mix,
                                 corners="0.9V:1GHz",
                                 usage_sigma=usage_sigma,
                                 thermal_sigma_c=thermal_sigma_c,
                                 seed_groups=seed_groups, **engine_params)
    return {
        "workload": {
            "mode": mode,
            "histories": int(histories),
            "devices": int(devices),
            "models": models,
            "rate_per_day": float(rate_per_day),
            "burst_probability": float(burst_probability),
            "burst_factor": float(burst_factor),
            "diurnal_amplitude": float(diurnal_amplitude),
            "ota_days": float(ota_days),
            "idle_threshold": int(idle_threshold),
            "horizon_days": int(horizon_days),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "traffic_model": model.to_payload(),
        "timeline": {
            "history": 0,
            "spec": timeline.to_spec(),
            "num_phases": len(timeline.phases),
            "total_epochs": timeline.total_epochs,
            "active_epochs": timeline.active_epochs,
            "slots": [slot.describe() for slot in slots],
        },
        "compiled": compiled,
        "result": result,
    }


def _render_timeline(payload: Dict[str, object]) -> str:
    """The sampled-history table: one row per day/night slot."""
    timeline = payload["timeline"]
    table = AsciiTable(
        ["day", "half", "model", "epochs", "kind", "temp", "corner"],
        title=(f"=== sampled timeline (history 0): "
               f"{timeline['num_phases']} phases, "
               f"{timeline['active_epochs']} active epochs ==="),
    )
    for slot in timeline["slots"]:
        corner = slot["corner"]
        corner_text = ("ref" if corner is None
                       else f"{corner[0]:g}V:{corner[1]:g}GHz")
        epochs_text = (f"{slot['epochs']}!" if slot["burst"]
                       else str(slot["epochs"]))
        table.add_row([
            slot["day"], slot["half"],
            f"{slot['network']}/{slot['policy']}",
            epochs_text, slot["kind"],
            f"{slot['temperature_c']:g}C", corner_text,
        ])
    return table.render()


def render_workload(payload: Dict[str, object],
                    params: Dict[str, object]) -> str:
    """Timeline table + compiled-mix summary + the delegated engine report."""
    compiled = payload["compiled"]
    if compiled["mode"] == "scenario":
        summary = (f"compiled 1 history into a {payload['timeline']['num_phases']}"
                   f"-phase scenario")
        delegate = render_scenario_point(payload["result"], params)
    else:
        summary = (f"compiled {compiled['histories']} sampled histories into "
                   f"{compiled['unique_scenarios']} unique scenario(s) "
                   f"(weighted fleet mix)")
        delegate = render_fleet_point(payload["result"], params)
    return "\n\n".join([_render_timeline(payload), summary, delegate])


register_experiment(
    name="workload",
    runner=run_workload,
    description="Stochastic workload generator: seeded traffic models "
                "(Poisson/bursty rates, diurnal corners, model mixes, OTA "
                "swaps, idle gaps) compiled into scenario timelines and "
                "fleet mixes, then simulated end-to-end",
    artifact="generated-traffic axis (extension)",
    params=(
        ParamSpec("mode", str, "fleet", choices=("fleet", "scenario"),
                  help="run a fleet from N histories, or history 0 as one "
                       "scenario"),
        ParamSpec("histories", int, 16, positive=True,
                  help="sampled usage histories batch-compiled into the "
                       "fleet mix"),
        ParamSpec("devices", int, 0, validator=check_non_negative,
                  help="fleet population size (0 = one device per history)"),
        ParamSpec("models", str, DEFAULT_MODELS, validator=_check_models,
                  help="weighted model mix [WEIGHT*]NETWORK:FORMAT:POLICY|... "
                       "(one shared word width)"),
        ParamSpec("rate_per_day", float, 48.0, positive=True,
                  flag="--rate", help="mean inference epochs per day"),
        ParamSpec("burst_probability", float, 0.25,
                  validator=_check_probability,
                  help="probability a half-day slot is a burst"),
        ParamSpec("burst_factor", float, 3.0, validator=_check_burst_factor,
                  help="rate multiplier of burst slots (>= 1)"),
        ParamSpec("diurnal_amplitude", float, 0.6, validator=_check_amplitude,
                  help="day/night rate skew in [0, 1)"),
        ParamSpec("day_temperature_c", float, 85.0, flag="--day-temp",
                  validator=check_temperature_celsius,
                  help="daytime phase temperature (C)"),
        ParamSpec("night_temperature_c", float, 45.0, flag="--night-temp",
                  validator=check_temperature_celsius,
                  help="nighttime phase temperature (C)"),
        ParamSpec("day_corner", str, "", validator=_check_corner,
                  help="DVFS point V:F pinned on day phases (empty = "
                       "reference corner)"),
        ParamSpec("night_corner", str, DEFAULT_NIGHT_CORNER,
                  validator=_check_corner,
                  help="DVFS point V:F pinned on night phases (empty = "
                       "reference corner)"),
        ParamSpec("ota_days", float, 2.0, validator=check_non_negative,
                  help="mean days between OTA model swaps (0 = never)"),
        ParamSpec("idle_threshold", int, 2, validator=check_non_negative,
                  help="slots sampling <= this many epochs become idle "
                       "phases"),
        ParamSpec("horizon_days", int, 7, positive=True,
                  help="days of usage sampled per history (2 slots/day)"),
        ParamSpec("usage_sigma", float, 0.3, flag="--usage-sigma",
                  validator=check_non_negative,
                  help="lognormal sigma of the mean-1 usage intensity "
                       "(fleet mode)"),
        ParamSpec("thermal_sigma_c", float, 5.0, flag="--thermal-sigma",
                  validator=check_non_negative,
                  help="normal sigma (C) of the per-device thermal offset "
                       "(fleet mode)"),
        ParamSpec("seed_groups", int, 1, positive=True,
                  help="distinct policy/stream seeds across the population"),
        ParamSpec("weight_memory_kb", int, 8, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 1, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("leveling", str, "none", choices=LEVELER_CHOICES,
                  help="wear-leveling policy"),
        ParamSpec("leveling_period", int, 2, positive=True,
                  help="epochs per leveling step"),
        ParamSpec("rotation_step", int, 1, validator=check_non_negative,
                  help="rows rotated per inference"),
        ParamSpec("swap_fraction", float, 0.5, validator=check_swap_fraction,
                  help="fraction of rows the wear-guided swap exchanges"),
        ParamSpec("years", float, 7.0, positive=True,
                  help="wall-clock span the sampled horizon represents"),
        ParamSpec("reference_temperature_c", float, 85.0,
                  flag="--reference-temp",
                  validator=check_temperature_celsius,
                  help="Arrhenius reference corner in Celsius"),
        ParamSpec("max_degradation_percent", float, 15.0,
                  flag="--max-degradation", positive=True,
                  help="SNM-loss threshold of the failure model"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0,
                  help="traffic-model sampling seed (also the policy/stream "
                       "seed)"),
    ),
    full_config={"histories": 1000, "devices": 1000},
    renderer=render_workload,
    tags=("sweep", "aging", "scenario", "fleet", "workload"),
    # Jobs agreeing on these parameters share the per-process stream cache:
    # same-network histories across the grid reuse each packed stream.
    affinity=("weight_memory_kb", "fifo_depth_tiles", "quick", "seed"),
)
