"""Fig. 1 — motivation data.

(a) model size versus top-1/top-5 ImageNet accuracy for AlexNet, GoogLeNet,
    VGG-16 and ResNet-152 (sizes are computed from our architecture
    definitions at 32-bit weights; accuracies are the published values);
(b) access-energy comparison of a 32-bit access to a 32 KB on-chip SRAM
    versus off-chip DRAM.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.energy import dram_access_energy, sram_access_energy
from repro.nn.models import PUBLISHED_ACCURACY, build_model
from repro.orchestration.registry import register_experiment
from repro.utils.tables import AsciiTable
from repro.utils.units import KB

#: The networks shown in Fig. 1a, in plot order.
FIG1_NETWORKS = ("alexnet", "googlenet", "vgg16", "resnet152")


def run_fig1_model_comparison() -> List[Dict[str, float]]:
    """Fig. 1a: one row per network with size and published accuracy.

    Returns
    -------
    list of dict
        One row per network: ``network``, ``parameters_millions``,
        ``size_mb_float32``, ``size_mb_int8``, ``top1_accuracy_percent``,
        ``top5_accuracy_percent``.
    """
    rows = []
    for name in FIG1_NETWORKS:
        network = build_model(name)
        top1, top5 = PUBLISHED_ACCURACY[name]
        rows.append({
            "network": name,
            "parameters_millions": network.parameter_count / 1e6,
            "size_mb_float32": network.model_size_mb(4.0),
            "size_mb_int8": network.model_size_mb(1.0),
            "top1_accuracy_percent": top1,
            "top5_accuracy_percent": top5,
        })
    return rows


def run_fig1_access_energy() -> Dict[str, float]:
    """Fig. 1b: 32-bit access energy of a 32 KB SRAM versus DRAM (picojoules)."""
    sram = sram_access_energy(32 * KB, access_bits=32)
    dram = dram_access_energy(access_bits=32)
    return {
        "sram_32kb_32bit_access_pj": sram * 1e12,
        "dram_32bit_access_pj": dram * 1e12,
        "dram_to_sram_ratio": dram / sram,
    }


def run_fig1() -> Dict[str, object]:
    """Both Fig. 1 panels in one payload.

    Returns
    -------
    dict
        ``{"fig1a": [row, ...], "fig1b": {energy metrics}}`` — the rows of
        :func:`run_fig1_model_comparison` and the access-energy metrics of
        :func:`run_fig1_access_energy`.
    """
    return {"fig1a": run_fig1_model_comparison(), "fig1b": run_fig1_access_energy()}


def render_fig1() -> str:
    """ASCII rendering of both panels of Fig. 1."""
    table = AsciiTable(
        ["network", "params [M]", "size [MB]", "top-1 [%]", "top-5 [%]"],
        title="Fig. 1a — DNN size and accuracy comparison", precision=1,
    )
    for row in run_fig1_model_comparison():
        table.add_row([row["network"], row["parameters_millions"], row["size_mb_float32"],
                       row["top1_accuracy_percent"], row["top5_accuracy_percent"]])
    energy = run_fig1_access_energy()
    energy_table = AsciiTable(
        ["memory", "32-bit access energy [pJ]"],
        title="Fig. 1b — access energy comparison", precision=1,
    )
    energy_table.add_row(["32 KB on-chip SRAM", energy["sram_32kb_32bit_access_pj"]])
    energy_table.add_row(["off-chip DRAM", energy["dram_32bit_access_pj"]])
    return table.render() + "\n\n" + energy_table.render()


def render_fig1_payload(payload, params) -> str:
    """Render a (possibly cache-served) Fig. 1 payload without recomputing."""
    table = AsciiTable(
        ["network", "params [M]", "size [MB]", "top-1 [%]", "top-5 [%]"],
        title="Fig. 1a — DNN size and accuracy comparison", precision=1,
    )
    for row in payload["fig1a"]:
        table.add_row([row["network"], row["parameters_millions"], row["size_mb_float32"],
                       row["top1_accuracy_percent"], row["top5_accuracy_percent"]])
    energy = payload["fig1b"]
    energy_table = AsciiTable(
        ["memory", "32-bit access energy [pJ]"],
        title="Fig. 1b — access energy comparison", precision=1,
    )
    energy_table.add_row(["32 KB on-chip SRAM", energy["sram_32kb_32bit_access_pj"]])
    energy_table.add_row(["off-chip DRAM", energy["dram_32bit_access_pj"]])
    return table.render() + "\n\n" + energy_table.render()


register_experiment(
    name="fig1",
    runner=run_fig1,
    description="DNN model sizes/accuracies and SRAM-vs-DRAM access energy (motivation)",
    artifact="Fig. 1",
    renderer=render_fig1_payload,
    tags=("figure", "motivation"),
)
