"""Shared utilities of the experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.network import Network
from repro.nn.weights import attach_synthetic_weights
from repro.utils.validation import check_positive_int

#: Environment variable that switches the benchmarks to full-scale runs.
FULL_EXPERIMENTS_ENV = "REPRO_FULL_EXPERIMENTS"


def full_experiments_requested() -> bool:
    """Whether the user asked for full-scale (paper-sized) experiment runs."""
    return os.environ.get(FULL_EXPERIMENTS_ENV, "0") not in ("", "0", "false", "False")


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by the aging experiments.

    Attributes
    ----------
    num_inferences:
        Number of inference epochs the duty-cycle is estimated over
        (100 in the paper).
    max_weights_per_layer:
        Per-layer cap on the number of weights streamed (``None`` = full
        network).  Reduced runs keep the dataflow and memory size unchanged,
        so the qualitative behaviour of every policy is preserved; only the
        number of blocks per inference shrinks.
    """

    num_inferences: int = 100
    max_weights_per_layer: Optional[int] = None

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A configuration that finishes in seconds on a laptop."""
        return cls(num_inferences=20, max_weights_per_layer=1_000_000)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The configuration used in the paper (full networks, 100 inferences)."""
        return cls(num_inferences=100, max_weights_per_layer=None)

    @classmethod
    def from_quick_flag(cls, quick: bool) -> "ExperimentScale":
        """Pick the scale from a driver's ``quick`` argument."""
        if quick and not full_experiments_requested():
            return cls.quick()
        return cls.paper()


def reduce_network(network: Network, max_weights_per_layer: Optional[int],
                   seed: int = 0) -> Network:
    """Return a copy of ``network`` whose layers are capped in weight count.

    The reduction trims output filters/neurons from every over-budget layer,
    which keeps the per-filter structure (and therefore the Fig. 5 dataflow)
    intact.  The resulting network is only used for weight-memory streaming;
    it is not meant to be executed.
    """
    if not network.has_weights_attached:
        attach_synthetic_weights(network, seed=seed)
    if max_weights_per_layer is None:
        return network
    check_positive_int(max_weights_per_layer, "max_weights_per_layer")
    reduced_layers = []
    for layer in network.weight_layers():
        weights = np.asarray(layer.weights)
        if layer.weight_count <= max_weights_per_layer:
            clone = _clone_weight_layer(layer, weights)
        else:
            per_filter = int(np.prod(layer.weight_shape[1:]))
            keep_filters = max(max_weights_per_layer // per_filter, 1)
            clone = _clone_weight_layer(layer, weights[:keep_filters], keep_filters)
        reduced_layers.append(clone)
    reduced = Network(name=f"{network.name}_reduced", layers=reduced_layers,
                      input_shape=network.input_shape, dataset=network.dataset)
    return reduced


def _clone_weight_layer(layer, weights: np.ndarray, keep_filters: Optional[int] = None):
    """Clone a Conv2d/Linear layer, optionally trimming its output dimension."""
    if isinstance(layer, Conv2d):
        out_channels = keep_filters if keep_filters is not None else layer.out_channels
        clone = Conv2d(name=layer.name, out_channels=out_channels,
                       in_channels=layer.in_channels, kernel_size=layer.kernel_size,
                       stride=layer.stride, padding=layer.padding, groups=layer.groups,
                       use_bias=layer.use_bias)
    elif isinstance(layer, Linear):
        out_features = keep_filters if keep_filters is not None else layer.out_features
        clone = Linear(name=layer.name, out_features=out_features,
                       in_features=layer.in_features, use_bias=layer.use_bias)
    else:
        raise TypeError(f"cannot reduce layer of type {type(layer).__name__}")
    clone.weights = np.ascontiguousarray(weights, dtype=np.float32)
    return clone


# --------------------------------------------------------------------------- #
# ParamSpec validators shared by the experiment schemas (single-argument
# wrappers over repro.utils.validation so the bounds live in one place;
# repro.utils.validation.check_temperature_celsius is usable directly)
# --------------------------------------------------------------------------- #
def check_non_negative(value: float) -> None:
    """Schema validator: zero or positive."""
    from repro.utils.validation import check_positive

    check_positive(value, "value", strict=False)


def check_swap_fraction(value: float) -> None:
    """Schema validator: the wear-swap exchange fraction, in (0, 0.5]."""
    if not 0.0 < value <= 0.5:
        raise ValueError(f"swap_fraction must lie in (0, 0.5], got {value}")
