"""Table I — hardware configurations and settings used in the evaluation."""

from __future__ import annotations

from typing import Dict, List

from repro.accelerator.config import TABLE_I_CONFIGS, TABLE_I_NETWORKS
from repro.orchestration.registry import register_experiment
from repro.utils.tables import AsciiTable


def run_table1_configurations() -> List[Dict[str, object]]:
    """One row per accelerator configuration of Table I.

    Returns
    -------
    list of dict
        Each row holds the configuration description (``name``,
        ``weight_memory_KB``, ``activation_memory_MB``, ``num_pes``,
        ``multipliers_per_pe``, ``parallel_filters_f``,
        ``weight_fifo_depth_tiles``) plus the ``networks`` evaluated on it.
    """
    rows = []
    for name, config in TABLE_I_CONFIGS.items():
        description = config.describe()
        description["networks"] = list(TABLE_I_NETWORKS[name])
        rows.append(description)
    return rows


def render_table1() -> str:
    """ASCII rendering of Table I."""
    table = AsciiTable(
        ["configuration", "weight mem [KB]", "activation mem [MB]", "PE array",
         "f (parallel filters)", "FIFO tiles", "networks"],
        title="Table I — hardware configurations and settings used in evaluation",
        precision=0,
    )
    for row in run_table1_configurations():
        pe_array = f"{row['num_pes']} PEs x {row['multipliers_per_pe']} mult"
        table.add_row([
            row["name"], row["weight_memory_KB"], row["activation_memory_MB"],
            pe_array, row["parallel_filters_f"], row["weight_fifo_depth_tiles"],
            "+".join(row["networks"]),
        ])
    return table.render()


def render_table1_payload(payload, params) -> str:
    """Render a (possibly cache-served) Table I payload without recomputing."""
    table = AsciiTable(
        ["configuration", "weight mem [KB]", "activation mem [MB]", "PE array",
         "f (parallel filters)", "FIFO tiles", "networks"],
        title="Table I — hardware configurations and settings used in evaluation",
        precision=0,
    )
    for row in payload:
        pe_array = f"{row['num_pes']} PEs x {row['multipliers_per_pe']} mult"
        table.add_row([
            row["name"], row["weight_memory_KB"], row["activation_memory_MB"],
            pe_array, row["parallel_filters_f"], row["weight_fifo_depth_tiles"],
            "+".join(row["networks"]),
        ])
    return table.render()


register_experiment(
    name="table1",
    runner=run_table1_configurations,
    description="Hardware configurations and settings used in the evaluation",
    artifact="Table I",
    renderer=render_table1_payload,
    tags=("table", "configuration"),
)
