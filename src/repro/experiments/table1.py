"""Table I — hardware configurations and settings used in the evaluation."""

from __future__ import annotations

from typing import Dict, List

from repro.accelerator.config import TABLE_I_CONFIGS, TABLE_I_NETWORKS
from repro.utils.tables import AsciiTable


def run_table1_configurations() -> List[Dict[str, object]]:
    """One row per accelerator configuration of Table I."""
    rows = []
    for name, config in TABLE_I_CONFIGS.items():
        description = config.describe()
        description["networks"] = list(TABLE_I_NETWORKS[name])
        rows.append(description)
    return rows


def render_table1() -> str:
    """ASCII rendering of Table I."""
    table = AsciiTable(
        ["configuration", "weight mem [KB]", "activation mem [MB]", "PE array",
         "f (parallel filters)", "FIFO tiles", "networks"],
        title="Table I — hardware configurations and settings used in evaluation",
        precision=0,
    )
    for row in run_table1_configurations():
        pe_array = f"{row['num_pes']} PEs x {row['multipliers_per_pe']} mult"
        table.add_row([
            row["name"], row["weight_memory_KB"], row["activation_memory_MB"],
            pe_array, row["parallel_filters_f"], row["weight_fifo_depth_tiles"],
            "+".join(row["networks"]),
        ])
    return table.render()
