"""Shared runner for the aging experiments (Figs. 9 and 11).

Besides the policy-evaluation helpers this module hosts the process-local
*weight-stream cache*: building a workload stream means re-quantizing the
network and (for the packed fast engine) bit-unpacking every block, which is
by far the most expensive part of an aging design point.  Sweep jobs that
share a (network, format, memory geometry, scale, seed) therefore reuse one
:class:`~repro.accelerator.scheduler.CachedWeightStream` — and its packed bit
tensor — instead of rebuilding it per job.  The cache lives per process, so
every worker of a :class:`~repro.orchestration.sweep.SweepRunner` pool warms
its own copy once and serves all subsequent jobs with stream affinity from
memory.

Behind the LRU sits the cross-process *stream store*
(:mod:`repro.streamstore`): on an LRU miss the packed tensor is
memory-mapped from disk when a previous process already built the same
stream, and cold builds are persisted for the next process.  The LRU and
the store are independent layers — ``DNN_LIFE_STREAM_CACHE=0`` disables
only the in-memory LRU, ``DNN_LIFE_STREAM_STORE=0`` only the on-disk
store; ``reuse=False`` bypasses both.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.accelerator.scheduler import CachedWeightStream
from repro.aging.snm import SnmDegradationModel, default_degradation_bins, default_snm_model
from repro.core.policies import MitigationPolicy
from repro.core.simulation import AgingSimulator
from repro.experiments.common import ExperimentScale, reduce_network
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.streamstore import (StoredWeightStream, StreamStore,
                               resolve_stream_store, stream_store_key)
from repro.utils.serialization import canonical_json
from repro.utils.tables import format_histogram

#: Environment variable bounding the number of cached streams per process.
STREAM_CACHE_SIZE_ENV = "DNN_LIFE_STREAM_CACHE"

#: Default number of (network, format, geometry, scale, seed) streams kept.
_DEFAULT_STREAM_CACHE_SIZE = 4

#: A workload stream as served by :func:`build_workload_stream`: freshly
#: built, or memory-mapped back from the on-disk stream store.
WorkloadStream = Union[CachedWeightStream, "StoredWeightStream"]

#: Process-local LRU of workload streams, keyed by the workload signature.
_STREAM_CACHE: "OrderedDict[str, WorkloadStream]" = OrderedDict()


def _stream_cache_size() -> int:
    """Configured stream-cache capacity (0 disables caching)."""
    override = os.environ.get(STREAM_CACHE_SIZE_ENV)
    if override is None or override == "":
        return _DEFAULT_STREAM_CACHE_SIZE
    return max(int(override), 0)


def clear_stream_cache() -> int:
    """Drop every cached stream; returns how many were held."""
    held = len(_STREAM_CACHE)
    _STREAM_CACHE.clear()
    return held


def _workload_identity(network_name: str, accelerator, data_format: str,
                       scale: ExperimentScale, seed: int) -> Dict[str, Any]:
    """The stream-defining parameters of one workload, as a plain mapping."""
    return {
        "network": network_name,
        "data_format": data_format,
        "accelerator_type": type(accelerator).__name__,
        "accelerator_config": asdict(accelerator.config),
        "max_weights_per_layer": scale.max_weights_per_layer,
        "seed": int(seed),
    }


def _workload_signature(network_name: str, accelerator, data_format: str,
                        scale: ExperimentScale, seed: int) -> str:
    """Canonical cache key of one workload stream."""
    return canonical_json(_workload_identity(
        network_name, accelerator, data_format, scale, seed))


def evaluate_policies_on_stream(stream, policies: Iterable[MitigationPolicy],
                                num_inferences: int, seed: int = 0,
                                snm_model: Optional[SnmDegradationModel] = None
                                ) -> Dict[str, Dict[str, object]]:
    """Evaluate each policy on a (cached) weight stream.

    Returns a mapping from policy display name to its histogram and summary.
    """
    snm_model = snm_model or default_snm_model()
    bins = default_degradation_bins(snm_model)
    results: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        simulator = AgingSimulator(stream, policy, num_inferences=num_inferences,
                                   seed=seed, snm_model=snm_model)
        result = simulator.run()
        percentages, edges, labels = result.histogram(bins)
        results[policy.display_name] = {
            "policy": policy.name,
            "policy_config": policy.describe(),
            "summary": result.summary(),
            "histogram_percent": np.asarray(percentages).tolist(),
            "histogram_bin_edges": np.asarray(edges).tolist(),
            "histogram_bin_labels": labels,
        }
    return results


def build_workload_stream(network_name: str, accelerator, data_format: str,
                          scale: ExperimentScale, seed: int = 0,
                          reuse: bool = True,
                          store: Union[str, StreamStore, None] = "auto"
                          ) -> WorkloadStream:
    """Build (or fetch) the cached weight stream for one workload.

    With ``reuse`` (the default) the stream is served from the process-local
    LRU when an identical workload was built before, so consecutive design
    points sharing a (network, format, geometry, scale, seed) — e.g. a policy
    sweep — quantize and bit-unpack the network exactly once per process.
    Set ``DNN_LIFE_STREAM_CACHE=0`` to disable, or a higher value to keep
    more workloads resident.

    On an LRU miss the cross-process stream store is consulted: an entry
    written by any earlier process (or an earlier sweep batch whose LRU was
    disabled) is memory-mapped instead of rebuilt, and a cold build is
    persisted for the next consumer.  ``store="auto"`` resolves
    ``DNN_LIFE_STREAM_STORE``; a :class:`StreamStore` pins one explicitly;
    ``None`` skips the store.  ``reuse=False`` bypasses both layers and
    always builds fresh (and never persists).
    """
    capacity = _stream_cache_size() if reuse else 0
    identity = _workload_identity(network_name, accelerator, data_format,
                                  scale, seed)
    key = canonical_json(identity)
    if capacity:
        cached = _STREAM_CACHE.get(key)
        if cached is not None:
            _STREAM_CACHE.move_to_end(key)
            return cached

    resolved_store: Optional[StreamStore] = None
    store_key: Optional[str] = None
    if reuse and store is not None:
        resolved_store = (resolve_stream_store(None) if store == "auto"
                          else store if isinstance(store, StreamStore)
                          else resolve_stream_store(store))
        if resolved_store is not None:
            store_key = stream_store_key("workload", identity)
            stored = resolved_store.load_stream(store_key)
            if stored is not None:
                if capacity:
                    _insert_cached(key, stored, capacity)
                return stored

    network = attach_synthetic_weights(build_model(network_name), seed=seed)
    network = reduce_network(network, scale.max_weights_per_layer, seed=seed)
    scheduler = accelerator.build_scheduler(network, data_format)
    stream = CachedWeightStream(scheduler, store=resolved_store,
                                store_key=store_key)
    if capacity:
        _insert_cached(key, stream, capacity)
    return stream


def _insert_cached(key: str, stream: WorkloadStream, capacity: int) -> None:
    """LRU insert with eviction down to ``capacity`` entries."""
    _STREAM_CACHE[key] = stream
    _STREAM_CACHE.move_to_end(key)
    while len(_STREAM_CACHE) > capacity:
        _STREAM_CACHE.popitem(last=False)


def render_policy_histograms(results: Dict[str, Dict[str, object]], title: str) -> str:
    """Render the Fig. 9 / Fig. 11 style histograms of one panel."""
    sections: List[str] = [title]
    for label, entry in results.items():
        sections.append(format_histogram(
            entry["histogram_bin_labels"], entry["histogram_percent"],
            title=f"-- {label} "
                  f"(mean SNM deg. {entry['summary']['mean_snm_degradation_percent']:.2f}%)",
        ))
    return "\n\n".join(sections)
