"""Shared runner for the aging experiments (Figs. 9 and 11)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.accelerator.scheduler import CachedWeightStream
from repro.aging.snm import SnmDegradationModel, default_degradation_bins, default_snm_model
from repro.core.policies import MitigationPolicy
from repro.core.simulation import AgingSimulator
from repro.experiments.common import ExperimentScale, reduce_network
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.utils.tables import format_histogram


def evaluate_policies_on_stream(stream, policies: Iterable[MitigationPolicy],
                                num_inferences: int, seed: int = 0,
                                snm_model: Optional[SnmDegradationModel] = None
                                ) -> Dict[str, Dict[str, object]]:
    """Evaluate each policy on a (cached) weight stream.

    Returns a mapping from policy display name to its histogram and summary.
    """
    snm_model = snm_model or default_snm_model()
    bins = default_degradation_bins(snm_model)
    results: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        simulator = AgingSimulator(stream, policy, num_inferences=num_inferences,
                                   seed=seed, snm_model=snm_model)
        result = simulator.run()
        percentages, edges, labels = result.histogram(bins)
        results[policy.display_name] = {
            "policy": policy.name,
            "policy_config": policy.describe(),
            "summary": result.summary(),
            "histogram_percent": np.asarray(percentages).tolist(),
            "histogram_bin_edges": np.asarray(edges).tolist(),
            "histogram_bin_labels": labels,
        }
    return results


def build_workload_stream(network_name: str, accelerator, data_format: str,
                          scale: ExperimentScale, seed: int = 0) -> CachedWeightStream:
    """Build the (possibly reduced) cached weight stream for one workload."""
    network = attach_synthetic_weights(build_model(network_name), seed=seed)
    network = reduce_network(network, scale.max_weights_per_layer, seed=seed)
    scheduler = accelerator.build_scheduler(network, data_format)
    return CachedWeightStream(scheduler)


def render_policy_histograms(results: Dict[str, Dict[str, object]], title: str) -> str:
    """Render the Fig. 9 / Fig. 11 style histograms of one panel."""
    sections: List[str] = [title]
    for label, entry in results.items():
        sections.append(format_histogram(
            entry["histogram_bin_labels"], entry["histogram_percent"],
            title=f"-- {label} "
                  f"(mean SNM deg. {entry['summary']['mean_snm_degradation_percent']:.2f}%)",
        ))
    return "\n\n".join(sections)
