"""Fig. 11 — SNM degradation of the TPU-like NPU's weight FIFO when running
AlexNet, VGG-16 and the custom MNIST network (all quantized to 8-bit with
symmetric range-linear quantization), under four mitigation configurations:
no mitigation, periodic inversion, barrel shifter and DNN-Life with bias
balancing (biased TRBG, 0.7)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.accelerator.tpu import TpuLikeNpu
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
)
from repro.experiments.aging_runner import (
    build_workload_stream,
    evaluate_policies_on_stream,
    render_policy_histograms,
)
from repro.experiments.common import ExperimentScale
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.quantization.formats import get_format

#: Networks evaluated on the TPU-like NPU in Fig. 11.
FIG11_NETWORKS = ("alexnet", "vgg16", "custom_mnist")
#: Data format used throughout Fig. 11.
FIG11_FORMAT = "int8_symmetric"


def fig11_policy_suite(word_bits: int, seed: int = 0):
    """The four policy configurations compared in Fig. 11."""
    return [
        NoMitigationPolicy(),
        PeriodicInversionPolicy(word_bits, granularity="write"),
        BarrelShifterPolicy(word_bits),
        DnnLifePolicy(word_bits, trbg_bias=0.7, bias_balancing=True,
                      words_per_enable=max(64 // word_bits, 1), seed=seed),
    ]


def run_fig11_tpu_networks(networks: Optional[Iterable[str]] = None,
                           quick: bool = True, seed: int = 0
                           ) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Run the full Fig. 11 grid: network -> policy -> histogram/summary.

    Parameters
    ----------
    networks:
        Networks streamed through the TPU-like NPU's weight FIFO
        (default: AlexNet, VGG-16 and the custom MNIST network).
    quick, seed:
        Experiment scale and weight/policy seed.

    Returns
    -------
    dict
        ``{network: {policy_label: {"policy", "policy_config", "summary",
        "histogram_percent", "histogram_bin_edges", "histogram_bin_labels"}}}``.
    """
    scale = ExperimentScale.from_quick_flag(quick)
    networks = list(networks) if networks is not None else list(FIG11_NETWORKS)
    accelerator = TpuLikeNpu()
    word_bits = get_format(FIG11_FORMAT).word_bits
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for network_name in networks:
        stream = build_workload_stream(network_name, accelerator, FIG11_FORMAT, scale, seed=seed)
        policies = fig11_policy_suite(word_bits, seed=seed)
        results[network_name] = evaluate_policies_on_stream(
            stream, policies, num_inferences=scale.num_inferences, seed=seed)
    return results


def render_fig11(quick: bool = True, seed: int = 0) -> str:
    """ASCII rendering of every Fig. 11 panel."""
    sections = []
    for network_name, per_policy in run_fig11_tpu_networks(quick=quick, seed=seed).items():
        sections.append(render_policy_histograms(
            per_policy,
            title=(f"=== Fig. 11 — TPU-like NPU, {network_name}, "
                   f"format: {FIG11_FORMAT} ===")))
    return "\n\n".join(sections)


def fig11_headline_claims(results: Dict[str, Dict[str, Dict[str, object]]]) -> Dict[str, object]:
    """The paper's Fig. 11 observations, quantified.

    The classic inversion scheme looks adequate for the large networks but
    collapses on the small custom MNIST network (whose weights occupy fewer
    FIFO tiles than one rotation), while DNN-Life with bias balancing achieves
    near-minimal degradation for every network.
    """
    claims: Dict[str, object] = {}
    for network_name, per_policy in results.items():
        means = {label: entry["summary"]["mean_snm_degradation_percent"]
                 for label, entry in per_policy.items()}
        dnn_life_label = [label for label in means if label.startswith("DNN-Life")][0]
        claims[network_name] = {
            "no_mitigation_mean": means["none"],
            "inversion_mean": means["inversion"],
            "barrel_shifter_mean": means["barrel shifter"],
            "dnn_life_mean": means[dnn_life_label],
            "dnn_life_is_best": means[dnn_life_label] <= min(means.values()) + 1e-9,
        }
    return claims


def render_fig11_payload(payload: Dict[str, Dict[str, Dict[str, object]]],
                         params: Dict[str, object]) -> str:
    """Render a (possibly cache-served) Fig. 11 payload without re-simulating."""
    sections = []
    for network_name, per_policy in payload.items():
        sections.append(render_policy_histograms(
            per_policy,
            title=(f"=== Fig. 11 — TPU-like NPU, {network_name}, "
                   f"format: {FIG11_FORMAT} ===")))
    return "\n\n".join(sections)


register_experiment(
    name="fig11",
    runner=run_fig11_tpu_networks,
    description="SNM degradation of the TPU-like NPU's weight FIFO, "
                "3 networks x 4 mitigation configurations",
    artifact="Fig. 11",
    params=(
        ParamSpec("quick", bool, True,
                  help="reduced configuration (capped weights, 20 inferences)"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    full_config={"quick": False},
    renderer=render_fig11_payload,
    tags=("figure", "aging"),
)
