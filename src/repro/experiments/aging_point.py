"""Single-point aging experiment — the canonical sweep target.

Every figure-level driver fixes most of the design space; this driver instead
evaluates *one* fully-parameterised point of it: a network, a quantization
format, a mitigation policy and a weight-memory geometry (capacity and FIFO
depth).  Combined with ``dnn-life sweep``, it turns the paper's evaluation
into an arbitrary grid, e.g.::

    dnn-life sweep aging \
        --grid network=custom_mnist,lenet5 \
        --grid data_format=int8_symmetric,float32 \
        --grid policy=none,dnn_life \
        --grid weight_memory_kb=64,512

which covers Fig. 9 (baseline geometry), Fig. 11 (FIFO geometry via
``fifo_depth_tiles``) and any memory scaling study in between.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.core.policies import POLICY_NAMES, make_policy
from repro.experiments.aging_runner import (
    build_workload_stream,
    evaluate_policies_on_stream,
    render_policy_histograms,
)
from repro.experiments.common import ExperimentScale
from repro.nn.models import MODEL_ZOO
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.quantization.formats import get_format
from repro.utils.units import KB

#: Policy names accepted by :func:`repro.core.policies.make_policy`.
POLICY_CHOICES = POLICY_NAMES


def run_aging_point(network: str = "custom_mnist",
                    data_format: str = "int8_symmetric",
                    policy: str = "dnn_life",
                    weight_memory_kb: int = 512,
                    fifo_depth_tiles: int = 1,
                    num_inferences: int = 20,
                    trbg_bias: float = 0.5,
                    quick: bool = True,
                    seed: int = 0) -> Dict[str, object]:
    """Aging of one (network, format, policy, memory geometry) design point.

    Parameters
    ----------
    network:
        Model-zoo network streamed through the weight memory.
    data_format:
        Quantization format of the weights (e.g. ``int8_symmetric``,
        ``float32``).
    policy:
        Mitigation policy name (see :data:`POLICY_CHOICES`).
    weight_memory_kb:
        Capacity of the on-chip weight memory in KB (512 for the paper's
        baseline accelerator, 256 for the TPU-like NPU).
    fifo_depth_tiles:
        Number of FIFO tiles the memory is organised in (1 = monolithic
        buffer as in Fig. 9; 4 = the TPU-like FIFO of Fig. 11).
    num_inferences:
        Inference epochs the duty-cycle is accounted over.
    trbg_bias:
        TRBG bias of the DNN-Life policy.  The other policies ignore it but
        it still participates in the cache key, so pin it (or leave it at
        the default) when sweeping non-DNN-Life policies to avoid redundant
        recomputation of identical points.
    quick:
        Cap the per-layer weight count as in the other quick configurations.
    seed:
        Seed for synthetic weights and the stochastic DNN-Life policy.

    Returns
    -------
    dict
        ``{"workload": {...design point...},
        "results": {policy_label: {"policy", "policy_config", "summary",
        "histogram_percent", "histogram_bin_edges", "histogram_bin_labels"}}}``.
    """
    scale = ExperimentScale.from_quick_flag(quick)
    config = replace(baseline_config(), name="sweep_point",
                     weight_memory_bytes=int(weight_memory_kb) * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    accelerator = BaselineAccelerator(config=config)
    stream = build_workload_stream(network, accelerator, data_format, scale, seed=seed)
    word_bits = get_format(data_format).word_bits
    policy_kwargs = {"trbg_bias": trbg_bias} if policy == "dnn_life" else {}
    resolved_policy = make_policy(policy, word_bits, seed=seed, **policy_kwargs)
    results = evaluate_policies_on_stream(
        stream, [resolved_policy], num_inferences=num_inferences, seed=seed)
    return {
        "workload": {
            "network": network,
            "data_format": data_format,
            "policy": policy,
            "weight_memory_kb": int(weight_memory_kb),
            "fifo_depth_tiles": int(fifo_depth_tiles),
            "num_inferences": int(num_inferences),
            "trbg_bias": float(trbg_bias),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "results": results,
    }


def render_aging_point(payload: Dict[str, object], params: Dict[str, object]) -> str:
    """ASCII rendering of one design point's histogram."""
    workload = payload["workload"]
    title = (f"=== aging — {workload['network']}, {workload['data_format']}, "
             f"{workload['weight_memory_kb']} KB x {workload['fifo_depth_tiles']} tiles, "
             f"policy: {workload['policy']} ===")
    return render_policy_histograms(payload["results"], title=title)


register_experiment(
    name="aging",
    runner=run_aging_point,
    description="One (network x format x policy x memory geometry) aging point; "
                "the canonical `dnn-life sweep` target",
    artifact="Fig. 9 / Fig. 11 design space",
    params=(
        ParamSpec("network", str, "custom_mnist", choices=tuple(sorted(MODEL_ZOO)),
                  help="workload network"),
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
        ParamSpec("policy", str, "dnn_life", choices=POLICY_CHOICES,
                  help="mitigation policy"),
        ParamSpec("weight_memory_kb", int, 512, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 1, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("num_inferences", int, 20, flag="--inferences",
                  positive=True, help="inference epochs"),
        ParamSpec("trbg_bias", float, 0.5, help="TRBG bias of the DNN-Life policy"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    full_config={"quick": False, "num_inferences": 100},
    renderer=render_aging_point,
    tags=("sweep", "aging"),
    # Jobs agreeing on these parameters stream the same weight blocks; the
    # sweep runner batches them onto one worker so the process-local stream
    # cache (and its packed bit tensor) is built once per workload.
    affinity=("network", "data_format", "weight_memory_kb", "fifo_depth_tiles",
              "quick", "seed"),
)
