"""Multi-phase lifetime-scenario experiment — the timeline sweep target.

Where the ``aging`` experiment evaluates one endlessly-repeated stream, this
driver evaluates a whole deployment *timeline*: an ordered list of phases
(model swaps, idle retention stretches, thermal corners) expressed in the
phase-spec mini-language and simulated by the
:class:`~repro.scenario.driver.ScenarioAgingSimulator`.  Combined with
``dnn-life sweep`` it turns workload diversity into a grid axis::

    dnn-life scenario \
        --spec "lenet5:int8:dnn_life:1000@85C,idle:500,alexnet:int8:inversion:1000@45C"

    dnn-life sweep scenario \
        --grid spec=lenet5:int8:none:20,lenet5:int8:inversion:20 \
        --grid leveling=none,wear_swap

(``--grid`` splits its value list on commas, so only *single-phase* specs can
ride a grid axis; multi-phase specs — which contain commas themselves — run
through ``--spec`` / ``--set spec=...`` or the :class:`SweepRunner` API.  An
escaping convention is a ROADMAP open item.)

The payload reports the per-phase stress timeline, the aggregated effective
(duty, years) view with its Fig. 9 style histogram, and the scenario-aware
memory lifetime next to the naive single-corner estimate (what the classic
lifetime-average-duty accounting would have claimed).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.aging.lifetime import LifetimeEstimator
from repro.experiments.common import (
    ExperimentScale,
    check_non_negative,
    check_swap_fraction,
)
from repro.utils.validation import check_temperature_celsius
from repro.experiments.leveling import build_point_leveler
from repro.leveling import LEVELER_CHOICES
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.scenario.driver import ScenarioAgingSimulator, scenario_stream_factory
from repro.scenario.phases import LifetimeScenario
from repro.utils.tables import AsciiTable, format_histogram
from repro.utils.units import KB

#: Default timeline: a model swap with an idle retention stretch at a cool
#: corner — small enough for the quick lane, rich enough to exercise every
#: phase kind.
DEFAULT_SPEC = ("lenet5:int8:dnn_life:10@85C,idle:5@45C,"
                "custom_mnist:int8:inversion:10@45C")


def _check_spec(spec: str) -> None:
    """Schema validator: parse AND compose the phase mini-language.

    Building the full :class:`LifetimeScenario` (not just the tokens) also
    rejects scenario-level mistakes — e.g. an idle-first timeline — as
    one-line usage errors before anything executes.
    """
    LifetimeScenario.from_spec(spec)


def run_scenario_point(spec: str = DEFAULT_SPEC,
                       weight_memory_kb: int = 8,
                       fifo_depth_tiles: int = 1,
                       leveling: str = "none",
                       leveling_period: int = 2,
                       rotation_step: int = 1,
                       swap_fraction: float = 0.5,
                       years: float = 7.0,
                       reference_temperature_c: float = 85.0,
                       max_degradation_percent: float = 15.0,
                       quick: bool = True,
                       seed: int = 0) -> Dict[str, object]:
    """Aging of one multi-phase lifetime timeline.

    Parameters
    ----------
    spec:
        Comma-separated phase tokens (``NETWORK:FORMAT:POLICY:DURATION[@TEMP]``
        or ``idle:DURATION[@TEMP]``); see :mod:`repro.scenario.phases`.
    weight_memory_kb / fifo_depth_tiles:
        Weight-memory geometry shared by every phase of the timeline.
    leveling / leveling_period / rotation_step / swap_fraction:
        Wear-leveling policy whose remap state persists across phase
        boundaries (same knobs as the ``leveling`` experiment).
    years:
        Wall-clock span the whole timeline represents.
    reference_temperature_c:
        Temperature at which one phase-year counts as one effective year.
    max_degradation_percent:
        SNM-degradation threshold of the lifetime estimate.
    quick / seed:
        Scale cap and weight/policy seed, as in the other aging experiments.
    """
    scenario = LifetimeScenario.from_spec(
        spec, years=years, reference_temperature_c=reference_temperature_c)
    scale = ExperimentScale.from_quick_flag(quick)
    config = replace(baseline_config(), name="scenario_point",
                     weight_memory_bytes=int(weight_memory_kb) * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    accelerator = BaselineAccelerator(config=config)
    factory = scenario_stream_factory(accelerator=accelerator, scale=scale, seed=seed)
    # Any phase's stream pins the geometry; build through the first active one.
    geometry = factory(scenario.active_phases[0]).geometry
    leveler = build_point_leveler(leveling, geometry, fifo_depth_tiles,
                                  leveling_period, rotation_step, swap_fraction)
    simulator = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                       seed=seed, leveler=leveler)
    result = simulator.run()

    effective = result.effective
    percentages, edges, labels = effective.histogram()
    estimator = LifetimeEstimator(snm_model=effective.snm_model,
                                  max_degradation_percent=max_degradation_percent)
    lifetime_years = estimator.memory_lifetime_years_phases(
        result.phase_stress, scaling=result.scaling)
    # What the classic single-corner accounting would claim: the same
    # effective duty-cycles aged entirely at the reference temperature.
    naive_lifetime_years = estimator.memory_lifetime_years(effective.duty_cycles)
    return {
        "workload": {
            "spec": spec,
            "weight_memory_kb": int(weight_memory_kb),
            "fifo_depth_tiles": int(fifo_depth_tiles),
            "leveling": leveling,
            "leveling_period": int(leveling_period),
            "rotation_step": int(rotation_step),
            "swap_fraction": float(swap_fraction),
            "years": float(years),
            "reference_temperature_c": float(reference_temperature_c),
            "max_degradation_percent": float(max_degradation_percent),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "scenario": result.scenario,
        "phases": result.phase_rows(),
        "effective": {
            "summary": effective.summary(),
            "years": result.effective_years,
            "wall_years": result.wall_years,
            "acceleration": result.effective_years / result.wall_years,
            "histogram_percent": list(percentages),
            "histogram_bin_edges": list(edges),
            "histogram_bin_labels": labels,
        },
        "lifetime": {
            "max_degradation_percent": float(max_degradation_percent),
            "memory_lifetime_years": lifetime_years,
            "single_corner_lifetime_years": naive_lifetime_years,
        },
        "leveler": (leveler.describe() if leveler is not None
                    else {"leveler": "none"}),
    }


def render_scenario_point(payload: Dict[str, object], params: Dict[str, object]) -> str:
    """Phase timeline table + effective histogram + lifetime verdict."""
    workload = payload["workload"]
    table = AsciiTable(
        ["phase", "kind", "years", "temp [C]", "time factor", "mean duty"],
        title=(f"=== scenario — {workload['weight_memory_kb']} KB x "
               f"{workload['fifo_depth_tiles']} tiles, leveling: "
               f"{workload['leveling']}, {len(payload['phases'])} phases ==="),
        precision=3,
    )
    for row in payload["phases"]:
        table.add_row([row["label"], row["kind"], row["years"],
                       row["temperature_c"], row["time_factor"], row["mean_duty"]])
    effective = payload["effective"]
    lifetime = payload["lifetime"]
    sections = [
        table.render(),
        format_histogram(
            effective["histogram_bin_labels"], effective["histogram_percent"],
            title=(f"-- effective stress histogram "
                   f"(mean SNM deg. "
                   f"{effective['summary']['mean_snm_degradation_percent']:.2f}% "
                   f"over {effective['years']:.2f} effective years)")),
        (f"effective stress-time: {effective['years']:.3f} equivalent years over "
         f"{effective['wall_years']:.3f} wall-clock years "
         f"(acceleration {effective['acceleration']:.3f}x)"),
        (f"memory lifetime to {lifetime['max_degradation_percent']:g}% SNM loss: "
         f"{lifetime['memory_lifetime_years']:.2f} years under the scenario mix "
         f"({lifetime['single_corner_lifetime_years']:.2f} at the reference "
         f"corner)"),
    ]
    return "\n\n".join(sections)


register_experiment(
    name="scenario",
    runner=run_scenario_point,
    description="Multi-phase lifetime timeline (model swaps, idle retention, "
                "thermal corners) via the scenario engine",
    artifact="lifetime-scenario axis (extension)",
    params=(
        ParamSpec("spec", str, DEFAULT_SPEC, validator=_check_spec,
                  help="comma-separated phase tokens "
                       "(NETWORK:FORMAT:POLICY:DURATION[@TEMP] | "
                       "idle:DURATION[@TEMP])"),
        ParamSpec("weight_memory_kb", int, 8, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 1, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("leveling", str, "none", choices=LEVELER_CHOICES,
                  help="wear-leveling policy (state persists across phases)"),
        ParamSpec("leveling_period", int, 2, positive=True,
                  help="epochs per leveling step"),
        ParamSpec("rotation_step", int, 1, validator=check_non_negative,
                  help="rows rotated per inference"),
        ParamSpec("swap_fraction", float, 0.5, validator=check_swap_fraction,
                  help="fraction of rows the wear-guided swap exchanges"),
        ParamSpec("years", float, 7.0, positive=True,
                  help="wall-clock span of the whole timeline"),
        ParamSpec("reference_temperature_c", float, 85.0, flag="--reference-temp",
                  validator=check_temperature_celsius,
                  help="Arrhenius reference corner in Celsius"),
        ParamSpec("max_degradation_percent", float, 15.0, flag="--max-degradation",
                  positive=True, help="SNM-loss threshold of the lifetime estimate"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    full_config={"quick": False},
    renderer=render_scenario_point,
    tags=("sweep", "aging", "scenario"),
    # Jobs agreeing on these parameters share the per-process stream cache
    # (one cached stream per distinct phase workload inside the spec).
    affinity=("weight_memory_kb", "fifo_depth_tiles", "quick", "seed"),
)
