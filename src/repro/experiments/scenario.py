"""Multi-phase lifetime-scenario experiment — the timeline sweep target.

Where the ``aging`` experiment evaluates one endlessly-repeated stream, this
driver evaluates a whole deployment *timeline*: an ordered list of phases
(model swaps, idle retention stretches, thermal corners) expressed in the
phase-spec mini-language and simulated by the
:class:`~repro.scenario.driver.ScenarioAgingSimulator`.  Combined with
``dnn-life sweep`` it turns workload diversity — and, through the
``voltage_v``/``frequency_ghz`` default-operating-point parameters, the DVFS
corner — into a grid axis::

    dnn-life scenario \
        --spec "lenet5:int8:dnn_life:1000@85C@0.72V:0.5GHz,idle:500@45C@0.6V:0.1GHz"

    dnn-life sweep scenario \
        --grid "spec=;lenet5:int8:none:20,idle:10;lenet5:int8:inversion:20" \
        --grid leveling=none,wear_swap \
        --grid voltage_v=0.72,0.8,0.9

(``--grid`` splits its value list on commas by default; multi-phase specs —
which contain commas themselves — ride a grid axis through the alternate-
separator convention: start the value list with ``;``, ``|`` or ``/`` and
that character becomes the axis separator, as in the example above.)

The payload reports the per-phase stress timeline, per-phase wear maps with
a compact region-imbalance timeline (*when* stress concentrated, not only
where), idle-phase retention-failure probabilities at their operating
points, the aggregated effective (duty, years) view with its Fig. 9 style
histogram, and the scenario-aware memory lifetime next to the naive
single-corner estimate (what the classic lifetime-average-duty accounting
would have claimed).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.aging.lifetime import LifetimeEstimator
from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    DEFAULT_REFERENCE_VOLTAGE_V,
)
from repro.experiments.common import (
    ExperimentScale,
    check_non_negative,
    check_swap_fraction,
)
from repro.utils.validation import check_temperature_celsius
from repro.experiments.leveling import build_point_leveler
from repro.fleet.simulator import failure_times_from_scenario_result
from repro.leveling import LEVELER_CHOICES
from repro.memory.wear_map import default_wear_regions, wear_map_from_result
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.scenario.driver import ScenarioAgingSimulator, scenario_stream_factory
from repro.scenario.phases import LifetimeScenario
from repro.utils.tables import AsciiTable, format_histogram
from repro.utils.units import KB

#: Default timeline: a model swap with an idle retention stretch at a cool
#: corner — small enough for the quick lane, rich enough to exercise every
#: phase kind.
DEFAULT_SPEC = ("lenet5:int8:dnn_life:10@85C,idle:5@45C,"
                "custom_mnist:int8:inversion:10@45C")


def _check_spec(spec: str) -> None:
    """Schema validator: parse AND compose the phase mini-language.

    Building the full :class:`LifetimeScenario` (not just the tokens) also
    rejects scenario-level mistakes — e.g. an idle-first timeline — as
    one-line usage errors before anything executes.
    """
    LifetimeScenario.from_spec(spec)


def run_scenario_point(spec: str = DEFAULT_SPEC,
                       weight_memory_kb: int = 8,
                       fifo_depth_tiles: int = 1,
                       leveling: str = "none",
                       leveling_period: int = 2,
                       rotation_step: int = 1,
                       swap_fraction: float = 0.5,
                       years: float = 7.0,
                       reference_temperature_c: float = 85.0,
                       voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V,
                       frequency_ghz: float = DEFAULT_REFERENCE_FREQUENCY_GHZ,
                       max_degradation_percent: float = 15.0,
                       quick: bool = True,
                       seed: int = 0) -> Dict[str, object]:
    """Aging of one multi-phase lifetime timeline.

    Parameters
    ----------
    spec:
        Comma-separated phase tokens
        (``NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F]`` or
        ``idle:DURATION[@TEMP][@V:F]``); see :mod:`repro.scenario.phases`.
    weight_memory_kb / fifo_depth_tiles:
        Weight-memory geometry shared by every phase of the timeline.
    leveling / leveling_period / rotation_step / swap_fraction:
        Wear-leveling policy whose remap state persists across phase
        boundaries (same knobs as the ``leveling`` experiment).
    years:
        Wall-clock span the whole timeline represents.
    reference_temperature_c:
        Temperature at which one phase-year counts as one effective year.
    voltage_v / frequency_ghz:
        Default DVFS operating point applied to phases that do not pin
        their own ``@V:F`` suffix — the sweepable whole-timeline corner.
        Phases with explicit points keep them; the defaults are the
        reference corner (a no-op).
    max_degradation_percent:
        SNM-degradation threshold of the lifetime estimate.
    quick / seed:
        Scale cap and weight/policy seed, as in the other aging experiments.
    """
    scenario = LifetimeScenario.from_spec(
        spec, years=years, reference_temperature_c=reference_temperature_c)
    scenario = scenario.with_default_operating_point(voltage_v, frequency_ghz)
    scale = ExperimentScale.from_quick_flag(quick)
    config = replace(baseline_config(), name="scenario_point",
                     weight_memory_bytes=int(weight_memory_kb) * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    accelerator = BaselineAccelerator(config=config)
    factory = scenario_stream_factory(accelerator=accelerator, scale=scale, seed=seed)
    # Any phase's stream pins the geometry; build through the first active one.
    geometry = factory(scenario.active_phases[0]).geometry
    leveler = build_point_leveler(leveling, geometry, fifo_depth_tiles,
                                  leveling_period, rotation_step, swap_fraction)
    simulator = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                       seed=seed, leveler=leveler)
    result = simulator.run()

    effective = result.effective
    percentages, edges, labels = effective.histogram()
    estimator = LifetimeEstimator(snm_model=effective.snm_model,
                                  max_degradation_percent=max_degradation_percent)
    lifetime_years = estimator.memory_lifetime_years_phases(
        result.phase_stress, scaling=result.scaling)
    # What the classic single-corner accounting would claim: the same
    # effective duty-cycles aged entirely at the reference temperature.
    naive_lifetime_years = estimator.memory_lifetime_years(effective.duty_cycles)
    # SNM-vs-retention failure composition: the same formula the fleet layer
    # applies per device (one shared verdict, not a probability printed
    # alongside).  Infinite retention horizons (no idle flips expected)
    # serialise as None to keep the payload JSON-safe.
    failure = failure_times_from_scenario_result(
        result, max_degradation_percent=max_degradation_percent)
    num_regions = default_wear_regions(geometry.rows, fifo_depth_tiles)
    return {
        "workload": {
            "spec": spec,
            "weight_memory_kb": int(weight_memory_kb),
            "fifo_depth_tiles": int(fifo_depth_tiles),
            "leveling": leveling,
            "leveling_period": int(leveling_period),
            "rotation_step": int(rotation_step),
            "swap_fraction": float(swap_fraction),
            "years": float(years),
            "reference_temperature_c": float(reference_temperature_c),
            "voltage_v": float(voltage_v),
            "frequency_ghz": float(frequency_ghz),
            "max_degradation_percent": float(max_degradation_percent),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "scenario": result.scenario,
        "phases": result.phase_rows(),
        "wear": _scenario_wear_section(result, num_regions),
        "effective": {
            "summary": effective.summary(),
            "years": result.effective_years,
            "wall_years": result.wall_years,
            "acceleration": result.effective_years / result.wall_years,
            "histogram_percent": list(percentages),
            "histogram_bin_edges": list(edges),
            "histogram_bin_labels": labels,
        },
        "lifetime": {
            "max_degradation_percent": float(max_degradation_percent),
            "memory_lifetime_years": lifetime_years,
            "single_corner_lifetime_years": naive_lifetime_years,
            "retention_limited_years": (
                float(failure["retention_years"])
                if math.isfinite(failure["retention_years"]) else None),
            "failure_years": (
                float(failure["failure_years"])
                if math.isfinite(failure["failure_years"]) else None),
            "failure_mode": str(failure["mode"]),
        },
        "leveler": (leveler.describe() if leveler is not None
                    else {"leveler": "none"}),
    }


def _scenario_wear_section(result, num_regions: int) -> Dict[str, object]:
    """Per-phase wear maps plus a compact timeline of region imbalance.

    The per-phase maps show *where* each phase concentrated stress; the
    timeline shows *when* the imbalance built up across the deployment
    (idle phases hold the preceding picture and report no imbalance of
    their own).
    """
    per_phase = []
    timeline = []
    for row, phase_result in zip(result.phase_rows(), result.phase_results):
        if phase_result is None:
            per_phase.append(None)
            timeline.append({"label": row["label"], "kind": "idle",
                             "region_imbalance_pp": None, "worst_region": None})
            continue
        wear = wear_map_from_result(phase_result, num_regions=num_regions)
        summary = wear.summary()
        per_phase.append({
            "label": row["label"],
            "summary": summary,
            "render": wear.render(max_rows=8),
        })
        timeline.append({"label": row["label"], "kind": "active",
                         "region_imbalance_pp": summary["region_imbalance_pp"],
                         "worst_region": summary["worst_region"]})
    return {"num_regions": num_regions, "per_phase": per_phase,
            "timeline": timeline}


def _render_wear_timeline(wear: Dict[str, object], width: int = 24) -> str:
    """ASCII bar chart of per-phase region imbalance over the timeline."""
    lines = [f"-- region imbalance timeline ({wear['num_regions']} regions)"]
    scale = max((entry["region_imbalance_pp"] or 0.0)
                for entry in wear["timeline"]) or 1.0
    for entry in wear["timeline"]:
        if entry["kind"] == "idle":
            lines.append(f"{entry['label']:<52} (idle — holds previous wear)")
            continue
        imbalance = entry["region_imbalance_pp"]
        bar = "#" * max(int(round(width * imbalance / scale)),
                        1 if imbalance > 0 else 0)
        lines.append(f"{entry['label']:<52} |{bar:<{width}}| "
                     f"{imbalance:.3f}pp (worst region {entry['worst_region']})")
    return "\n".join(lines)


def _render_retention_lines(phases) -> list:
    """One report line per idle phase carrying a retention verdict."""
    lines = []
    for row in phases:
        retention = row.get("retention")
        if retention is None:
            continue
        point = retention["operating_point"]
        lines.append(
            f"{row['label']}: retention @{point['voltage_v']:g}V/"
            f"{point['temperature_c']:g}C — mean failure probability "
            f"{retention['failure_probability_mean']:.3g}, max "
            f"{retention['failure_probability_max']:.3g}, expected bit flips "
            f"{retention['expected_bit_flips']:.1f} of "
            f"{retention['cells_tracked']} held cells")
    return lines


def render_scenario_point(payload: Dict[str, object], params: Dict[str, object]) -> str:
    """Phase timeline table + wear timeline + effective histogram + verdicts."""
    workload = payload["workload"]
    table = AsciiTable(
        ["phase", "kind", "years", "temp [C]", "V", "time factor", "mean duty"],
        title=(f"=== scenario — {workload['weight_memory_kb']} KB x "
               f"{workload['fifo_depth_tiles']} tiles, leveling: "
               f"{workload['leveling']}, {len(payload['phases'])} phases ==="),
        precision=3,
    )
    for row in payload["phases"]:
        table.add_row([row["label"], row["kind"], row["years"],
                       row["temperature_c"], row.get("voltage_v", "-"),
                       row["time_factor"], row["mean_duty"]])
    effective = payload["effective"]
    lifetime = payload["lifetime"]
    sections = [
        table.render(),
        _render_wear_timeline(payload["wear"]),
    ]
    for entry in payload["wear"]["per_phase"]:
        if entry is not None:
            sections.append(f"-- {entry['label']}\n{entry['render']}")
    sections.extend(_render_retention_lines(payload["phases"]))
    sections += [
        format_histogram(
            effective["histogram_bin_labels"], effective["histogram_percent"],
            title=(f"-- effective stress histogram "
                   f"(mean SNM deg. "
                   f"{effective['summary']['mean_snm_degradation_percent']:.2f}% "
                   f"over {effective['years']:.2f} effective years)")),
        (f"effective stress-time: {effective['years']:.3f} equivalent years over "
         f"{effective['wall_years']:.3f} wall-clock years "
         f"(acceleration {effective['acceleration']:.3f}x)"),
        (f"memory lifetime to {lifetime['max_degradation_percent']:g}% SNM loss: "
         f"{lifetime['memory_lifetime_years']:.2f} years under the scenario mix "
         f"({lifetime['single_corner_lifetime_years']:.2f} at the reference "
         f"corner)"),
    ]
    verdict = _render_lifetime_verdict(lifetime)
    if verdict is not None:
        sections.append(verdict)
    return "\n\n".join(sections)


def _render_lifetime_verdict(lifetime: Dict[str, object]) -> Optional[str]:
    """SNM-vs-retention composed verdict (absent on pre-composition payloads)."""
    mode = lifetime.get("failure_mode")
    if mode is None:
        return None
    retention_years = lifetime.get("retention_limited_years")
    retention_text = ("no retention flip expected over the timeline"
                      if retention_years is None
                      else f"retention-limited at {retention_years:.3g} years")
    failure_years = lifetime.get("failure_years")
    failure_text = ("unbounded" if failure_years is None
                    else f"{failure_years:.3g} years")
    return (f"lifetime verdict: {failure_text} to first expected failure, "
            f"{mode}-limited (SNM wear-out at "
            f"{lifetime['memory_lifetime_years']:.2f} years; {retention_text})")


register_experiment(
    name="scenario",
    runner=run_scenario_point,
    description="Multi-phase lifetime timeline (model swaps, idle retention, "
                "thermal corners, DVFS operating points) via the scenario "
                "engine",
    artifact="lifetime-scenario axis (extension)",
    params=(
        ParamSpec("spec", str, DEFAULT_SPEC, validator=_check_spec,
                  help="comma-separated phase tokens "
                       "(NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F] | "
                       "idle:DURATION[@TEMP][@V:F])"),
        ParamSpec("weight_memory_kb", int, 8, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 1, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("leveling", str, "none", choices=LEVELER_CHOICES,
                  help="wear-leveling policy (state persists across phases)"),
        ParamSpec("leveling_period", int, 2, positive=True,
                  help="epochs per leveling step"),
        ParamSpec("rotation_step", int, 1, validator=check_non_negative,
                  help="rows rotated per inference"),
        ParamSpec("swap_fraction", float, 0.5, validator=check_swap_fraction,
                  help="fraction of rows the wear-guided swap exchanges"),
        ParamSpec("years", float, 7.0, positive=True,
                  help="wall-clock span of the whole timeline"),
        ParamSpec("reference_temperature_c", float, 85.0, flag="--reference-temp",
                  validator=check_temperature_celsius,
                  help="Arrhenius reference corner in Celsius"),
        ParamSpec("voltage_v", float, DEFAULT_REFERENCE_VOLTAGE_V,
                  flag="--voltage", positive=True,
                  help="default supply (V) for phases without an explicit "
                       "@V:F point — the sweepable DVFS corner"),
        ParamSpec("frequency_ghz", float, DEFAULT_REFERENCE_FREQUENCY_GHZ,
                  flag="--frequency", positive=True,
                  help="default clock (GHz) for phases without an explicit "
                       "@V:F point — scales each epoch's wall-clock share"),
        ParamSpec("max_degradation_percent", float, 15.0, flag="--max-degradation",
                  positive=True, help="SNM-loss threshold of the lifetime estimate"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    full_config={"quick": False},
    renderer=render_scenario_point,
    tags=("sweep", "aging", "scenario"),
    # Jobs agreeing on these parameters share the per-process stream cache
    # (one cached stream per distinct phase workload inside the spec).
    affinity=("weight_memory_kb", "fifo_depth_tiles", "quick", "seed"),
)
