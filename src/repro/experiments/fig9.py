"""Fig. 9 — SNM degradation of the baseline accelerator's weight memory when
running AlexNet, for three data formats and six mitigation configurations.

The six configurations are: no mitigation, periodic inversion, barrel shifter,
DNN-Life with an ideal TRBG (bias 0.5), DNN-Life with a biased TRBG (0.7)
without bias balancing, and DNN-Life with a biased TRBG (0.7) with the 4-bit
bias-balancing register — exactly the columns of the paper's Fig. 9.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.accelerator.baseline import BaselineAccelerator
from repro.core.policies import default_policy_suite
from repro.experiments.aging_runner import (
    build_workload_stream,
    evaluate_policies_on_stream,
    render_policy_histograms,
)
from repro.experiments.common import ExperimentScale
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.quantization.formats import PAPER_FORMATS, get_format

#: Network evaluated on the baseline accelerator in Fig. 9.
FIG9_NETWORK = "alexnet"


def run_fig9_baseline_alexnet(data_formats: Optional[Iterable[str]] = None,
                              quick: bool = True, seed: int = 0,
                              network_name: str = FIG9_NETWORK
                              ) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Run the full Fig. 9 grid: format -> policy -> histogram/summary.

    Parameters
    ----------
    data_formats:
        Data formats to evaluate (default: the paper's three formats).
    quick:
        ``True`` runs the reduced configuration (capped weights per layer,
        20 inferences); ``False`` the paper-scale one.
    seed:
        Seed for synthetic weights and the stochastic DNN-Life policy.
    network_name:
        Workload network (``alexnet`` in the paper).

    Returns
    -------
    dict
        ``{format: {policy_label: {"policy", "policy_config", "summary",
        "histogram_percent", "histogram_bin_edges", "histogram_bin_labels"}}}``.
    """
    scale = ExperimentScale.from_quick_flag(quick)
    data_formats = list(data_formats) if data_formats is not None else list(PAPER_FORMATS)
    accelerator = BaselineAccelerator()
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for format_name in data_formats:
        stream = build_workload_stream(network_name, accelerator, format_name, scale, seed=seed)
        policies = default_policy_suite(get_format(format_name).word_bits, seed=seed)
        results[format_name] = evaluate_policies_on_stream(
            stream, policies, num_inferences=scale.num_inferences, seed=seed)
    return results


def render_fig9(quick: bool = True, seed: int = 0) -> str:
    """ASCII rendering of every Fig. 9 panel."""
    sections = []
    for format_name, per_policy in run_fig9_baseline_alexnet(quick=quick, seed=seed).items():
        sections.append(render_policy_histograms(
            per_policy,
            title=(f"=== Fig. 9 — baseline accelerator, {FIG9_NETWORK}, "
                   f"format: {format_name} ===")))
    return "\n\n".join(sections)


def fig9_headline_claims(results: Dict[str, Dict[str, Dict[str, object]]]) -> Dict[str, object]:
    """Quantify the paper's headline observations on a Fig. 9 result set.

    For every data format: DNN-Life with bias balancing should give the lowest
    mean degradation, and the biased-TRBG-without-balancing configuration
    should be worse than the balanced one.
    """
    claims: Dict[str, object] = {}
    for format_name, per_policy in results.items():
        means = {label: entry["summary"]["mean_snm_degradation_percent"]
                 for label, entry in per_policy.items()}
        balanced = [label for label in means if "with bias balancing" in label][0]
        unbalanced = [label for label in means
                      if "bias=0.7, without bias balancing" in label][0]
        claims[format_name] = {
            "best_policy": min(means, key=means.get),
            "dnn_life_balanced_mean": means[balanced],
            "dnn_life_unbalanced_mean": means[unbalanced],
            "no_mitigation_mean": means["none"],
            "bias_balancing_helps": means[balanced] <= means[unbalanced],
        }
    return claims


def render_fig9_payload(payload: Dict[str, Dict[str, Dict[str, object]]],
                        params: Dict[str, object]) -> str:
    """Render a (possibly cache-served) Fig. 9 payload without re-simulating."""
    network_name = params.get("network_name", FIG9_NETWORK)
    sections = []
    for format_name, per_policy in payload.items():
        sections.append(render_policy_histograms(
            per_policy,
            title=(f"=== Fig. 9 — baseline accelerator, {network_name}, "
                   f"format: {format_name} ===")))
    return "\n\n".join(sections)


register_experiment(
    name="fig9",
    runner=run_fig9_baseline_alexnet,
    description="SNM degradation on the baseline accelerator (AlexNet), "
                "3 formats x 6 mitigation configurations",
    artifact="Fig. 9",
    params=(
        ParamSpec("quick", bool, True,
                  help="reduced configuration (capped weights, 20 inferences)"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
        ParamSpec("network_name", str, FIG9_NETWORK, flag="--network",
                  help="workload network"),
    ),
    full_config={"quick": False},
    renderer=render_fig9_payload,
    tags=("figure", "aging"),
)
