"""Fig. 2b — SNM degradation after 7 years as a function of the cell duty-cycle.

The paper's Fig. 2b (after Kothawade et al.) shows the characteristic U-shaped
dependence: minimal degradation at a 50% duty-cycle, maximal at 0%/100%.  This
driver sweeps the configured device model over the full duty-cycle range; the
anchor values are the ones stated in Sec. V-A (10.82% at 50%, 26.12% at the
extremes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.aging.snm import SnmDegradationModel, default_snm_model
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.utils.tables import format_series


def run_fig2_snm_curve(num_points: int = 21, years: float = 7.0,
                       model: Optional[SnmDegradationModel] = None) -> List[Dict[str, float]]:
    """Sweep duty-cycle 0..1 and report SNM degradation after ``years`` years.

    The x-axis is reported both as duty-cycle (fraction of time storing '1')
    and as the paper's "percentage of time that the cell stores zero".
    """
    model = model or default_snm_model()
    duty = np.linspace(0.0, 1.0, num_points)
    degradation = model.degradation_percent(duty, years)
    return [
        {
            "duty_cycle": float(d),
            "percent_time_storing_zero": float((1.0 - d) * 100.0),
            "snm_degradation_percent": float(deg),
        }
        for d, deg in zip(duty, degradation)
    ]


def render_fig2(num_points: int = 11) -> str:
    """ASCII rendering of the Fig. 2b curve."""
    rows = run_fig2_snm_curve(num_points)
    return format_series(
        [row["percent_time_storing_zero"] for row in rows],
        [row["snm_degradation_percent"] for row in rows],
        x_name="time storing zero [%]",
        y_name="SNM degradation after 7 years [%]",
        title="Fig. 2b — SNM degradation vs. duty-cycle",
        precision=2,
    )


def render_fig2_payload(payload, params):
    """Render a (possibly cache-served) Fig. 2b payload at its own parameters."""
    years = params.get("years", 7.0)
    return format_series(
        [row["percent_time_storing_zero"] for row in payload],
        [row["snm_degradation_percent"] for row in payload],
        x_name="time storing zero [%]",
        y_name=f"SNM degradation after {years:g} years [%]",
        title="Fig. 2b — SNM degradation vs. duty-cycle",
        precision=2,
    )


register_experiment(
    name="fig2",
    runner=run_fig2_snm_curve,
    description="SNM degradation after a configurable horizon as a function "
                "of the cell duty-cycle",
    artifact="Fig. 2b",
    params=(
        ParamSpec("num_points", int, 21, help="number of duty-cycle sample points"),
        ParamSpec("years", float, 7.0, help="aging horizon in years"),
    ),
    renderer=render_fig2_payload,
    tags=("figure", "device-model"),
)
