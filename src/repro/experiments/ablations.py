"""Ablation studies beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* the size M of the bias-balancing register;
* the TRBG bias the controller can tolerate;
* the enable-signal granularity (one enable bit per word vs. per 64-bit
  transfer) and its metadata overhead;
* the inversion-policy granularity (per write-stream vs. idealised
  per-location) — the aliasing effect discussed in Sec. III-B;
* robustness of the conclusions to the device aging model (calibrated
  power-law vs. reaction-diffusion backend);
* the per-inference energy overhead of every policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.accelerator.baseline import BaselineAccelerator
from repro.aging.nbti import ReactionDiffusionSnmModel
from repro.analysis.energy import energy_overhead_report
from repro.core.framework import DnnLife
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy, PeriodicInversionPolicy
from repro.core.simulation import AgingSimulator
from repro.experiments.aging_runner import build_workload_stream
from repro.experiments.common import ExperimentScale
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.quantization.formats import get_format


def _default_stream(network_name: str, data_format: str, quick: bool, seed: int):
    scale = ExperimentScale.from_quick_flag(quick)
    accelerator = BaselineAccelerator()
    stream = build_workload_stream(network_name, accelerator, data_format, scale, seed=seed)
    return stream, scale


def run_bias_sweep(network_name: str = "alexnet", data_format: str = "int8_asymmetric",
                   biases: Iterable[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
                   bias_balancing: bool = False, quick: bool = True,
                   seed: int = 0) -> Dict[float, Dict[str, float]]:
    """Mean/max SNM degradation of DNN-Life as a function of the TRBG bias.

    Ablation beyond the paper's figures (supports the Fig. 9 discussion of
    biased TRBGs).

    Parameters
    ----------
    network_name, data_format:
        Workload on the baseline accelerator.
    biases:
        TRBG "probability of 1" values to sweep.
    bias_balancing:
        Whether the bias-balancing register is enabled during the sweep.
    quick, seed:
        Experiment scale and RNG seed (see :class:`~repro.experiments.common.ExperimentScale`).

    Returns
    -------
    dict
        ``{bias: {"mean_snm_degradation_percent", "max_snm_degradation_percent"}}``.
    """
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[float, Dict[str, float]] = {}
    for bias in biases:
        policy = DnnLifePolicy(word_bits, trbg_bias=bias,
                               bias_balancing=bias_balancing, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[float(bias)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
        }
    return results


def run_balance_register_sweep(network_name: str = "alexnet",
                               data_format: str = "int8_symmetric",
                               register_bits: Iterable[int] = (1, 2, 4, 6, 8),
                               trbg_bias: float = 0.7, quick: bool = True,
                               seed: int = 0) -> Dict[int, Dict[str, float]]:
    """Effect of the bias-balancing register size M on aging mitigation.

    Ablation of the M-bit balancing register introduced for the paper's
    Fig. 8 micro-architecture (the Fig. 9 columns use M = 4).

    Returns
    -------
    dict
        ``{register_bits: {"mean_snm_degradation_percent",
        "max_snm_degradation_percent"}}``.
    """
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[int, Dict[str, float]] = {}
    for bits in register_bits:
        policy = DnnLifePolicy(word_bits, trbg_bias=trbg_bias, bias_balancing=True,
                               balance_register_bits=bits, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[int(bits)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
        }
    return results


def run_enable_granularity_sweep(network_name: str = "alexnet",
                                 data_format: str = "int8_symmetric",
                                 group_sizes: Iterable[int] = (1, 2, 8, 64),
                                 quick: bool = True, seed: int = 0
                                 ) -> Dict[int, Dict[str, float]]:
    """Enable-bit granularity: aging quality vs. metadata overhead trade-off.

    Ablation of the enable-signal granularity discussed with Table II (one
    enable bit per word vs. per 64-bit transfer).

    Returns
    -------
    dict
        ``{words_per_enable: {"mean_snm_degradation_percent",
        "max_snm_degradation_percent", "metadata_bits_per_word"}}``.
    """
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[int, Dict[str, float]] = {}
    for group in group_sizes:
        policy = DnnLifePolicy(word_bits, trbg_bias=0.5, bias_balancing=True,
                               words_per_enable=group, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[int(group)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
            "metadata_bits_per_word": policy.metadata_bits_per_word,
        }
    return results


def run_inversion_granularity_comparison(network_name: str = "alexnet",
                                         data_format: str = "float32",
                                         quick: bool = True, seed: int = 0
                                         ) -> Dict[str, Dict[str, float]]:
    """Aliasing ablation: write-stream inversion vs. idealised per-location.

    Quantifies the Sec. III-B aliasing effect behind the paper's critique of
    classic periodic inversion.

    Returns
    -------
    dict
        ``{"write" | "location": {"mean_snm_degradation_percent",
        "max_snm_degradation_percent", "percent_cells_at_worst"}}``.
    """
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[str, Dict[str, float]] = {}
    for granularity in ("write", "location"):
        policy = PeriodicInversionPolicy(word_bits, granularity=granularity)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[granularity] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
            "percent_cells_at_worst": float((degradation >= degradation.max() - 0.5).mean() * 100),
        }
    return results


def run_device_model_comparison(network_name: str = "custom_mnist",
                                data_format: str = "int8_symmetric",
                                quick: bool = True, seed: int = 0
                                ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Check that the policy ranking is independent of the device aging model.

    Robustness ablation for the Fig. 9/11 conclusions: the calibrated
    power-law model is swapped for a reaction-diffusion backend.

    Returns
    -------
    dict
        ``{model_name: {policy_name: {"mean_snm_degradation_percent",
        "max_snm_degradation_percent"}}}``.
    """
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    models = {
        "calibrated_power_law": None,  # default model
        "reaction_diffusion": ReactionDiffusionSnmModel(),
    }
    policies = {
        "none": lambda: NoMitigationPolicy(),
        "dnn_life": lambda: DnnLifePolicy(word_bits, trbg_bias=0.5, seed=seed),
    }
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name, model in models.items():
        per_policy: Dict[str, Dict[str, float]] = {}
        for policy_name, factory in policies.items():
            result = AgingSimulator(stream, factory(), num_inferences=scale.num_inferences,
                                    seed=seed, snm_model=model).run()
            degradation = result.snm_degradation()
            per_policy[policy_name] = {
                "mean_snm_degradation_percent": float(degradation.mean()),
                "max_snm_degradation_percent": float(degradation.max()),
            }
        results[model_name] = per_policy
    return results


def run_energy_overhead_ablation(network_name: str = "alexnet",
                                 data_format: str = "int8_symmetric",
                                 num_inferences: int = 10, seed: int = 0,
                                 policies: Optional[Iterable[str]] = None
                                 ) -> Dict[str, Dict[str, float]]:
    """Per-inference mitigation energy overhead of every policy.

    Energy-side ablation backing the paper's Table II discussion.

    Returns
    -------
    dict
        ``{policy: {"weight_memory_energy_joules", "transducer_energy_joules",
        "metadata_energy_joules", "total_overhead_joules",
        "overhead_percent_of_memory_energy", ...}}`` (see
        :func:`repro.analysis.energy.energy_overhead_report`).
    """
    network = attach_synthetic_weights(build_model(network_name), seed=seed)
    framework = DnnLife(network, data_format=data_format,
                        num_inferences=num_inferences, seed=seed)
    return energy_overhead_report(framework, policies)


def run_lifetime_improvement(network_name: str = "alexnet",
                             data_format: str = "float32",
                             max_degradation_percent: float = 15.0,
                             quick: bool = True, seed: int = 0) -> Dict[str, float]:
    """Lifetime extension of DNN-Life over no mitigation (extension metric).

    Headline lifetime-improvement ablation (the paper's motivation for the
    "Improving the Lifetime" claim in its title).

    Returns
    -------
    dict
        ``{"baseline_lifetime_years", "dnn_life_lifetime_years",
        "lifetime_improvement_factor", "max_degradation_threshold_percent"}``.
    """
    from repro.aging.lifetime import LifetimeEstimator

    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    baseline = AgingSimulator(stream, NoMitigationPolicy(),
                              num_inferences=scale.num_inferences, seed=seed).run()
    mitigated = AgingSimulator(stream, DnnLifePolicy(word_bits, seed=seed),
                               num_inferences=scale.num_inferences, seed=seed).run()
    estimator = LifetimeEstimator(max_degradation_percent=max_degradation_percent)
    return {
        "baseline_lifetime_years": estimator.memory_lifetime_years(baseline.duty_cycles),
        "dnn_life_lifetime_years": estimator.memory_lifetime_years(mitigated.duty_cycles),
        "lifetime_improvement_factor": estimator.lifetime_improvement(
            baseline.duty_cycles, mitigated.duty_cycles),
        "max_degradation_threshold_percent": max_degradation_percent,
    }


_WORKLOAD_PARAMS = (
    ParamSpec("network_name", str, "alexnet", flag="--network", help="workload network"),
    ParamSpec("quick", bool, True, help="reduced configuration"),
    ParamSpec("seed", int, 0, help="weight/policy seed"),
)


register_experiment(
    name="ablation-bias",
    runner=run_bias_sweep,
    description="DNN-Life SNM degradation as a function of the TRBG bias",
    artifact="ablation (Fig. 9 discussion)",
    params=_WORKLOAD_PARAMS + (
        ParamSpec("data_format", str, "int8_asymmetric", flag="--format",
                  help="weight data format"),
        ParamSpec("bias_balancing", bool, False, help="enable the balancing register"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)

register_experiment(
    name="ablation-balance-register",
    runner=run_balance_register_sweep,
    description="Effect of the bias-balancing register size M",
    artifact="ablation (Fig. 8 micro-architecture)",
    params=_WORKLOAD_PARAMS + (
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
        ParamSpec("trbg_bias", float, 0.7, help="TRBG probability of 1"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)

register_experiment(
    name="ablation-enable-granularity",
    runner=run_enable_granularity_sweep,
    description="Enable-bit granularity vs. metadata overhead trade-off",
    artifact="ablation (Table II discussion)",
    params=_WORKLOAD_PARAMS + (
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)

register_experiment(
    name="ablation-inversion-granularity",
    runner=run_inversion_granularity_comparison,
    description="Write-stream vs. idealised per-location periodic inversion",
    artifact="ablation (Sec. III-B aliasing)",
    params=_WORKLOAD_PARAMS + (
        ParamSpec("data_format", str, "float32", flag="--format",
                  help="weight data format"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)

register_experiment(
    name="ablation-device-model",
    runner=run_device_model_comparison,
    description="Policy ranking under power-law vs. reaction-diffusion aging models",
    artifact="ablation (device-model robustness)",
    params=(
        ParamSpec("network_name", str, "custom_mnist", flag="--network",
                  help="workload network"),
        ParamSpec("quick", bool, True, help="reduced configuration"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)

register_experiment(
    name="ablation-energy",
    runner=run_energy_overhead_ablation,
    description="Per-inference mitigation energy overhead of every policy",
    artifact="ablation (Table II energy)",
    params=(
        ParamSpec("network_name", str, "alexnet", flag="--network",
                  help="workload network"),
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
        ParamSpec("num_inferences", int, 10, flag="--inferences", positive=True,
                  help="inference epochs"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    tags=("ablation", "energy"),
)

register_experiment(
    name="ablation-lifetime",
    runner=run_lifetime_improvement,
    description="Lifetime extension of DNN-Life over no mitigation",
    artifact="ablation (lifetime headline)",
    params=_WORKLOAD_PARAMS + (
        ParamSpec("data_format", str, "float32", flag="--format",
                  help="weight data format"),
        ParamSpec("max_degradation_percent", float, 15.0,
                  help="SNM-degradation threshold defining end of life"),
    ),
    full_config={"quick": False},
    tags=("ablation", "aging"),
)
