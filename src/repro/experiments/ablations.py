"""Ablation studies beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* the size M of the bias-balancing register;
* the TRBG bias the controller can tolerate;
* the enable-signal granularity (one enable bit per word vs. per 64-bit
  transfer) and its metadata overhead;
* the inversion-policy granularity (per write-stream vs. idealised
  per-location) — the aliasing effect discussed in Sec. III-B;
* robustness of the conclusions to the device aging model (calibrated
  power-law vs. reaction-diffusion backend);
* the per-inference energy overhead of every policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.accelerator.baseline import BaselineAccelerator
from repro.aging.nbti import ReactionDiffusionSnmModel
from repro.analysis.energy import energy_overhead_report
from repro.core.framework import DnnLife
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy, PeriodicInversionPolicy
from repro.core.simulation import AgingSimulator
from repro.experiments.aging_runner import build_workload_stream
from repro.experiments.common import ExperimentScale
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.quantization.formats import get_format


def _default_stream(network_name: str, data_format: str, quick: bool, seed: int):
    scale = ExperimentScale.from_quick_flag(quick)
    accelerator = BaselineAccelerator()
    stream = build_workload_stream(network_name, accelerator, data_format, scale, seed=seed)
    return stream, scale


def run_bias_sweep(network_name: str = "alexnet", data_format: str = "int8_asymmetric",
                   biases: Iterable[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
                   bias_balancing: bool = False, quick: bool = True,
                   seed: int = 0) -> Dict[float, Dict[str, float]]:
    """Mean/max SNM degradation of DNN-Life as a function of the TRBG bias."""
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[float, Dict[str, float]] = {}
    for bias in biases:
        policy = DnnLifePolicy(word_bits, trbg_bias=bias,
                               bias_balancing=bias_balancing, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[float(bias)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
        }
    return results


def run_balance_register_sweep(network_name: str = "alexnet",
                               data_format: str = "int8_symmetric",
                               register_bits: Iterable[int] = (1, 2, 4, 6, 8),
                               trbg_bias: float = 0.7, quick: bool = True,
                               seed: int = 0) -> Dict[int, Dict[str, float]]:
    """Effect of the bias-balancing register size M on aging mitigation."""
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[int, Dict[str, float]] = {}
    for bits in register_bits:
        policy = DnnLifePolicy(word_bits, trbg_bias=trbg_bias, bias_balancing=True,
                               balance_register_bits=bits, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[int(bits)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
        }
    return results


def run_enable_granularity_sweep(network_name: str = "alexnet",
                                 data_format: str = "int8_symmetric",
                                 group_sizes: Iterable[int] = (1, 2, 8, 64),
                                 quick: bool = True, seed: int = 0
                                 ) -> Dict[int, Dict[str, float]]:
    """Enable-bit granularity: aging quality vs. metadata overhead trade-off."""
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[int, Dict[str, float]] = {}
    for group in group_sizes:
        policy = DnnLifePolicy(word_bits, trbg_bias=0.5, bias_balancing=True,
                               words_per_enable=group, seed=seed)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[int(group)] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
            "metadata_bits_per_word": policy.metadata_bits_per_word,
        }
    return results


def run_inversion_granularity_comparison(network_name: str = "alexnet",
                                         data_format: str = "float32",
                                         quick: bool = True, seed: int = 0
                                         ) -> Dict[str, Dict[str, float]]:
    """Aliasing ablation: write-stream inversion vs. idealised per-location."""
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    results: Dict[str, Dict[str, float]] = {}
    for granularity in ("write", "location"):
        policy = PeriodicInversionPolicy(word_bits, granularity=granularity)
        result = AgingSimulator(stream, policy, num_inferences=scale.num_inferences,
                                seed=seed).run()
        degradation = result.snm_degradation()
        results[granularity] = {
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
            "percent_cells_at_worst": float((degradation >= degradation.max() - 0.5).mean() * 100),
        }
    return results


def run_device_model_comparison(network_name: str = "custom_mnist",
                                data_format: str = "int8_symmetric",
                                quick: bool = True, seed: int = 0
                                ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Check that the policy ranking is independent of the device aging model."""
    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    models = {
        "calibrated_power_law": None,  # default model
        "reaction_diffusion": ReactionDiffusionSnmModel(),
    }
    policies = {
        "none": lambda: NoMitigationPolicy(),
        "dnn_life": lambda: DnnLifePolicy(word_bits, trbg_bias=0.5, seed=seed),
    }
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name, model in models.items():
        per_policy: Dict[str, Dict[str, float]] = {}
        for policy_name, factory in policies.items():
            result = AgingSimulator(stream, factory(), num_inferences=scale.num_inferences,
                                    seed=seed, snm_model=model).run()
            degradation = result.snm_degradation()
            per_policy[policy_name] = {
                "mean_snm_degradation_percent": float(degradation.mean()),
                "max_snm_degradation_percent": float(degradation.max()),
            }
        results[model_name] = per_policy
    return results


def run_energy_overhead_ablation(network_name: str = "alexnet",
                                 data_format: str = "int8_symmetric",
                                 num_inferences: int = 10, seed: int = 0,
                                 policies: Optional[Iterable[str]] = None
                                 ) -> Dict[str, Dict[str, float]]:
    """Per-inference mitigation energy overhead of every policy."""
    network = attach_synthetic_weights(build_model(network_name), seed=seed)
    framework = DnnLife(network, data_format=data_format,
                        num_inferences=num_inferences, seed=seed)
    return energy_overhead_report(framework, policies)


def run_lifetime_improvement(network_name: str = "alexnet",
                             data_format: str = "float32",
                             max_degradation_percent: float = 15.0,
                             quick: bool = True, seed: int = 0) -> Dict[str, float]:
    """Lifetime extension of DNN-Life over no mitigation (extension metric)."""
    from repro.aging.lifetime import LifetimeEstimator

    stream, scale = _default_stream(network_name, data_format, quick, seed)
    word_bits = get_format(data_format).word_bits
    baseline = AgingSimulator(stream, NoMitigationPolicy(),
                              num_inferences=scale.num_inferences, seed=seed).run()
    mitigated = AgingSimulator(stream, DnnLifePolicy(word_bits, seed=seed),
                               num_inferences=scale.num_inferences, seed=seed).run()
    estimator = LifetimeEstimator(max_degradation_percent=max_degradation_percent)
    return {
        "baseline_lifetime_years": estimator.memory_lifetime_years(baseline.duty_cycles),
        "dnn_life_lifetime_years": estimator.memory_lifetime_years(mitigated.duty_cycles),
        "lifetime_improvement_factor": estimator.lifetime_improvement(
            baseline.duty_cycles, mitigated.duty_cycles),
        "max_degradation_threshold_percent": max_degradation_percent,
    }
