"""Table II — delay, power and area of the three 64-bit Write Data Encoders."""

from __future__ import annotations

from typing import Dict, List

from repro.hwsynth.synthesis import PAPER_TABLE2, table2_ascii, table2_report
from repro.hwsynth.wde_designs import TABLE2_DATAPATH_BITS
from repro.orchestration.registry import ParamSpec, register_experiment


def run_table2_wde_costs(width: int = TABLE2_DATAPATH_BITS) -> List[Dict[str, float]]:
    """One row per WDE design, with the paper's reference values attached.

    Parameters
    ----------
    width:
        Datapath width of the synthesized write-data encoders in bits
        (64 in the paper's Table II).

    Returns
    -------
    list of dict
        One row per design with measured ``delay_ps``/``power_nw``/
        ``area_cell_units`` next to the corresponding ``paper_*`` values.
    """
    rows = table2_report(width)
    for row in rows:
        reference = PAPER_TABLE2.get(row["design"], {})
        row["paper_delay_ps"] = reference.get("delay_ps")
        row["paper_power_nw"] = reference.get("power_nw")
        row["paper_area_cell_units"] = reference.get("area_cell_units")
    return rows


def table2_relative_costs(width: int = TABLE2_DATAPATH_BITS) -> Dict[str, Dict[str, float]]:
    """Costs of each design relative to the inversion WDE (measured and paper).

    The relative view is the robust comparison: the absolute numbers depend on
    the standard-cell library and synthesis constraints, but the ratios —
    barrel shifter far more expensive, the proposed design only slightly above
    plain inversion — are what the paper's argument rests on.
    """
    rows = {row["design"]: row for row in run_table2_wde_costs(width)}
    inversion = rows["Inversion based WDE"]
    paper_inversion = PAPER_TABLE2["Inversion based WDE"]
    relative: Dict[str, Dict[str, float]] = {}
    for design, row in rows.items():
        paper = PAPER_TABLE2[design]
        relative[design] = {
            "area_vs_inversion": row["area_cell_units"] / inversion["area_cell_units"],
            "power_vs_inversion": row["power_nw"] / inversion["power_nw"],
            "paper_area_vs_inversion": paper["area_cell_units"] / paper_inversion["area_cell_units"],
            "paper_power_vs_inversion": paper["power_nw"] / paper_inversion["power_nw"],
        }
    return relative


def render_table2(width: int = TABLE2_DATAPATH_BITS) -> str:
    """ASCII rendering of Table II (measured next to the paper's values)."""
    return table2_ascii(width)


register_experiment(
    name="table2",
    runner=run_table2_wde_costs,
    description="Delay/power/area of the three 64-bit Write Data Encoders",
    artifact="Table II",
    params=(
        ParamSpec("width", int, TABLE2_DATAPATH_BITS,
                  help="datapath width of the synthesized WDEs in bits"),
    ),
    renderer=lambda payload, params: render_table2(width=params["width"]),
    tags=("table", "hardware"),
)
