"""Experiment drivers.

One module per table/figure of the paper plus the ablation studies and the
parameterised sweep/workload drivers.  Every driver exposes a ``run_*``
function returning a plain-data result (ready for JSON serialization) and —
where there is an ASCII rendering — a ``render_*`` helper.

Each module *self-registers* its drivers with the experiment registry
(:mod:`repro.orchestration.registry`) at import time, declaring a name, a
parameter schema and quick/full configurations.  The ``dnn-life`` CLI and
the sweep runner dispatch exclusively through that registry, so adding a new
scenario is one ``register_experiment`` call at the bottom of a new module
(plus an entry in the registry's module list).

All aging drivers accept a ``quick`` flag: ``quick=True`` (the default used
by the benchmark suite) evaluates a reduced configuration that finishes in
seconds on a laptop while preserving the qualitative shape of the paper's
results; ``quick=False`` reproduces the full-scale configuration described
in the paper (full networks, 100 inferences).  Set the environment variable
``REPRO_FULL_EXPERIMENTS=1`` to make the benchmarks run the full versions.
"""

from repro.experiments.common import ExperimentScale, full_experiments_requested, reduce_network
from repro.experiments.fig1 import run_fig1, run_fig1_model_comparison, run_fig1_access_energy
from repro.experiments.fig2 import run_fig2_snm_curve
from repro.experiments.fig6 import run_fig6_bit_distributions
from repro.experiments.fig7 import run_fig7_probabilistic_model
from repro.experiments.fig9 import run_fig9_baseline_alexnet
from repro.experiments.fig11 import run_fig11_tpu_networks
from repro.experiments.table1 import run_table1_configurations
from repro.experiments.table2 import run_table2_wde_costs
from repro.experiments.aging_point import run_aging_point
from repro.experiments.workloads import run_compare, run_energy, run_report

__all__ = [
    "ExperimentScale",
    "full_experiments_requested",
    "reduce_network",
    "run_fig1",
    "run_fig1_model_comparison",
    "run_fig1_access_energy",
    "run_fig2_snm_curve",
    "run_fig6_bit_distributions",
    "run_fig7_probabilistic_model",
    "run_fig9_baseline_alexnet",
    "run_fig11_tpu_networks",
    "run_table1_configurations",
    "run_table2_wde_costs",
    "run_aging_point",
    "run_compare",
    "run_energy",
    "run_report",
]
