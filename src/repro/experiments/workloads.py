"""Workload-level drivers behind ``dnn-life compare/energy/report``.

These wrap :class:`repro.core.framework.DnnLife` for one (network, format)
workload: compare every mitigation policy, account the mitigation energy
overhead, or produce the full multi-section aging report.  Historically they
lived as hand-wired CLI handlers; as registered experiments they gain
parameter schemas, result caching and sweepability.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.nn.models import MODEL_ZOO
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.utils.tables import AsciiTable


def _build_framework(network: str, data_format: str, num_inferences: int, seed: int):
    from repro.core.framework import DnnLife
    from repro.nn.models import build_model
    from repro.nn.weights import attach_synthetic_weights

    workload = attach_synthetic_weights(build_model(network), seed=seed)
    return DnnLife(workload, data_format=data_format,
                   num_inferences=num_inferences, seed=seed)


def run_compare(network: str = "custom_mnist", data_format: str = "int8_symmetric",
                num_inferences: int = 50, seed: int = 0) -> Dict[str, Any]:
    """Compare the paper's six mitigation configurations on one workload.

    The policy suite is the Fig. 9 column set evaluated on the baseline
    accelerator.

    Returns
    -------
    dict
        ``{"workload": {...}, "policies": {label: summary}, "best_policy": label}``
        — see :meth:`repro.core.framework.PolicyComparison.summary`.
    """
    framework = _build_framework(network, data_format, num_inferences, seed)
    return framework.compare_policies().summary()


def render_compare(payload: Dict[str, Any], params: Dict[str, Any]) -> str:
    """Summary table of a (possibly cache-served) policy comparison."""
    workload = payload.get("workload", {})
    table = AsciiTable(
        ["policy", "mean SNM deg. [%]", "max SNM deg. [%]",
         "% cells near best", "% cells near worst"],
        title=(f"{workload.get('network')} on {workload.get('accelerator')} "
               f"({workload.get('data_format')})"),
    )
    for label, summary in payload["policies"].items():
        table.add_row([
            label,
            summary["mean_snm_degradation_percent"],
            summary["max_snm_degradation_percent"],
            summary["percent_cells_near_best"],
            summary["percent_cells_near_worst"],
        ])
    return table.render() + f"\n\nbest policy: {payload['best_policy']}"


def run_energy(network: str = "custom_mnist", data_format: str = "int8_symmetric",
               num_inferences: int = 50, seed: int = 0) -> Dict[str, Any]:
    """Per-inference mitigation energy overhead of every policy (Table II side).

    Returns
    -------
    dict
        ``{policy: energy metrics}`` — the shape of
        :func:`repro.analysis.energy.energy_overhead_report`, unchanged from
        the pre-registry CLI so existing ``--json`` consumers keep working.
    """
    from repro.analysis.energy import energy_overhead_report

    framework = _build_framework(network, data_format, num_inferences, seed)
    return energy_overhead_report(framework)


def render_energy(payload: Dict[str, Any], params: Dict[str, Any]) -> str:
    """Energy-overhead table of a (possibly cache-served) energy payload."""
    workload = {key: params.get(key) for key in
                ("network", "data_format", "num_inferences")}
    table = AsciiTable(
        ["policy", "memory energy [uJ]", "transducer energy [uJ]",
         "metadata energy [uJ]", "overhead [%]"],
        title=f"Per-inference mitigation energy overhead — {workload}",
        precision=4,
    )
    for label, entry in payload.items():
        table.add_row([
            label,
            entry["weight_memory_energy_joules"] * 1e6,
            entry["transducer_energy_joules"] * 1e6,
            entry["metadata_energy_joules"] * 1e6,
            entry["overhead_percent_of_memory_energy"],
        ])
    return table.render()


def run_report(network: str = "custom_mnist", data_format: str = "int8_symmetric",
               num_inferences: int = 50, seed: int = 0) -> Dict[str, Any]:
    """Full multi-section aging report for one workload.

    Returns
    -------
    dict
        ``{"summary": WorkloadReport.summary(), "rendered": str}`` — the
        rendered text is embedded so cached reports re-print without
        re-simulating.
    """
    from repro.analysis.report import WorkloadReport

    framework = _build_framework(network, data_format, num_inferences, seed)
    report = WorkloadReport(framework)
    return {"summary": report.summary(), "rendered": report.render()}


_WORKLOAD_PARAMS = (
    ParamSpec("network", str, "custom_mnist", choices=tuple(sorted(MODEL_ZOO)),
              help="workload network"),
    ParamSpec("data_format", str, "int8_symmetric", flag="--format",
              help="weight data format"),
    ParamSpec("num_inferences", int, 50, flag="--inferences", positive=True,
              help="inference epochs"),
    ParamSpec("seed", int, 0, help="weight/policy seed"),
)

register_experiment(
    name="compare",
    runner=run_compare,
    description="Compare all mitigation policies on one (network, format) workload",
    artifact="Fig. 9 policy suite",
    params=_WORKLOAD_PARAMS,
    renderer=render_compare,
    tags=("workload", "aging"),
)

register_experiment(
    name="energy",
    runner=run_energy,
    description="Mitigation energy overhead of every policy on one workload",
    artifact="Table II energy discussion",
    params=_WORKLOAD_PARAMS,
    renderer=render_energy,
    tags=("workload", "energy"),
)

register_experiment(
    name="report",
    runner=run_report,
    description="Full multi-section aging report for one workload",
    artifact="end-to-end framework (Fig. 3)",
    params=_WORKLOAD_PARAMS,
    renderer=lambda payload, params: payload["rendered"],
    tags=("workload", "report"),
)
