"""Wear-leveling design-point experiment — leveling vs (and with) inversion.

The paper's encoding policies balance duty-cycles *within* a word; the
:mod:`repro.leveling` remap engine balances *where* the stress lands.  This
driver evaluates one fully-parameterised point of the combined space — a
network, a quantization format, a mitigation (inversion) policy, a
wear-leveling policy and a weight-memory geometry — and reports the spatial
wear picture with and without the leveler under identical weights and seeds::

    dnn-life level --network custom_mnist --leveling wear_swap --fifo-depth-tiles 4
    dnn-life sweep leveling \
        --grid policy=none,inversion,dnn_life \
        --grid leveling=none,rotation,start_gap,wear_swap \
        --grid fifo_depth_tiles=1,4

The headline metric is ``region_imbalance_pp`` from
:class:`~repro.memory.wear_map.WearMap`: the spread of mean SNM degradation
across memory regions, which the wear-map-guided swap attacks directly (its
hot/cold swaps cross FIFO-tile boundaries) while the rotation policies level
rows *within* each region.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.core.policies import make_policy
from repro.core.simulation import AgingSimulator
from repro.experiments.aging_point import POLICY_CHOICES
from repro.experiments.aging_runner import build_workload_stream
from repro.experiments.common import (
    ExperimentScale,
    check_non_negative,
    check_swap_fraction,
)
from repro.leveling import LEVELER_CHOICES, WearLeveler, make_leveler
from repro.memory.wear_map import default_wear_regions, wear_map_from_result
from repro.nn.models import MODEL_ZOO
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.quantization.formats import get_format
from repro.utils.units import KB


def build_point_leveler(leveling: str, geometry, fifo_depth_tiles: int,
                        leveling_period: int, rotation_step: int,
                        swap_fraction: float) -> Optional[WearLeveler]:
    """Resolve this experiment's leveling parameters into a leveler instance.

    ``leveling_period`` is the one scheduling knob all three policies share:
    the rotation period, the start-gap shift interval and the wear-swap
    interval respectively.  Returns ``None`` for ``leveling="none"`` so the
    baseline simulation path is taken verbatim.
    """
    if leveling == "none":
        return None
    if leveling == "rotation":
        return make_leveler("rotation", geometry, fifo_depth_tiles,
                            period=leveling_period, step=rotation_step)
    if leveling == "start_gap":
        return make_leveler("start_gap", geometry, fifo_depth_tiles,
                            interval=leveling_period)
    return make_leveler("wear_swap", geometry, fifo_depth_tiles,
                        interval=leveling_period, swap_fraction=swap_fraction)


def _panel(result, num_regions: int, max_render_rows: int) -> Dict[str, object]:
    """Wear-map view of one simulation result (JSON-safe, render precomputed)."""
    wear = wear_map_from_result(result, num_regions=num_regions)
    return {
        "summary": result.summary(),
        "wear": wear.summary(),
        "wear_render": wear.render(max_rows=max_render_rows),
    }


def run_leveling_point(network: str = "lenet5",
                       data_format: str = "int8_symmetric",
                       policy: str = "none",
                       leveling: str = "wear_swap",
                       weight_memory_kb: int = 8,
                       fifo_depth_tiles: int = 4,
                       num_inferences: int = 20,
                       leveling_period: int = 2,
                       rotation_step: int = 1,
                       swap_fraction: float = 0.5,
                       quick: bool = True,
                       seed: int = 0) -> Dict[str, object]:
    """Leveling-vs-baseline aging of one design point.

    Runs the configured (network, format, policy, geometry) workload twice on
    the packed engine — without leveling and with the requested leveler —
    under identical weights and seeds, and reports both spatial wear
    summaries plus the resulting ``region_imbalance_pp`` delta.

    Parameters
    ----------
    leveling:
        Wear-leveling policy (see :data:`repro.leveling.LEVELER_CHOICES`).
    leveling_period:
        Epochs per leveling step: the rotation period, start-gap shift
        interval or wear-swap interval.
    rotation_step:
        Rows the rotation policy advances per inference.
    swap_fraction:
        Fraction of rows the wear-guided swap exchanges per event.

    The remaining parameters match the ``aging`` experiment.
    """
    scale = ExperimentScale.from_quick_flag(quick)
    config = replace(baseline_config(), name="leveling_point",
                     weight_memory_bytes=int(weight_memory_kb) * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    accelerator = BaselineAccelerator(config=config)
    stream = build_workload_stream(network, accelerator, data_format, scale, seed=seed)
    geometry = stream.geometry
    word_bits = get_format(data_format).word_bits
    leveler = build_point_leveler(leveling, geometry, fifo_depth_tiles,
                                  leveling_period, rotation_step, swap_fraction)

    def simulate(active_leveler):
        resolved = make_policy(policy, word_bits, seed=seed)
        simulator = AgingSimulator(stream, resolved, num_inferences=num_inferences,
                                   seed=seed, leveler=active_leveler)
        return simulator.run()

    num_regions = default_wear_regions(geometry.rows, fifo_depth_tiles)
    max_render_rows = 16
    baseline = _panel(simulate(None), num_regions, max_render_rows)
    leveled = _panel(simulate(leveler), num_regions, max_render_rows)
    baseline_imbalance = baseline["wear"]["region_imbalance_pp"]
    leveled_imbalance = leveled["wear"]["region_imbalance_pp"]
    return {
        "workload": {
            "network": network,
            "data_format": data_format,
            "policy": policy,
            "leveling": leveling,
            "weight_memory_kb": int(weight_memory_kb),
            "fifo_depth_tiles": int(fifo_depth_tiles),
            "num_inferences": int(num_inferences),
            "leveling_period": int(leveling_period),
            "rotation_step": int(rotation_step),
            "swap_fraction": float(swap_fraction),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "leveler": (leveler.describe() if leveler is not None
                    else {"leveler": "none"}),
        "wear_regions": num_regions,
        "baseline": baseline,
        "leveled": leveled,
        "region_imbalance_pp": {
            "baseline": baseline_imbalance,
            "leveled": leveled_imbalance,
            "reduction": baseline_imbalance - leveled_imbalance,
        },
    }


def render_leveling_point(payload: Dict[str, object], params: Dict[str, object]) -> str:
    """Before/after wear maps plus the region-imbalance verdict."""
    workload = payload["workload"]
    imbalance = payload["region_imbalance_pp"]
    sections = [
        (f"=== leveling — {workload['network']}, {workload['data_format']}, "
         f"{workload['weight_memory_kb']} KB x {workload['fifo_depth_tiles']} tiles, "
         f"policy: {workload['policy']}, leveling: {workload['leveling']} ==="),
        "-- without leveling --",
        payload["baseline"]["wear_render"],
        f"-- with leveling ({workload['leveling']}) --",
        payload["leveled"]["wear_render"],
        (f"region_imbalance_pp: {imbalance['baseline']:.3f} -> "
         f"{imbalance['leveled']:.3f} "
         f"({'-' if imbalance['reduction'] >= 0 else '+'}"
         f"{abs(imbalance['reduction']):.3f} pp)"),
        (f"mean SNM degradation: "
         f"{payload['baseline']['summary']['mean_snm_degradation_percent']:.3f}% -> "
         f"{payload['leveled']['summary']['mean_snm_degradation_percent']:.3f}%"),
    ]
    return "\n\n".join(sections)


register_experiment(
    name="leveling",
    runner=run_leveling_point,
    description="Wear-leveling vs no-leveling aging of one (network x format x "
                "policy x leveler x memory geometry) design point",
    artifact="wear-leveling scenario axis (extension)",
    params=(
        ParamSpec("network", str, "lenet5", choices=tuple(sorted(MODEL_ZOO)),
                  help="workload network"),
        ParamSpec("data_format", str, "int8_symmetric", flag="--format",
                  help="weight data format"),
        ParamSpec("policy", str, "none", choices=POLICY_CHOICES,
                  help="mitigation (encoding) policy"),
        ParamSpec("leveling", str, "wear_swap", choices=LEVELER_CHOICES,
                  help="wear-leveling policy"),
        ParamSpec("weight_memory_kb", int, 8, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 4, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("num_inferences", int, 20, flag="--inferences",
                  positive=True, help="inference epochs"),
        ParamSpec("leveling_period", int, 2, positive=True,
                  help="epochs per leveling step (rotation period / shift "
                       "interval / swap interval)"),
        ParamSpec("rotation_step", int, 1, validator=check_non_negative,
                  help="rows rotated per inference"),
        ParamSpec("swap_fraction", float, 0.5, validator=check_swap_fraction,
                  help="fraction of rows the wear-guided swap exchanges"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0, help="weight/policy seed"),
    ),
    full_config={"quick": False, "num_inferences": 100},
    renderer=render_leveling_point,
    tags=("sweep", "aging", "leveling"),
    # Jobs agreeing on these parameters stream the same weight blocks; the
    # sweep runner batches them onto one worker so the process-local stream
    # cache (and its packed bit tensor) is built once per workload.
    affinity=("network", "data_format", "weight_memory_kb", "fifo_depth_tiles",
              "quick", "seed"),
)
