"""Fleet-scale Monte Carlo lifetime experiment — the population sweep target.

Where ``dnn-life scenario`` asks "when does *this* device die", ``dnn-life
fleet`` asks the deployment question: across a population of devices drawn
from per-device distributions (scenario mix, DVFS shipping corner, usage
intensity, thermal environment), what fraction survives to year ``t``, where
do the failure-time quantiles sit, and which mechanism — SNM wear-out or
idle retention — kills each device first::

    dnn-life fleet --devices 256 \
        --mix "0.7*lenet5:int8:dnn_life:10@85C,idle:5@45C@0.7V:0.2GHz|0.3*custom_mnist:int8:inversion:10@45C" \
        --corners "0.5*0.9V:1GHz,0.5*0.8V:0.5GHz" \
        --usage-sigma 0.3 --thermal-sigma 5

    dnn-life sweep fleet \
        --grid corners=";0.9V:1GHz;0.8V:0.5GHz;0.72V:0.5GHz" \
        --grid leveling=none,wear_swap

(as with scenario specs, mixes containing commas ride a sweep axis through
the alternate-separator convention: start the ``--grid`` value list with
``;``, ``|`` or ``/``.)

Devices sharing (scenario, seed group) form a cohort evaluated by ONE packed
scenario run — see :mod:`repro.fleet.simulator` for the closed-form device
axis — so a thousand-device population costs a handful of kernel
evaluations, and sweep jobs agreeing on the geometry/seed affinity keys ride
the per-process stream cache across fleet points.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.experiments.common import (
    ExperimentScale,
    check_non_negative,
    check_swap_fraction,
)
from repro.experiments.leveling import build_point_leveler
from repro.fleet import FleetSimulator, FleetSpec, parse_corner_spec, parse_mix_spec
from repro.leveling import LEVELER_CHOICES
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.scenario.driver import scenario_stream_factory
from repro.scenario.phases import LifetimeScenario
from repro.utils.tables import AsciiTable
from repro.utils.validation import check_temperature_celsius
from repro.utils.units import KB

#: Default population: a deployment/retirement mix with a cool idle
#: retention stretch, shipped at two DVFS corners.
DEFAULT_MIX = ("0.6*lenet5:int8:dnn_life:10@85C,idle:5@45C@0.7V:0.2GHz|"
               "0.4*custom_mnist:int8:inversion:10@45C")
DEFAULT_CORNERS = "0.5*0.9V:1GHz,0.5*0.8V:0.5GHz"


def _check_mix(mix: str) -> None:
    """Schema validator: parse the weighted scenario mix, incl. each spec."""
    parse_mix_spec(mix)


def _check_corners(corners: str) -> None:
    """Schema validator: parse the weighted DVFS corner set."""
    parse_corner_spec(corners)


def run_fleet_point(devices: int = 64,
                    mix: str = DEFAULT_MIX,
                    corners: str = DEFAULT_CORNERS,
                    usage_sigma: float = 0.3,
                    thermal_sigma_c: float = 5.0,
                    seed_groups: int = 2,
                    weight_memory_kb: int = 8,
                    fifo_depth_tiles: int = 1,
                    leveling: str = "none",
                    leveling_period: int = 2,
                    rotation_step: int = 1,
                    swap_fraction: float = 0.5,
                    years: float = 7.0,
                    reference_temperature_c: float = 85.0,
                    max_degradation_percent: float = 15.0,
                    quick: bool = True,
                    seed: int = 0) -> Dict[str, object]:
    """Population lifetime of a device fleet.

    Parameters
    ----------
    devices:
        Population size (number of sampled devices).
    mix:
        ``|``-separated weighted scenario mix, each entry
        ``[WEIGHT*]PHASE-SPEC``; weights default to uniform and must sum
        to 1 when given.
    corners:
        ``,``-separated weighted DVFS shipping corners ``[WEIGHT*]V:F``,
        applied as each device's default operating point (phases pinning
        their own ``@V:F`` keep it).
    usage_sigma / thermal_sigma_c:
        Device-to-device spread: lognormal sigma of the mean-1 usage
        intensity and normal sigma (Celsius) of the thermal offset.
    seed_groups:
        Number of distinct policy/stream seeds across the population;
        devices sharing (scenario, seed group) form one cohort.
    weight_memory_kb / fifo_depth_tiles / leveling...:
        Geometry and wear-leveling policy, as in the scenario experiment.
    years / reference_temperature_c / max_degradation_percent:
        Wall-clock span per timeline pass, Arrhenius anchor and
        SNM-degradation failure threshold.
    quick / seed:
        Scale cap and the fleet's base sampling/policy seed.
    """
    scenarios, scenario_weights = parse_mix_spec(mix)
    corner_points, corner_weights = parse_corner_spec(corners)
    spec = FleetSpec(num_devices=devices,
                     scenarios=scenarios,
                     scenario_weights=scenario_weights,
                     years=years,
                     reference_temperature_c=reference_temperature_c,
                     corners=corner_points,
                     corner_weights=corner_weights,
                     usage_sigma=usage_sigma,
                     thermal_sigma_c=thermal_sigma_c,
                     seed_groups=seed_groups,
                     seed=seed)
    scale = ExperimentScale.from_quick_flag(quick)
    config = replace(baseline_config(), name="fleet_point",
                     weight_memory_bytes=int(weight_memory_kb) * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    accelerator = BaselineAccelerator(config=config)
    factory = scenario_stream_factory(accelerator=accelerator, scale=scale,
                                      seed=seed)
    first = LifetimeScenario.from_spec(scenarios[0])
    geometry = factory(first.active_phases[0]).geometry
    leveler = build_point_leveler(leveling, geometry, fifo_depth_tiles,
                                  leveling_period, rotation_step, swap_fraction)
    simulator = FleetSimulator(spec, stream_factory=factory, leveler=leveler,
                               max_degradation_percent=max_degradation_percent)
    result = simulator.run()

    summary = result.summary()
    # Strict-JSON safety: quantiles of a population where some devices never
    # fail can be infinite; encode those as null, as FleetResult.to_payload
    # does for the per-device arrays.
    quantiles = {label: (value if math.isfinite(value) else None)
                 for label, value in summary["quantiles_years"].items()}
    return {
        "workload": {
            "devices": int(devices),
            "mix": mix,
            "corners": corners,
            "usage_sigma": float(usage_sigma),
            "thermal_sigma_c": float(thermal_sigma_c),
            "seed_groups": int(seed_groups),
            "weight_memory_kb": int(weight_memory_kb),
            "fifo_depth_tiles": int(fifo_depth_tiles),
            "leveling": leveling,
            "leveling_period": int(leveling_period),
            "rotation_step": int(rotation_step),
            "swap_fraction": float(swap_fraction),
            "years": float(years),
            "reference_temperature_c": float(reference_temperature_c),
            "max_degradation_percent": float(max_degradation_percent),
            "quick": bool(quick),
            "seed": int(seed),
        },
        "population": spec.describe(),
        "quantiles_years": quantiles,
        "survival": {
            "times_years": summary["survival_times_years"],
            "fraction": summary["survival_fraction"],
        },
        "modes": summary["modes"],
        "failure": {
            "median_snm_years": summary["median_snm_years"],
            "fraction_retention_limited": summary["fraction_retention_limited"],
            "never_failing": int(sum(value is None
                                     for value in result.to_payload()["failure_years"])),
        },
        "cohorts": [{
            "scenario_index": entry["scenario_index"],
            "seed_group": entry["seed_group"],
            "seed": entry["seed"],
            "num_devices": entry["num_devices"],
            "spec": entry["spec"],
        } for entry in result.cohorts],
        "leveler": (leveler.describe() if leveler is not None
                    else {"leveler": "none"}),
    }


def _render_survival(times, fraction, width: int = 40) -> str:
    """ASCII survival curve: population fraction alive over wall-clock years."""
    lines = ["-- population survival"]
    for t, s in zip(times[:: max(1, len(times) // 16)],
                    fraction[:: max(1, len(times) // 16)]):
        bar = "#" * int(round(width * s))
        lines.append(f"{t:8.2f}y |{bar:<{width}}| {100 * s:5.1f}% alive")
    return "\n".join(lines)


def render_fleet_point(payload: Dict[str, object], params: Dict[str, object]) -> str:
    """Quantile table + survival sketch + failure-mode split + cohort map."""
    workload = payload["workload"]
    quantiles = payload["quantiles_years"]
    table = AsciiTable(
        ["quantile", "failure year"],
        title=(f"=== fleet — {workload['devices']} devices, "
               f"{len(payload['cohorts'])} cohorts, leveling: "
               f"{workload['leveling']} ==="),
        precision=3,
    )
    for label, value in quantiles.items():
        table.add_row([label, "never" if value is None else value])
    cohort_table = AsciiTable(
        ["scenario", "seed group", "devices", "spec"],
        title="-- cohorts (one packed run each)")
    for entry in payload["cohorts"]:
        spec_text = entry["spec"]
        if len(spec_text) > 48:
            spec_text = spec_text[:45] + "..."
        cohort_table.add_row([entry["scenario_index"], entry["seed_group"],
                              entry["num_devices"], spec_text])
    modes = payload["modes"]
    failure = payload["failure"]
    mode_line = ", ".join(f"{name}: {count}" for name, count in sorted(modes.items()))
    survival = payload["survival"]
    return "\n\n".join([
        table.render(),
        _render_survival(survival["times_years"], survival["fraction"]),
        (f"failure modes — {mode_line} "
         f"({100 * failure['fraction_retention_limited']:.1f}% retention-limited, "
         f"{failure['never_failing']} devices never fail)"),
        cohort_table.render(),
    ])


register_experiment(
    name="fleet",
    runner=run_fleet_point,
    description="Fleet-scale Monte Carlo lifetime: population survival curves, "
                "failure-time quantiles and SNM-vs-retention attribution via "
                "cohort-shared scenario kernels",
    artifact="population-lifetime axis (extension)",
    params=(
        ParamSpec("devices", int, 64, positive=True,
                  help="population size (number of sampled devices)"),
        ParamSpec("mix", str, DEFAULT_MIX, validator=_check_mix,
                  help="|-separated weighted scenario mix "
                       "([WEIGHT*]PHASE-SPEC|...); weights must sum to 1"),
        ParamSpec("corners", str, DEFAULT_CORNERS, validator=_check_corners,
                  help=",-separated weighted DVFS shipping corners "
                       "([WEIGHT*]V:F,...); weights must sum to 1"),
        ParamSpec("usage_sigma", float, 0.3, flag="--usage-sigma",
                  validator=check_non_negative,
                  help="lognormal sigma of the mean-1 usage intensity"),
        ParamSpec("thermal_sigma_c", float, 5.0, flag="--thermal-sigma",
                  validator=check_non_negative,
                  help="normal sigma (C) of the per-device thermal offset"),
        ParamSpec("seed_groups", int, 2, positive=True,
                  help="distinct policy/stream seeds across the population"),
        ParamSpec("weight_memory_kb", int, 8, flag="--memory-kb",
                  positive=True, help="weight-memory capacity in KB"),
        ParamSpec("fifo_depth_tiles", int, 1, positive=True,
                  help="FIFO tiles (1 = monolithic)"),
        ParamSpec("leveling", str, "none", choices=LEVELER_CHOICES,
                  help="wear-leveling policy (shared by every cohort)"),
        ParamSpec("leveling_period", int, 2, positive=True,
                  help="epochs per leveling step"),
        ParamSpec("rotation_step", int, 1, validator=check_non_negative,
                  help="rows rotated per inference"),
        ParamSpec("swap_fraction", float, 0.5, validator=check_swap_fraction,
                  help="fraction of rows the wear-guided swap exchanges"),
        ParamSpec("years", float, 7.0, positive=True,
                  help="wall-clock span of one timeline pass"),
        ParamSpec("reference_temperature_c", float, 85.0, flag="--reference-temp",
                  validator=check_temperature_celsius,
                  help="Arrhenius reference corner in Celsius"),
        ParamSpec("max_degradation_percent", float, 15.0, flag="--max-degradation",
                  positive=True, help="SNM-loss threshold of the failure model"),
        ParamSpec("quick", bool, True, help="cap per-layer weight counts"),
        ParamSpec("seed", int, 0, help="fleet sampling / policy base seed"),
    ),
    full_config={"quick": False, "devices": 1024},
    renderer=render_fleet_point,
    tags=("sweep", "aging", "scenario", "fleet"),
    # Jobs agreeing on these parameters share the per-process stream cache
    # (one cached stream per distinct phase workload across the mix).
    affinity=("weight_memory_kb", "fifo_depth_tiles", "quick", "seed"),
)
