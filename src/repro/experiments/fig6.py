"""Fig. 6 — distribution of weight bits of AlexNet and VGG-16 under three
data representation formats (float32, int8 symmetric, int8 asymmetric)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.bit_distribution import (
    BitDistributionResult,
    analyze_network_bit_distribution,
    bit_distribution_table,
)
from repro.experiments.common import ExperimentScale
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.quantization.formats import PAPER_FORMATS

#: Networks analysed in Fig. 6.
FIG6_NETWORKS = ("alexnet", "vgg16")


def run_fig6_bit_distributions(networks: Iterable[str] = FIG6_NETWORKS,
                               data_formats: Optional[Iterable[str]] = None,
                               quick: bool = True, seed: int = 0
                               ) -> Dict[str, Dict[str, BitDistributionResult]]:
    """Bit probabilities for every (network, format) pair of Fig. 6.

    Parameters
    ----------
    networks:
        Networks to analyse (``alexnet`` and ``vgg16`` in the paper).
    data_formats:
        Data formats (default: the paper's three formats).
    quick, seed:
        Experiment scale and synthetic-weight seed.

    Returns
    -------
    dict
        ``{network: {format: BitDistributionResult}}``.
    """
    scale = ExperimentScale.from_quick_flag(quick)
    data_formats = list(data_formats) if data_formats is not None else list(PAPER_FORMATS)
    results: Dict[str, Dict[str, BitDistributionResult]] = {}
    for name in networks:
        network = attach_synthetic_weights(build_model(name), seed=seed)
        results[name] = analyze_network_bit_distribution(
            network, data_formats, max_weights_per_layer=scale.max_weights_per_layer)
    return results


def render_fig6(quick: bool = True, seed: int = 0) -> str:
    """ASCII rendering of all Fig. 6 panels."""
    sections = []
    for name, per_format in run_fig6_bit_distributions(quick=quick, seed=seed).items():
        sections.append(bit_distribution_table(per_format).render())
    return "\n\n".join(sections)


def fig6_observations(quick: bool = True, seed: int = 0) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The paper's three Sec. III-A observations quantified per network/format.

    Returns
    -------
    dict
        ``{network: {format: {"average_probability",
        "max_deviation_from_half", "balanced"}}}``
        (see :func:`repro.analysis.bit_distribution.format_balance_summary`).
    """
    from repro.analysis.bit_distribution import format_balance_summary

    return {
        name: format_balance_summary(per_format)
        for name, per_format in run_fig6_bit_distributions(quick=quick, seed=seed).items()
    }


def run_fig6(quick: bool = True, seed: int = 0) -> Dict[str, object]:
    """Fig. 6 observations *and* rendering from a single analysis pass.

    Computes the per-(network, format) bit distributions once and derives
    both the quantified Sec. III-A observations and the ASCII tables from
    the same results, so the registered experiment simulates exactly once
    and cache hits re-print without re-analysing.

    Returns
    -------
    dict
        ``{"observations": {network: {format: balance summary}},
        "rendered": str}``.
    """
    from repro.analysis.bit_distribution import format_balance_summary

    results = run_fig6_bit_distributions(quick=quick, seed=seed)
    rendered = "\n\n".join(bit_distribution_table(per_format).render()
                            for per_format in results.values())
    observations = {name: format_balance_summary(per_format)
                    for name, per_format in results.items()}
    return {"observations": observations, "rendered": rendered}


register_experiment(
    name="fig6",
    runner=run_fig6,
    description="Weight-bit distributions of AlexNet/VGG-16 under three data formats",
    artifact="Fig. 6",
    params=(
        ParamSpec("quick", bool, True,
                  help="reduced configuration (capped weights per layer)"),
        ParamSpec("seed", int, 0, help="synthetic-weight seed"),
    ),
    full_config={"quick": False},
    renderer=lambda payload, params: payload["rendered"],
    tags=("figure", "analysis"),
)
