"""Fig. 7 — the probabilistic duty-cycle model (Eq. 1) for K = 20 and K = 160.

The paper's example case study (Sec. III-B): with K = 20 blocks and a balanced
bit distribution (rho = 0.5), more than 10% of cells are expected to see a
duty-cycle at most 0.3 (or at least 0.7); raising the effective K to 160
(e.g. seven additional shift positions) collapses those tail probabilities.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aging.probabilistic import (
    duty_cycle_tail_probability,
    fig7_sweep,
    probability_at_least_n_cells,
)
from repro.orchestration.registry import ParamSpec, register_experiment
from repro.utils.tables import format_series

#: The two K values shown in Fig. 7.
FIG7_K_VALUES = (20, 160)
#: Memory size of the example case study (I x J cells).
FIG7_NUM_CELLS = 8192


def run_fig7_probabilistic_model(rho: float = 0.5) -> Dict[int, List[Dict[str, float]]]:
    """Eq. (1) sweeps for both K values of Fig. 7.

    Parameters
    ----------
    rho:
        Probability of a weight bit being 1 (0.5 = balanced distribution).

    Returns
    -------
    dict
        ``{K: [{"b_over_k", "probability"}, ...]}`` for K in (20, 160).
    """
    results: Dict[int, List[Dict[str, float]]] = {}
    for num_blocks in FIG7_K_VALUES:
        b_over_k, probabilities = fig7_sweep(num_blocks, rho)
        results[num_blocks] = [
            {"b_over_k": float(x), "probability": float(p)}
            for x, p in zip(b_over_k, probabilities)
        ]
    return results


def run_fig7_case_study(rho: float = 0.5) -> Dict[str, float]:
    """The quantitative claims the paper makes about Fig. 7.

    Returns
    -------
    dict
        Tail probabilities at b/K = 0.3 for K = 20 and K = 160, the expected
        number of unbalanced cells in the 8192-cell example memory, and the
        probability of at least 100 unbalanced cells.
    """
    p_k20_b6 = duty_cycle_tail_probability(20, rho, 6)      # b/K = 0.3
    p_k160_b48 = duty_cycle_tail_probability(160, rho, 48)  # b/K = 0.3
    return {
        "P(duty<=0.3 or >=0.7) @ K=20": p_k20_b6,
        "P(duty<=0.3 or >=0.7) @ K=160": p_k160_b48,
        "expected_unbalanced_cells_K20": p_k20_b6 * FIG7_NUM_CELLS,
        "expected_unbalanced_cells_K160": p_k160_b48 * FIG7_NUM_CELLS,
        "P(at least 100 cells unbalanced) @ K=20": probability_at_least_n_cells(
            FIG7_NUM_CELLS, p_k20_b6, 100),
        "P(at least 100 cells unbalanced) @ K=160": probability_at_least_n_cells(
            FIG7_NUM_CELLS, p_k160_b48, 100),
    }


def render_fig7(rho: float = 0.5) -> str:
    """ASCII rendering of both Fig. 7 panels."""
    sections = []
    for num_blocks, rows in run_fig7_probabilistic_model(rho).items():
        sections.append(format_series(
            [row["b_over_k"] for row in rows],
            [row["probability"] for row in rows],
            x_name="b/K",
            y_name="P(duty <= b/K or >= 1-b/K)",
            title=f"Fig. 7 — probabilistic model, K = {num_blocks}, rho = {rho}",
            precision=4,
        ))
    return "\n\n".join(sections)


register_experiment(
    name="fig7",
    runner=run_fig7_case_study,
    description="Probabilistic duty-cycle model (Eq. 1) case study for K=20 vs K=160",
    artifact="Fig. 7",
    params=(
        ParamSpec("rho", float, 0.5, help="probability of a weight bit being 1"),
    ),
    renderer=lambda payload, params: render_fig7(rho=params["rho"]),
    tags=("figure", "model"),
)
