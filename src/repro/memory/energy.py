"""Analytic memory access-energy model.

Reproduces the motivation data of Fig. 1b (access energy of a 32-bit word from
a 32 KB on-chip SRAM versus off-chip DRAM, after Sze et al., "Efficient
processing of deep neural networks") and provides the per-access energy
figures used by the energy-overhead analysis of the mitigation hardware.

The SRAM model follows the usual CACTI-style observation that access energy
grows roughly with the square root of capacity (longer bit-lines/word-lines),
anchored at the published 32 KB / 32-bit figure.  DRAM access energy is
dominated by the off-chip interface and is modelled as a flat per-bit cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import KB
from repro.utils.validation import check_positive

#: Published anchor: reading 32 bits from a 32 KB SRAM costs ~5 pJ,
#: while a 32-bit DRAM access costs ~640 pJ (two orders of magnitude more).
SRAM_32KB_32BIT_ACCESS_PJ = 5.0
DRAM_32BIT_ACCESS_PJ = 640.0


def sram_access_energy(capacity_bytes: float, access_bits: int = 32) -> float:
    """Energy (Joules) of one read/write access of ``access_bits`` bits.

    Scales with sqrt(capacity) from the 32 KB anchor point.
    """
    check_positive(capacity_bytes, "capacity_bytes")
    check_positive(access_bits, "access_bits")
    scale = np.sqrt(capacity_bytes / (32.0 * KB))
    per_bit = SRAM_32KB_32BIT_ACCESS_PJ / 32.0
    return float(per_bit * access_bits * scale) * 1e-12


def dram_access_energy(access_bits: int = 32) -> float:
    """Energy (Joules) of one off-chip DRAM access of ``access_bits`` bits."""
    check_positive(access_bits, "access_bits")
    return float(DRAM_32BIT_ACCESS_PJ / 32.0 * access_bits) * 1e-12


@dataclass(frozen=True)
class MemoryEnergyModel:
    """Per-memory energy model used by the system-level energy accounting.

    Attributes
    ----------
    capacity_bytes:
        On-chip memory capacity.
    word_bits:
        Access width in bits.
    """

    capacity_bytes: int
    word_bits: int

    @property
    def read_energy(self) -> float:
        """Energy of one word read (Joules)."""
        return sram_access_energy(self.capacity_bytes, self.word_bits)

    @property
    def write_energy(self) -> float:
        """Energy of one word write (Joules).

        Writes are marginally more expensive than reads in small SRAM macros;
        a 10% uplift is typical and sufficient for relative comparisons.
        """
        return self.read_energy * 1.1

    @property
    def dram_transfer_energy(self) -> float:
        """Energy of bringing one word in from DRAM (Joules)."""
        return dram_access_energy(self.word_bits)

    def inference_write_energy(self, words_written: int) -> float:
        """Energy of writing ``words_written`` words into the memory."""
        return self.write_energy * int(words_written)

    def inference_read_energy(self, words_read: int) -> float:
        """Energy of reading ``words_read`` words from the memory."""
        return self.read_energy * int(words_read)

    def energy_ratio_vs_dram(self) -> float:
        """How many times cheaper an on-chip access is than a DRAM access."""
        return self.dram_transfer_energy / self.read_energy
