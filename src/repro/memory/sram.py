"""Vectorized 6T-SRAM array model.

The array holds ``rows`` words of ``word_bits`` bits (``rows x word_bits``
cells).  Every write of a word replaces the content of one row; the array
accumulates, per cell, the time spent storing a '1' so that per-cell
duty-cycles — the quantity NBTI aging depends on — can be read out at any
point.

Two usage patterns are supported:

* **explicit write streams** (``write_rows`` / ``write_block``), used by the
  integration tests and the functional accelerator path.  Residency-weighted
  accumulation happens at the *next* write of a row (or at ``finalize``), so
  arbitrary per-block residency times are handled exactly;
* **bulk duty accumulation** (``accumulate_block``) used by the fast
  policy-level simulator, which adds precomputed per-cell hold contributions
  directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.memory.geometry import MemoryGeometry
from repro.quantization.bitops import unpack_bits


class SramArray:
    """An ``I x J`` array of 6T-SRAM cells with duty-cycle bookkeeping."""

    def __init__(self, geometry: MemoryGeometry, initial_value: int = 0):
        self.geometry = geometry
        if initial_value not in (0, 1):
            raise ValueError("initial_value must be 0 or 1")
        rows, bits = geometry.rows, geometry.word_bits
        #: Bits currently stored in every cell.
        self._content = np.full((rows, bits), initial_value, dtype=np.uint8)
        #: Accumulated time each cell has spent storing a '1'.
        self._ones_time = np.zeros((rows, bits), dtype=np.float64)
        #: Accumulated total hold time of each cell.
        self._total_time = np.zeros((rows, bits), dtype=np.float64)
        #: Simulation timestamp (arbitrary units) of the last update per row.
        self._last_update = np.zeros(rows, dtype=np.float64)
        #: Current simulation time.
        self._now = 0.0

    # ------------------------------------------------------------------ #
    # Explicit write-stream interface
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time (advances with ``advance_time``)."""
        return self._now

    def advance_time(self, duration: float) -> None:
        """Advance simulation time; rows keep holding their current content."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._now += duration

    def _account_holds(self, row_indices: np.ndarray) -> None:
        """Credit hold time of the given rows from their last update to now."""
        durations = self._now - self._last_update[row_indices]
        if np.any(durations < 0):  # pragma: no cover - defensive
            raise RuntimeError("simulation time moved backwards")
        content = self._content[row_indices].astype(np.float64)
        self._ones_time[row_indices] += content * durations[:, None]
        self._total_time[row_indices] += durations[:, None]
        self._last_update[row_indices] = self._now

    def _check_row_indices(self, row_indices: np.ndarray) -> np.ndarray:
        """Validate row indices: in ``[0, rows)``, no silent negative wraparound."""
        row_indices = np.asarray(row_indices, dtype=np.int64).reshape(-1)
        if row_indices.size and (row_indices.min() < 0
                                 or row_indices.max() >= self.geometry.rows):
            raise IndexError(
                f"row index out of range [0, {self.geometry.rows}) — negative "
                "indices are rejected rather than wrapped around")
        return row_indices

    def write_rows(self, row_indices: np.ndarray, words: np.ndarray) -> None:
        """Write ``words`` into the given rows at the current simulation time.

        Every row may appear at most once per call: two writes of the same
        row at one instant have no defined hold-accounting order, and numpy's
        fancy ``+=`` would silently drop all but one of the duplicate hold
        credits.  Split such writes into separate calls instead.
        """
        row_indices = self._check_row_indices(row_indices)
        words = np.asarray(words).reshape(-1)
        if row_indices.size != words.size:
            raise ValueError("row_indices and words must have equal length")
        if row_indices.size == 0:
            return
        if np.unique(row_indices).size != row_indices.size:
            raise ValueError(
                "duplicate row indices within one write call; fancy-index "
                "accumulation would drop hold credits — issue separate writes")
        self._account_holds(row_indices)
        self._content[row_indices] = unpack_bits(words, self.geometry.word_bits)

    def write_block(self, words: np.ndarray, residency: float = 1.0,
                    start_row: int = 0,
                    row_map: Optional[np.ndarray] = None) -> None:
        """Write a block starting at ``start_row``, then hold it for ``residency``.

        This matches the paper's dataflow assumption: each block occupies the
        memory for an equal amount of time and is fetched once per inference.
        Blocks shorter than the memory only overwrite the rows they cover;
        FIFO-organised memories pass the tile offset as ``start_row``.

        ``row_map`` optionally routes the write through a wear-leveling remap
        table: a full logical-to-physical row permutation (length ``rows``),
        so the block's *logical* rows ``start_row ...`` land on the mapped
        physical rows (see :mod:`repro.leveling`).
        """
        words = np.asarray(words).reshape(-1)
        if start_row < 0 or start_row + words.size > self.geometry.rows:
            raise ValueError(
                f"block of {words.size} words at row {start_row} does not fit in "
                f"{self.geometry.rows} rows"
            )
        rows_to_write = np.arange(start_row, start_row + words.size)
        if row_map is not None:
            row_map = np.asarray(row_map, dtype=np.int64).reshape(-1)
            if row_map.size != self.geometry.rows:
                raise ValueError(
                    f"row_map must map all {self.geometry.rows} rows, "
                    f"got {row_map.size} entries")
            rows_to_write = row_map[rows_to_write]
        self.write_rows(rows_to_write, words)
        self.advance_time(residency)

    def read_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Read back the currently stored words of the given rows."""
        row_indices = self._check_row_indices(row_indices)
        bits = self._content[row_indices].astype(np.uint64)
        shifts = np.arange(self.geometry.word_bits, dtype=np.uint64)[::-1].copy()
        return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)

    def finalize(self) -> None:
        """Account hold time of every row up to the current simulation time."""
        self._account_holds(np.arange(self.geometry.rows))

    # ------------------------------------------------------------------ #
    # Bulk accumulation interface (fast simulator)
    # ------------------------------------------------------------------ #
    def accumulate_block(self, ones_time: np.ndarray, total_time: np.ndarray) -> None:
        """Add precomputed per-cell hold contributions (fast-path simulators)."""
        ones_time = np.asarray(ones_time, dtype=np.float64)
        total_time = np.asarray(total_time, dtype=np.float64)
        if ones_time.shape != self._ones_time.shape or total_time.shape != self._total_time.shape:
            raise ValueError("contribution arrays must match the cell array shape")
        if np.any(ones_time > total_time + 1e-12) or np.any(ones_time < -1e-12):
            raise ValueError("ones_time must lie within [0, total_time] per cell")
        self._ones_time += ones_time
        self._total_time += total_time

    # ------------------------------------------------------------------ #
    # Read-out
    # ------------------------------------------------------------------ #
    def duty_cycles(self, default: Optional[float] = None) -> np.ndarray:
        """Per-cell duty-cycle as a ``(rows, word_bits)`` float array.

        Cells that never held a value get ``default`` (or NaN when ``None``).
        """
        fill = np.nan if default is None else float(default)
        with np.errstate(invalid="ignore", divide="ignore"):
            duty = np.where(self._total_time > 0, self._ones_time / self._total_time, fill)
        return duty

    def flat_duty_cycles(self, default: Optional[float] = None) -> np.ndarray:
        """Per-cell duty-cycles as a flat 1-D array (length ``num_cells``)."""
        return self.duty_cycles(default).reshape(-1)

    @property
    def content(self) -> np.ndarray:
        """Copy of the currently stored bit matrix."""
        return self._content.copy()

    @property
    def ones_hold_time(self) -> np.ndarray:
        """Copy of the per-cell accumulated '1'-holding time."""
        return self._ones_time.copy()

    @property
    def total_hold_time(self) -> np.ndarray:
        """Copy of the per-cell accounted lifetime."""
        return self._total_time.copy()

    def reset_history(self) -> None:
        """Clear duty-cycle history but keep the current content."""
        self._ones_time[:] = 0.0
        self._total_time[:] = 0.0
        self._last_update[:] = self._now
