"""Weight-memory geometry.

The paper models the on-chip weight memory as an ``I x J`` array of 6T-SRAM
cells.  In this library the geometry is derived from the memory capacity and
the weight word width: the memory holds ``rows`` words of ``word_bits`` bits,
so ``I x J = rows x word_bits`` cells.  One *block* of the Fig. 5 dataflow
fills (at most) the whole array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import format_bytes
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class MemoryGeometry:
    """Geometry of an on-chip weight memory.

    Attributes
    ----------
    capacity_bytes:
        Total storage capacity in bytes (e.g. ``512 * 1024`` for the baseline
        accelerator of Table I).
    word_bits:
        Width of one stored weight word in bits (8 for int8, 32 for float32).
    """

    capacity_bytes: int
    word_bits: int

    def __post_init__(self) -> None:
        check_positive_int(self.capacity_bytes, "capacity_bytes")
        check_positive_int(self.word_bits, "word_bits")
        if self.capacity_bits % self.word_bits != 0:
            raise ValueError(
                f"capacity of {self.capacity_bits} bits is not a multiple of "
                f"word_bits={self.word_bits}"
            )

    @property
    def capacity_bits(self) -> int:
        """Total number of cells (I x J)."""
        return self.capacity_bytes * 8

    @property
    def rows(self) -> int:
        """Number of weight words the memory can hold (one word per row)."""
        return self.capacity_bits // self.word_bits

    @property
    def num_cells(self) -> int:
        """Total number of 6T-SRAM cells."""
        return self.rows * self.word_bits

    @property
    def words_per_block(self) -> int:
        """Number of weight words in one dataflow block (fills the memory)."""
        return self.rows

    def blocks_for(self, num_weights: int) -> int:
        """Number of blocks (K in Eq. 1) needed to stream ``num_weights`` words."""
        check_positive_int(num_weights, "num_weights")
        return (num_weights + self.rows - 1) // self.rows

    def __str__(self) -> str:
        return (f"MemoryGeometry({format_bytes(self.capacity_bytes)}, "
                f"{self.word_bits}-bit words, {self.rows} rows, {self.num_cells} cells)")
