"""Write-trace recording and replay.

A :class:`WriteTrace` captures the sequence of block writes an accelerator
issues to its weight memory (block index, encoded words, residency and the
encoding metadata).  Traces decouple the dataflow generation from the aging
simulation: a trace recorded once can be replayed against different memory
models or aging models, and traces are small enough to serialise for
regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.memory.sram import SramArray


@dataclass
class WriteRecord:
    """One block write: the words written and how long they stay resident."""

    block_index: int
    words: np.ndarray
    residency: float = 1.0
    #: First memory row the block is written to (FIFO tiles use offsets).
    start_row: int = 0
    #: Encoding metadata (e.g. the DNN-Life enable bits), if any.
    metadata: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.words = np.asarray(self.words, dtype=np.uint64).reshape(-1)
        if self.metadata is not None:
            self.metadata = np.asarray(self.metadata, dtype=np.uint8).reshape(-1)
        if self.residency < 0:
            raise ValueError("residency must be non-negative")


@dataclass
class WriteTrace:
    """An ordered sequence of :class:`WriteRecord` objects."""

    word_bits: int
    records: List[WriteRecord] = field(default_factory=list)

    def append(self, record: WriteRecord) -> None:
        """Add one record to the trace."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self.records)

    @property
    def total_words_written(self) -> int:
        """Total number of word writes in the trace."""
        return sum(record.words.size for record in self.records)

    @property
    def total_bits_written(self) -> int:
        """Total number of cell writes in the trace."""
        return self.total_words_written * self.word_bits

    def replay(self, array: SramArray) -> SramArray:
        """Replay the trace into an SRAM array (explicit simulation path)."""
        if array.geometry.word_bits != self.word_bits:
            raise ValueError(
                f"trace word width {self.word_bits} does not match memory word width "
                f"{array.geometry.word_bits}"
            )
        for record in self.records:
            array.write_block(record.words, residency=record.residency,
                              start_row=record.start_row)
        array.finalize()
        return array

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> None:
        """Save the trace to a compressed ``.npz`` file."""
        arrays = {"word_bits": np.asarray([self.word_bits])}
        for index, record in enumerate(self.records):
            arrays[f"words_{index}"] = record.words
            arrays[f"meta_{index}"] = (record.metadata if record.metadata is not None
                                       else np.empty(0, dtype=np.uint8))
            arrays[f"info_{index}"] = np.asarray(
                [record.block_index, record.residency, record.start_row], dtype=np.float64)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WriteTrace":
        """Load a trace previously written with :meth:`save`."""
        with np.load(path) as data:
            word_bits = int(data["word_bits"][0])
            trace = cls(word_bits=word_bits)
            index = 0
            while f"words_{index}" in data:
                info = data[f"info_{index}"]
                metadata = data[f"meta_{index}"]
                trace.append(WriteRecord(
                    block_index=int(info[0]),
                    words=data[f"words_{index}"],
                    residency=float(info[1]),
                    start_row=int(info[2]) if info.size > 2 else 0,
                    metadata=metadata if metadata.size else None,
                ))
                index += 1
        return trace
