"""Write-trace recording and replay.

A :class:`WriteTrace` captures the sequence of block writes an accelerator
issues to its weight memory (block index, encoded words, residency and the
encoding metadata).  Traces decouple the dataflow generation from the aging
simulation: a trace recorded once can be replayed against different memory
models or aging models, and traces are small enough to serialise for
regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.memory.sram import SramArray


@dataclass
class WriteRecord:
    """One block write: the words written and how long they stay resident."""

    block_index: int
    words: np.ndarray
    residency: float = 1.0
    #: First memory row the block is written to (FIFO tiles use offsets).
    start_row: int = 0
    #: Encoding metadata (e.g. the DNN-Life enable bits), if any.
    metadata: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        # Integer fields are validated strictly: silently truncating a float
        # here used to mask type errors until the value came back wrong from
        # a saved trace.
        for name in ("block_index", "start_row"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise TypeError(f"{name} must be an integer, "
                                f"got {type(value).__name__} ({value!r})")
            setattr(self, name, int(value))
        if self.block_index < 0:
            raise ValueError("block_index must be non-negative")
        if self.start_row < 0:
            raise ValueError("start_row must be non-negative")
        self.words = np.asarray(self.words, dtype=np.uint64).reshape(-1)
        if self.metadata is not None:
            self.metadata = np.asarray(self.metadata, dtype=np.uint8).reshape(-1)
        if self.residency < 0:
            raise ValueError("residency must be non-negative")


@dataclass
class WriteTrace:
    """An ordered sequence of :class:`WriteRecord` objects."""

    word_bits: int
    records: List[WriteRecord] = field(default_factory=list)

    def append(self, record: WriteRecord) -> None:
        """Add one record to the trace."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self.records)

    @property
    def total_words_written(self) -> int:
        """Total number of word writes in the trace."""
        return sum(record.words.size for record in self.records)

    @property
    def total_bits_written(self) -> int:
        """Total number of cell writes in the trace."""
        return self.total_words_written * self.word_bits

    def replay(self, array: SramArray, leveler=None,
               blocks_per_epoch: Optional[int] = None) -> SramArray:
        """Replay the trace into an SRAM array (explicit simulation path).

        With a :class:`~repro.leveling.remap.WearLeveler`, every record's rows
        are routed through the leveler's logical-to-physical remap table.
        ``blocks_per_epoch`` tells the replay where the inference-epoch
        boundaries fall in the record stream (the schedule's blocks per
        inference): the mapping is refreshed at each boundary.  Wear-guided
        levelers observe the same per-write *count*-based stress signal the
        aging engines report (not the array's residency-weighted holds, which
        additionally count the time rows spend holding their initial content
        before the first write), so the swap decisions — and the resulting
        permutations — are bit-identical to the simulators' on any stream.
        """
        if array.geometry.word_bits != self.word_bits:
            raise ValueError(
                f"trace word width {self.word_bits} does not match memory word width "
                f"{array.geometry.word_bits}"
            )
        if leveler is None:
            for record in self.records:
                array.write_block(record.words, residency=record.residency,
                                  start_row=record.start_row)
            array.finalize()
            return array
        if blocks_per_epoch is None or blocks_per_epoch <= 0:
            raise ValueError("replaying with a leveler requires blocks_per_epoch "
                             "(the number of records per inference epoch)")
        from repro.leveling.remap import mean_duty_per_row
        from repro.quantization.bitops import unpack_bits

        leveler.reset()
        track_stress = leveler.uses_feedback
        if track_stress:
            rows, word_bits = array.geometry.rows, array.geometry.word_bits
            ones_counts = np.zeros((rows, word_bits), dtype=np.float64)
            write_counts = np.zeros(rows, dtype=np.float64)
        for index, record in enumerate(self.records):
            epoch = index // blocks_per_epoch
            remap = leveler.permutation(epoch)
            array.write_block(record.words, residency=record.residency,
                              start_row=record.start_row, row_map=remap)
            if track_stress:
                target = remap[record.start_row:record.start_row + record.words.size]
                ones_counts[target] += unpack_bits(record.words, self.word_bits)
                write_counts[target] += 1
            if (index + 1) % blocks_per_epoch == 0 and track_stress:
                leveler.observe(epoch + 1, mean_duty_per_row(
                    ones_counts, write_counts * float(word_bits)))
        array.finalize()
        return array

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> None:
        """Save the trace to a compressed ``.npz`` file.

        Integer record fields (``block_index``, ``start_row``) are stored as
        int64 — the earlier float64 ``info`` encoding lost exactness above
        2**53.  ``load`` still reads files written in the legacy layout.
        """
        arrays = {"word_bits": np.asarray([self.word_bits])}
        for index, record in enumerate(self.records):
            arrays[f"words_{index}"] = record.words
            arrays[f"meta_{index}"] = (record.metadata if record.metadata is not None
                                       else np.empty(0, dtype=np.uint8))
            arrays[f"info_{index}"] = np.asarray([record.residency], dtype=np.float64)
            arrays[f"rows_{index}"] = np.asarray(
                [record.block_index, record.start_row], dtype=np.int64)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WriteTrace":
        """Load a trace previously written with :meth:`save`.

        Reads both the current layout (int64 ``rows_<i>`` alongside a
        residency-only ``info_<i>``) and the legacy all-float ``info_<i>``
        triple of ``[block_index, residency, start_row]``.
        """
        with np.load(path) as data:
            word_bits = int(data["word_bits"][0])
            trace = cls(word_bits=word_bits)
            index = 0
            while f"words_{index}" in data:
                info = data[f"info_{index}"]
                metadata = data[f"meta_{index}"]
                if f"rows_{index}" in data:
                    integers = data[f"rows_{index}"]
                    block_index = int(integers[0])
                    start_row = int(integers[1])
                    residency = float(info[0])
                else:  # legacy float64 [block_index, residency, start_row]
                    block_index = int(info[0])
                    residency = float(info[1])
                    start_row = int(info[2]) if info.size > 2 else 0
                trace.append(WriteRecord(
                    block_index=block_index,
                    words=data[f"words_{index}"],
                    residency=residency,
                    start_row=start_row,
                    metadata=metadata if metadata.size else None,
                ))
                index += 1
        return trace
