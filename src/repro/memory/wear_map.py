"""Wear maps: spatial view of per-cell aging (extension).

The Fig. 9/11 histograms aggregate over all cells; designers also want to know
*where* in the memory the stressed cells sit (e.g. whether a particular bit
column or FIFO tile wears out first, which drives wear-levelling or column
remapping decisions).  A :class:`WearMap` summarises a duty-cycle (or SNM
degradation) matrix along rows, bit columns and FIFO regions and renders a
coarse ASCII heat map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.aging.snm import SnmDegradationModel, default_snm_model
from repro.utils.validation import check_positive_int

#: Characters used for the ASCII heat map, from least to most degraded.
_HEAT_CHARS = " .:-=+*#%@"


@dataclass
class WearMap:
    """Spatial aging summary of a weight memory."""

    duty_cycles: np.ndarray          # (rows, word_bits)
    num_regions: int = 1
    snm_model: Optional[SnmDegradationModel] = None
    years: float = 7.0

    def __post_init__(self) -> None:
        self.duty_cycles = np.asarray(self.duty_cycles, dtype=np.float64)
        if self.duty_cycles.ndim != 2:
            raise ValueError("duty_cycles must be a (rows, word_bits) matrix")
        check_positive_int(self.num_regions, "num_regions")
        if self.duty_cycles.shape[0] % self.num_regions != 0:
            raise ValueError("rows must divide evenly into num_regions")
        if self.snm_model is None:
            self.snm_model = default_snm_model()

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    @property
    def degradation(self) -> np.ndarray:
        """Per-cell SNM degradation matrix (percent)."""
        return self.snm_model.degradation_percent(self.duty_cycles, self.years)

    def per_bit_column(self) -> np.ndarray:
        """Mean SNM degradation of each bit column (MSB-first index)."""
        return self.degradation.mean(axis=0)

    def per_region(self) -> np.ndarray:
        """Mean SNM degradation of each FIFO region / tile."""
        region_rows = self.duty_cycles.shape[0] // self.num_regions
        degradation = self.degradation
        return np.array([
            degradation[index * region_rows:(index + 1) * region_rows].mean()
            for index in range(self.num_regions)
        ])

    def worst_cells(self, count: int = 10) -> Dict[str, np.ndarray]:
        """Coordinates and degradation of the ``count`` most-aged cells."""
        check_positive_int(count, "count")
        degradation = self.degradation
        flat_indices = np.argsort(degradation, axis=None)[::-1][:count]
        rows, columns = np.unravel_index(flat_indices, degradation.shape)
        return {
            "rows": rows,
            "bit_columns": columns,
            "degradation_percent": degradation[rows, columns],
        }

    def summary(self) -> Dict[str, float]:
        """Headline spatial statistics."""
        degradation = self.degradation
        per_column = self.per_bit_column()
        per_region = self.per_region()
        return {
            "mean_degradation_percent": float(degradation.mean()),
            "max_degradation_percent": float(degradation.max()),
            "worst_bit_column": int(np.argmax(per_column)),
            "worst_bit_column_mean_percent": float(per_column.max()),
            "best_bit_column_mean_percent": float(per_column.min()),
            "worst_region": int(np.argmax(per_region)),
            "worst_region_mean_percent": float(per_region.max()),
            "column_imbalance_pp": float(per_column.max() - per_column.min()),
            "region_imbalance_pp": float(per_region.max() - per_region.min()),
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self, max_rows: int = 32) -> str:
        """Render a coarse ASCII heat map (rows are bucketed to ``max_rows``)."""
        check_positive_int(max_rows, "max_rows")
        degradation = self.degradation
        rows, bits = degradation.shape
        buckets = min(max_rows, rows)
        bucket_edges = np.linspace(0, rows, buckets + 1).astype(int)
        best = self.snm_model.best_case_percent(self.years)
        worst = self.snm_model.worst_case_percent(self.years)
        span = max(worst - best, 1e-9)

        lines = [f"Wear map ({rows} rows x {bits} bit columns, "
                 f"{buckets} row buckets, MSB on the left)"]
        for index in range(buckets):
            chunk = degradation[bucket_edges[index]:bucket_edges[index + 1]]
            if chunk.size == 0:
                continue
            column_means = chunk.mean(axis=0)
            levels = np.clip((column_means - best) / span, 0.0, 1.0)
            chars = "".join(_HEAT_CHARS[int(round(level * (len(_HEAT_CHARS) - 1)))]
                            for level in levels)
            lines.append(f"rows {bucket_edges[index]:>7d}-{bucket_edges[index + 1] - 1:>7d} |{chars}|")
        lines.append(f"scale: '{_HEAT_CHARS[0]}' = {best:.1f}%  ...  "
                     f"'{_HEAT_CHARS[-1]}' = {worst:.1f}% SNM degradation")
        return "\n".join(lines)


def wear_map_from_result(result, num_regions: int = 1) -> WearMap:
    """Build a :class:`WearMap` from an :class:`~repro.core.simulation.AgingResult`."""
    return WearMap(duty_cycles=result.duty_cycles, num_regions=num_regions,
                   snm_model=result.snm_model, years=result.years)
