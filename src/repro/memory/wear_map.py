"""Wear maps: spatial view of per-cell aging (extension).

The Fig. 9/11 histograms aggregate over all cells; designers also want to know
*where* in the memory the stressed cells sit (e.g. whether a particular bit
column or FIFO tile wears out first, which drives wear-levelling or column
remapping decisions).  A :class:`WearMap` summarises a duty-cycle (or SNM
degradation) matrix along rows, bit columns and FIFO regions and renders a
coarse ASCII heat map.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.aging.snm import SnmDegradationModel, default_snm_model
from repro.utils.validation import check_positive_int

#: Characters used for the ASCII heat map, from least to most degraded.
_HEAT_CHARS = " .:-=+*#%@"


def _nanmean(values: np.ndarray, axis=None) -> np.ndarray:
    """``np.nanmean`` without the all-NaN RuntimeWarning (result stays NaN)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmean(values, axis=axis)


@dataclass
class WearMap:
    """Spatial aging summary of a weight memory."""

    duty_cycles: np.ndarray          # (rows, word_bits)
    num_regions: int = 1
    snm_model: Optional[SnmDegradationModel] = None
    years: float = 7.0

    def __post_init__(self) -> None:
        self.duty_cycles = np.asarray(self.duty_cycles, dtype=np.float64)
        if self.duty_cycles.ndim != 2:
            raise ValueError("duty_cycles must be a (rows, word_bits) matrix")
        check_positive_int(self.num_regions, "num_regions")
        if self.duty_cycles.shape[0] % self.num_regions != 0:
            raise ValueError("rows must divide evenly into num_regions")
        if self.snm_model is None:
            self.snm_model = default_snm_model()

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    @property
    def coverage(self) -> float:
        """Fraction of cells with a defined duty-cycle.

        Duty matrices built with ``duty_cycles(default=None)`` carry NaN for
        never-written cells; the aggregations below ignore those cells and
        this fraction surfaces how much of the memory they actually cover.
        """
        return float(np.isfinite(self.duty_cycles).mean()) if self.duty_cycles.size else 0.0

    @property
    def degradation(self) -> np.ndarray:
        """Per-cell SNM degradation matrix (percent); NaN where duty is undefined."""
        return self.snm_model.degradation_percent(self.duty_cycles, self.years)

    def per_bit_column(self) -> np.ndarray:
        """Mean SNM degradation of each bit column (MSB-first index).

        Never-written cells are excluded; a column with no written cell at
        all reports NaN (check :attr:`coverage`).
        """
        return _nanmean(self.degradation, axis=0)

    def per_region(self) -> np.ndarray:
        """Mean SNM degradation of each FIFO region / tile (NaN-cell aware)."""
        region_rows = self.duty_cycles.shape[0] // self.num_regions
        degradation = self.degradation
        return np.array([
            _nanmean(degradation[index * region_rows:(index + 1) * region_rows])
            for index in range(self.num_regions)
        ])

    def worst_cells(self, count: int = 10) -> Dict[str, np.ndarray]:
        """Coordinates and degradation of the ``count`` most-aged cells.

        Cells with undefined duty are never reported (NaN would otherwise
        sort *above* every genuine value in a descending argsort).
        """
        check_positive_int(count, "count")
        degradation = self.degradation
        ranked = np.where(np.isfinite(degradation), degradation, -np.inf)
        flat_indices = np.argsort(ranked, axis=None)[::-1][:count]
        rows, columns = np.unravel_index(flat_indices, degradation.shape)
        defined = np.isfinite(degradation[rows, columns])
        rows, columns = rows[defined], columns[defined]
        return {
            "rows": rows,
            "bit_columns": columns,
            "degradation_percent": degradation[rows, columns],
        }

    def summary(self) -> Dict[str, float]:
        """Headline spatial statistics (NaN-cell aware, see :attr:`coverage`)."""
        degradation = self.degradation
        defined = degradation[np.isfinite(degradation)]
        per_column = self.per_bit_column()
        per_region = self.per_region()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            column_max = np.nanmax(per_column) if per_column.size else np.nan
            column_min = np.nanmin(per_column) if per_column.size else np.nan
            region_max = np.nanmax(per_region) if per_region.size else np.nan
            region_min = np.nanmin(per_region) if per_region.size else np.nan
        return {
            "coverage": self.coverage,
            "mean_degradation_percent": float(defined.mean()) if defined.size else float("nan"),
            "max_degradation_percent": float(defined.max()) if defined.size else float("nan"),
            "worst_bit_column": int(np.nanargmax(per_column)) if defined.size else -1,
            "worst_bit_column_mean_percent": float(column_max),
            "best_bit_column_mean_percent": float(column_min),
            "worst_region": int(np.nanargmax(per_region)) if defined.size else -1,
            "worst_region_mean_percent": float(region_max),
            "column_imbalance_pp": float(column_max - column_min),
            "region_imbalance_pp": float(region_max - region_min),
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self, max_rows: int = 32) -> str:
        """Render a coarse ASCII heat map (rows are bucketed to ``max_rows``).

        Bucket edges are deduplicated before labelling, so small or odd row
        counts can never produce an empty bucket with an inverted
        ``rows X-(X-1)`` label; the header reports the number of buckets
        actually drawn.  Columns whose bucket holds no written cell render
        as ``?``.
        """
        check_positive_int(max_rows, "max_rows")
        degradation = self.degradation
        rows, bits = degradation.shape
        buckets = min(max_rows, rows)
        # np.unique drops repeated integer edges (linspace truncation can
        # produce them), guaranteeing strictly increasing, non-empty buckets;
        # the 0 and rows endpoints are exact in linspace, so they survive.
        bucket_edges = np.unique(np.linspace(0, rows, buckets + 1).astype(int))
        best = self.snm_model.best_case_percent(self.years)
        worst = self.snm_model.worst_case_percent(self.years)
        span = max(worst - best, 1e-9)

        lines = [f"Wear map ({rows} rows x {bits} bit columns, "
                 f"{bucket_edges.size - 1} row buckets, MSB on the left)"]
        for low, high in zip(bucket_edges[:-1], bucket_edges[1:]):
            column_means = _nanmean(degradation[low:high], axis=0)
            levels = np.clip((column_means - best) / span, 0.0, 1.0)
            chars = "".join(
                "?" if not np.isfinite(level)
                else _HEAT_CHARS[int(round(level * (len(_HEAT_CHARS) - 1)))]
                for level in levels)
            lines.append(f"rows {low:>7d}-{high - 1:>7d} |{chars}|")
        lines.append(f"scale: '{_HEAT_CHARS[0]}' = {best:.1f}%  ...  "
                     f"'{_HEAT_CHARS[-1]}' = {worst:.1f}% SNM degradation")
        return "\n".join(lines)


def default_wear_regions(rows: int, fifo_depth_tiles: int) -> int:
    """Analysis regioning of a wear map: FIFO tiles, or coarse row bands.

    FIFO-organised memories are regioned by their tiles (the physically
    meaningful boundary); monolithic memories fall back to the largest of
    8/4/2 row bands that divides the row count, so region-imbalance numbers
    stay comparable across geometries.  Shared by the ``leveling`` and
    ``scenario`` experiment reports.
    """
    if fifo_depth_tiles > 1:
        return fifo_depth_tiles
    for candidate in (8, 4, 2):
        if rows % candidate == 0:
            return candidate
    return 1


def wear_map_from_result(result, num_regions: int = 1) -> WearMap:
    """Build a :class:`WearMap` from an :class:`~repro.core.simulation.AgingResult`."""
    return WearMap(duty_cycles=result.duty_cycles, num_regions=num_regions,
                   snm_model=result.snm_model, years=result.years)
