"""Single 6T-SRAM cell model.

A 6T cell stores one bit in a pair of cross-coupled inverters (Fig. 2a of the
paper).  Whichever of the two PMOS pull-up transistors is conducting is under
negative bias stress, so:

* while the cell stores a '1', PMOS ``P1`` is stressed and ``P2`` recovers;
* while it stores a '0', ``P2`` is stressed and ``P1`` recovers.

Because the cell's read stability is limited by its *most aged* transistor,
the aging-optimal operating point is a 50% duty-cycle, where both PMOS devices
accumulate the same average stress.  This class tracks the stress bookkeeping
for one cell explicitly; the array-level simulation in
:mod:`repro.memory.sram` does the same thing vectorially.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SixTransistorCell:
    """Duty-cycle bookkeeping for a single 6T-SRAM cell."""

    #: Currently stored bit value (0 or 1); None until the first write.
    value: int = field(default=0)
    #: Whether the cell has been written at least once.
    initialized: bool = False
    #: Accumulated time (arbitrary units) spent storing a '1'.
    time_storing_one: float = 0.0
    #: Accumulated time spent storing a '0'.
    time_storing_zero: float = 0.0

    def write(self, bit: int) -> None:
        """Write a new bit value into the cell (takes effect for future holds)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self.value = int(bit)
        self.initialized = True

    def hold(self, duration: float) -> None:
        """Account for the cell holding its current value for ``duration`` units."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if not self.initialized:
            raise RuntimeError("cell must be written before it can hold a value")
        if self.value == 1:
            self.time_storing_one += duration
        else:
            self.time_storing_zero += duration

    def write_and_hold(self, bit: int, duration: float = 1.0) -> None:
        """Convenience: write ``bit`` then hold it for ``duration`` units."""
        self.write(bit)
        self.hold(duration)

    @property
    def total_time(self) -> float:
        """Total accounted lifetime."""
        return self.time_storing_one + self.time_storing_zero

    @property
    def duty_cycle(self) -> float:
        """Fraction of the accounted lifetime spent storing a '1'.

        Raises if the cell has never held a value (duty-cycle is undefined).
        """
        total = self.total_time
        if total <= 0:
            raise RuntimeError("duty-cycle is undefined before the cell has held a value")
        return self.time_storing_one / total

    @property
    def pmos1_stress_fraction(self) -> float:
        """Fraction of lifetime PMOS P1 is under NBTI stress (cell stores '1')."""
        return self.duty_cycle

    @property
    def pmos2_stress_fraction(self) -> float:
        """Fraction of lifetime PMOS P2 is under NBTI stress (cell stores '0')."""
        return 1.0 - self.duty_cycle

    @property
    def worst_case_stress_fraction(self) -> float:
        """Stress fraction of the most-stressed PMOS (what determines aging)."""
        duty = self.duty_cycle
        return max(duty, 1.0 - duty)
