"""On-chip weight-memory substrate.

Models the 6T-SRAM weight buffer of a DNN accelerator at the granularity the
aging analysis needs: every cell's *duty-cycle* (fraction of its lifetime it
stores a '1').  Includes:

* a single-cell 6T-SRAM model (:mod:`repro.memory.cell`) documenting the
  NBTI stress mechanics and used by unit tests;
* a vectorized SRAM array model (:mod:`repro.memory.sram`) that accumulates
  per-cell duty-cycles over an arbitrary write stream;
* write-trace recording / replay (:mod:`repro.memory.trace`);
* an analytic access-energy model (:mod:`repro.memory.energy`) reproducing the
  SRAM-vs-DRAM comparison of Fig. 1b.
"""

from repro.memory.cell import SixTransistorCell
from repro.memory.energy import MemoryEnergyModel, dram_access_energy, sram_access_energy
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SramArray
from repro.memory.trace import WriteRecord, WriteTrace
from repro.memory.wear_map import WearMap, wear_map_from_result

__all__ = [
    "WearMap",
    "wear_map_from_result",
    "SixTransistorCell",
    "MemoryEnergyModel",
    "dram_access_energy",
    "sram_access_energy",
    "MemoryGeometry",
    "SramArray",
    "WriteRecord",
    "WriteTrace",
]
