"""Wear-leveling remap engine (extension).

DNN-Life's encoding policies balance duty-cycles *within* a word; this
package balances *where* the stress lands by remapping logical memory rows to
physical rows over time.  See :mod:`repro.leveling.remap` for the protocol
and :mod:`repro.leveling.policies` for the rotation / start-gap / wear-guided
swap implementations; both aging simulation engines accept a leveler and the
``leveling`` experiment sweeps them against the encoding policies.
"""

from repro.leveling.policies import (
    LEVELER_CHOICES,
    RotationLeveler,
    StartGapLeveler,
    WearSwapLeveler,
    make_leveler,
)
from repro.leveling.remap import (
    SpanTable,
    WearLeveler,
    check_permutation,
    mean_duty_from_row_counts,
    mean_duty_per_row,
    set_span_validation,
    span_validation_enabled,
)

__all__ = [
    "LEVELER_CHOICES",
    "RotationLeveler",
    "SpanTable",
    "StartGapLeveler",
    "WearSwapLeveler",
    "WearLeveler",
    "check_permutation",
    "make_leveler",
    "mean_duty_from_row_counts",
    "mean_duty_per_row",
    "set_span_validation",
    "span_validation_enabled",
]
