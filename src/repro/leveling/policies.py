"""Wear-leveling policies: rotation, start-gap shifting, wear-guided swap.

Three row-remapping strategies over the :class:`~repro.leveling.remap.WearLeveler`
protocol:

* :class:`RotationLeveler` — a static per-region rotation table that cycles
  through ``period`` offsets, advancing by ``step`` rows per inference and
  returning to the identity every ``period`` inferences.  ``period=1`` pins
  the identity map (the no-leveling reference point).
* :class:`StartGapLeveler` — start-gap style incremental shifting: the map
  drifts by one additional row every ``interval`` inferences and never
  resets, walking through every alignment of the region.  The classic
  start-gap design (Qureshi et al., MICRO'09) moves one line per gap step
  using a spare row; this model amortises a full gap pass to epoch
  granularity so no spare row is needed and the block placement is unchanged.
* :class:`WearSwapLeveler` — a table-driven hot/cold swap guided by the
  accumulated wear map: every ``interval`` inferences the hottest physical
  rows (by mean duty so far) exchange their logical occupants with the
  coldest ones.  Swaps cross region boundaries on purpose — this is the only
  policy that can reduce the *region* imbalance a FIFO placement builds up.

The :func:`make_leveler` factory mirrors
:func:`repro.core.policies.make_policy` and is what the experiment layer and
CLI resolve the ``leveling`` parameter through.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.leveling.remap import SpanTable, WearLeveler
from repro.memory.geometry import MemoryGeometry
from repro.utils.validation import check_positive_int

__all__ = ["RotationLeveler", "StartGapLeveler", "WearSwapLeveler",
           "make_leveler", "LEVELER_CHOICES"]

#: Leveler names accepted by :func:`make_leveler` (and the experiment schema).
LEVELER_CHOICES = ("none", "rotation", "start_gap", "wear_swap")


class RotationLeveler(WearLeveler):
    """Static rotation: cycle each region through ``period`` offsets.

    During inference ``t`` every region's rows are rotated down by
    ``(t mod period) * step`` rows.  The table returns to the identity every
    ``period`` inferences, so the hardware only needs ``period`` precomputed
    alignments; ``period=1`` therefore *is* the identity mapping.
    """

    name = "rotation"

    def __init__(self, geometry: MemoryGeometry, fifo_depth_tiles: int = 1,
                 period: int = 8, step: int = 1):
        super().__init__(geometry, fifo_depth_tiles)
        self.period = check_positive_int(period, "period")
        if step < 0:
            raise ValueError("step must be non-negative")
        self.step = int(step)

    def _offset_at(self, epoch):
        epoch = np.asarray(epoch, dtype=np.int64)
        return (epoch % self.period) * self.step % self.region_rows

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update({"period": self.period, "step": self.step})
        return description


class StartGapLeveler(WearLeveler):
    """Start-gap style incremental shifting at epoch granularity.

    The logical→physical map of every region shifts down by one additional
    row every ``interval`` inferences and never resets: after
    ``interval * region_rows`` inferences the mapping has visited every
    alignment of the region once.  This is the steady-state behaviour of a
    start-gap remapper with its per-write gap movement amortised to whole
    inference epochs (the spare gap row itself is not modelled, so the
    memory's capacity and block placement are unchanged).
    """

    name = "start_gap"

    def __init__(self, geometry: MemoryGeometry, fifo_depth_tiles: int = 1,
                 interval: int = 1):
        super().__init__(geometry, fifo_depth_tiles)
        self.interval = check_positive_int(interval, "interval")

    def _offset_at(self, epoch):
        epoch = np.asarray(epoch, dtype=np.int64)
        return (epoch // self.interval) % self.region_rows

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["interval"] = self.interval
        return description


class WearSwapLeveler(WearLeveler):
    """Hot/cold remap-table swap guided by the accumulated wear map.

    Every ``interval`` inferences the leveler ranks all physical rows by
    their mean duty-cycle so far (the :func:`~repro.leveling.remap.mean_duty_per_row`
    stress both engines report), pairs the hottest ``swap_fraction`` of rows
    with the coldest, and swaps each pair's logical occupants — the remap
    analogue of the FTL practice of moving hot data into the least-worn
    blocks.  Pairs whose stress difference is not strictly positive are left
    alone, so a perfectly balanced memory keeps its mapping.

    Unlike the rotation policies the swap table is global: hot rows migrate
    across FIFO region boundaries, which is what lets this policy reduce the
    *region* imbalance an uneven block-to-tile placement accumulates.
    """

    name = "wear_swap"
    uses_feedback = True

    def __init__(self, geometry: MemoryGeometry, fifo_depth_tiles: int = 1,
                 interval: int = 4, swap_fraction: float = 0.25):
        super().__init__(geometry, fifo_depth_tiles)
        self.interval = check_positive_int(interval, "interval")
        if not 0.0 < swap_fraction <= 0.5:
            raise ValueError("swap_fraction must lie in (0, 0.5]")
        self.swap_fraction = float(swap_fraction)
        self._pair_count = max(int(round(self.swap_fraction * self.rows)), 1)
        self._pair_count = min(self._pair_count, self.rows // 2)
        self.reset()

    def reset(self) -> None:
        self._perm = self._identity.copy()
        self._stress: Optional[np.ndarray] = None
        self._next_swap = self.interval
        self.num_swaps_applied = 0

    def observe(self, epoch: int, row_stress: np.ndarray) -> None:
        self._stress = np.asarray(row_stress, dtype=np.float64).copy()

    def permutation(self, epoch: int) -> np.ndarray:
        if epoch >= self._next_swap and self._stress is not None:
            self._apply_swaps()
            self._next_swap = (int(epoch) // self.interval + 1) * self.interval
        return self._perm

    def change_epochs(self, num_inferences: int) -> np.ndarray:
        return np.arange(0, num_inferences, self.interval, dtype=np.int64)

    def span_tables(self, num_inferences: int, start: int = 0,
                    stop: Optional[int] = None) -> Iterator[SpanTable]:
        """One single-span chunk per swap interval.

        Each chunk's permutation is resolved only when the driver pulls it —
        i.e. after the driver has composed the previous chunk and fed the
        accumulated stress through :meth:`observe` — so the chunked walk
        makes exactly the same swap decisions as the iterative
        :meth:`~repro.leveling.remap.WearLeveler.spans` loop.
        """
        starts, lengths = self._span_bounds(num_inferences, start, stop)
        for span_start, length in zip(starts, lengths):
            permutation = self.permutation(int(span_start))
            yield SpanTable(self, starts=np.asarray([span_start]),
                            lengths=np.asarray([length]),
                            permutations=permutation[None, :])

    def _apply_swaps(self) -> None:
        """Exchange the logical occupants of the hottest/coldest row pairs."""
        if self._pair_count == 0:
            return
        # Stable sort: the stress values are ratios of exact integer counts,
        # so tie-breaking by physical row index keeps the packed and explicit
        # engines' swap decisions bit-identical.
        order = np.argsort(self._stress, kind="stable")
        cold = order[:self._pair_count]
        hot = order[-self._pair_count:][::-1]
        improves = self._stress[hot] > self._stress[cold]
        if not improves.any():
            return
        hot, cold = hot[improves], cold[improves]
        inverse = np.empty(self.rows, dtype=np.int64)
        inverse[self._perm] = self._identity
        perm = self._perm.copy()
        perm[inverse[hot]] = cold
        perm[inverse[cold]] = hot
        self._perm = perm
        self.num_swaps_applied += 1

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update({"interval": self.interval,
                            "swap_fraction": self.swap_fraction})
        return description


def make_leveler(name: str, geometry: MemoryGeometry, fifo_depth_tiles: int = 1,
                 **kwargs) -> WearLeveler:
    """Factory: build a wear leveler from its registry name.

    Supported names: ``none``, ``rotation`` (``period``, ``step``),
    ``start_gap`` (``interval``) and ``wear_swap`` (``interval``,
    ``swap_fraction``); unknown keyword arguments raise ``TypeError`` through
    the constructors.
    """
    if name == "none":
        if kwargs:
            raise TypeError(f"leveler 'none' accepts no options, got {sorted(kwargs)}")
        return WearLeveler(geometry, fifo_depth_tiles)
    if name == "rotation":
        return RotationLeveler(geometry, fifo_depth_tiles, **kwargs)
    if name == "start_gap":
        return StartGapLeveler(geometry, fifo_depth_tiles, **kwargs)
    if name == "wear_swap":
        return WearSwapLeveler(geometry, fifo_depth_tiles, **kwargs)
    raise ValueError(f"unknown leveler '{name}' "
                     f"(expected one of: {', '.join(LEVELER_CHOICES)})")
