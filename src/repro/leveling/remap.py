"""Row-remap machinery shared by every wear-leveling policy.

A *wear leveler* maintains a logical-to-physical row permutation for a weight
memory: the accelerator's dataflow keeps addressing *logical* rows (block
``b`` still targets rows ``region * words_per_block ...``), while the leveler
decides which *physical* rows actually store them.  The mapping is constant
within one inference epoch and may change between epochs, which is exactly
the granularity both simulation paths consume it at:

* the fast packed engine (:class:`repro.core.simulation.AgingSimulator`)
  splits the inference range into :meth:`WearLeveler.spans` of constant
  mapping, evaluates each span's closed-form duty counts once, and gathers
  the logical counts into physical rows through the span's permutation;
* the explicit paths (:class:`repro.core.simulation.ExplicitAgingSimulator`
  and :meth:`repro.memory.trace.WriteTrace.replay`) query
  :meth:`WearLeveler.permutation` every epoch and route each block write
  through it.

Feedback-driven policies (the wear-map-guided swap) additionally receive the
accumulated per-physical-row stress through :meth:`WearLeveler.observe`; both
simulation paths report the same quantity (:func:`mean_duty_per_row` over
exact integral counts), so the permutations they derive are bit-identical.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.memory.geometry import MemoryGeometry
from repro.utils.validation import check_positive_int

__all__ = ["SpanTable", "WearLeveler", "check_permutation",
           "mean_duty_from_row_counts", "mean_duty_per_row",
           "set_span_validation", "span_validation_enabled"]

#: Debug switch for the span window contract (gaps/overlap detection).  Off by
#: default — the check costs one pass over the span table per call — and
#: enabled either through :func:`set_span_validation` or by exporting
#: ``DNN_LIFE_CHECK_SPANS=1`` before the interpreter starts.
_VALIDATE_SPANS = os.environ.get("DNN_LIFE_CHECK_SPANS", "") not in ("", "0")


def set_span_validation(enabled: bool) -> bool:
    """Toggle span window-contract validation; returns the previous setting."""
    global _VALIDATE_SPANS
    previous = _VALIDATE_SPANS
    _VALIDATE_SPANS = bool(enabled)
    return previous


def span_validation_enabled() -> bool:
    """Whether :meth:`WearLeveler.spans` validates its window contract."""
    return _VALIDATE_SPANS


def _check_span_tiling(starts: np.ndarray, lengths: np.ndarray,
                       start: int, stop: int, leveler_name: str) -> None:
    """Assert that spans tile ``[start, stop)`` exactly: no gaps, no overlap."""
    if stop <= start:
        if starts.size:
            raise AssertionError(
                f"leveler '{leveler_name}' emitted {starts.size} spans for the "
                f"empty window [{start}, {stop})")
        return
    if not starts.size:
        raise AssertionError(
            f"leveler '{leveler_name}' emitted no spans for [{start}, {stop})")
    if np.any(lengths <= 0):
        raise AssertionError(
            f"leveler '{leveler_name}' emitted a non-positive span length")
    ends = starts + lengths
    if int(starts[0]) != start or int(ends[-1]) != stop \
            or np.any(starts[1:] != ends[:-1]):
        raise AssertionError(
            f"leveler '{leveler_name}' spans do not tile [{start}, {stop}) "
            f"exactly: starts={starts.tolist()}, lengths={lengths.tolist()}")


def check_permutation(permutation: np.ndarray, rows: int) -> np.ndarray:
    """Validate a logical-to-physical row map: a bijection over ``rows`` rows."""
    permutation = np.asarray(permutation, dtype=np.int64).reshape(-1)
    if permutation.size != rows:
        raise ValueError(f"permutation covers {permutation.size} rows, "
                         f"expected {rows}")
    if permutation.size and (permutation.min() < 0 or permutation.max() >= rows):
        raise ValueError("permutation entries must lie in [0, rows)")
    if np.unique(permutation).size != rows:
        raise ValueError("permutation must be a bijection (duplicate targets)")
    return permutation


def mean_duty_per_row(ones: np.ndarray, hold_per_row: np.ndarray) -> np.ndarray:
    """Per-physical-row mean duty-cycle: the stress signal of guided levelers.

    ``ones`` is the accumulated per-cell ones count/time (``(rows, bits)``)
    and ``hold_per_row`` the accumulated per-row cell-hold total.  Both
    simulation paths accumulate exact integers in float64, so the ratio — and
    therefore any ordering a leveler derives from it — is bit-identical
    between the packed and explicit engines.  Never-written rows report 0.
    """
    ones = np.asarray(ones, dtype=np.float64)
    hold = np.asarray(hold_per_row, dtype=np.float64).reshape(-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(hold > 0, ones.sum(axis=1) / hold, 0.0)


def mean_duty_from_row_counts(row_ones: np.ndarray,
                              hold_per_row: np.ndarray) -> np.ndarray:
    """:func:`mean_duty_per_row` when the per-row ones sum is already reduced.

    The batched span composition keeps physical wear as ``(rows,)`` running
    totals instead of re-reducing a ``(rows, bits)`` matrix at every feedback
    boundary.  Both inputs are exact integers in float64, so the ratio is
    bit-identical to the matrix form for the same accumulated counts.
    """
    row_ones = np.asarray(row_ones, dtype=np.float64).reshape(-1)
    hold = np.asarray(hold_per_row, dtype=np.float64).reshape(-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(hold > 0, row_ones / hold, 0.0)


class SpanTable:
    """A batch of constant-mapping leveling spans.

    The vectorized counterpart of :meth:`WearLeveler.spans`: ``starts`` and
    ``lengths`` are ``(num_spans,)`` int64 arrays tiling the requested epoch
    window.  The mapping of each span comes in one of two forms:

    * ``offsets`` — ``(num_spans,)`` per-region rotation offsets, for levelers
      whose permutations are pure region rolls (the closed-form schedule
      family: identity, rotation, start-gap).  Offset form is what enables the
      fused roll/window composition in the packed engine.
    * an explicit ``(num_spans, rows)`` permutation matrix, for table-driven
      levelers (wear-swap chunks).  :meth:`permutations` materialises this
      form for either flavour.
    """

    def __init__(self, leveler: "WearLeveler", starts: np.ndarray,
                 lengths: np.ndarray, offsets: Optional[np.ndarray] = None,
                 permutations: Optional[np.ndarray] = None):
        self.leveler = leveler
        self.starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        self.lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
        if self.starts.shape != self.lengths.shape:
            raise ValueError("starts and lengths must have matching shapes")
        if (offsets is None) == (permutations is None):
            raise ValueError("exactly one of offsets/permutations is required")
        self.offsets = (None if offsets is None
                        else np.asarray(offsets, dtype=np.int64).reshape(-1)
                        % leveler.region_rows)
        self._permutations = permutations

    @property
    def num_spans(self) -> int:
        return int(self.starts.size)

    def iter_spans(self) -> Iterator[Tuple[int, int]]:
        """Yield the table's ``(start, length)`` pairs as Python ints."""
        for start, length in zip(self.starts, self.lengths):
            yield int(start), int(length)

    def permutation(self, index: int) -> np.ndarray:
        """The logical→physical row map of span ``index``."""
        if self._permutations is not None:
            return self._permutations[index]
        return self.leveler._region_rotation(int(self.offsets[index]))

    def permutations(self) -> np.ndarray:
        """Materialise the full ``(num_spans, rows)`` permutation matrix."""
        if self._permutations is not None:
            return self._permutations
        if not self.num_spans:
            return np.empty((0, self.leveler.rows), dtype=np.int64)
        return np.stack([self.permutation(k) for k in range(self.num_spans)])


class WearLeveler:
    """Base wear leveler: the identity mapping (no leveling).

    Subclasses override :meth:`_offset_at` (pure per-region rotations) or
    :meth:`permutation` / :meth:`observe` (table-driven policies) and
    :meth:`change_epochs`.  The mapping contract:

    * :meth:`permutation` returns the logical→physical row map in force for
      ``epoch``; drivers call it with non-decreasing epochs;
    * :meth:`observe` feeds the accumulated per-physical-row stress after
      ``epoch`` epochs (only consulted when :attr:`uses_feedback`);
    * :meth:`change_epochs` lists every epoch at which the map may differ
      from the previous epoch's, so the fast engine can batch the constant
      stretches; :meth:`spans` turns that into ``(start, length)`` segments.
    """

    #: Registry name of the policy (overridden by subclasses).
    name = "none"
    #: Whether :meth:`observe` feedback influences the mapping.
    uses_feedback = False

    def __init__(self, geometry: MemoryGeometry, fifo_depth_tiles: int = 1):
        self.geometry = geometry
        self.fifo_depth_tiles = check_positive_int(fifo_depth_tiles, "fifo_depth_tiles")
        if geometry.rows % self.fifo_depth_tiles != 0:
            raise ValueError(f"{geometry.rows} rows cannot be divided into "
                             f"{fifo_depth_tiles} FIFO tiles")
        self.rows = geometry.rows
        #: Rows per FIFO region — the rotation policies remap within regions
        #: (a per-tile remap table), so a tile's rows stay inside the tile.
        self.region_rows = geometry.rows // self.fifo_depth_tiles
        self._identity = np.arange(self.rows, dtype=np.int64)
        self._rotation_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Mapping interface
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return to the initial (identity) mapping and drop any feedback."""

    def permutation(self, epoch: int) -> np.ndarray:
        """The logical→physical row map in force during ``epoch``."""
        return self._region_rotation(self._offset_at(epoch))

    def observe(self, epoch: int, row_stress: np.ndarray) -> None:
        """Report per-physical-row stress accumulated over the first ``epoch`` epochs."""

    def change_epochs(self, num_inferences: int) -> np.ndarray:
        """Epochs in ``[0, num_inferences)`` at which the mapping may change."""
        if num_inferences <= 1:
            return np.zeros(1, dtype=np.int64)
        offsets = self._offset_at(np.arange(num_inferences, dtype=np.int64))
        offsets = np.broadcast_to(offsets, (num_inferences,))
        changes = np.flatnonzero(np.diff(offsets)) + 1
        return np.concatenate([[0], changes]).astype(np.int64)

    def spans(self, num_inferences: int, start: int = 0,
              stop: Optional[int] = None) -> Iterator[Tuple[int, int]]:
        """Yield ``(start_epoch, length)`` stretches of constant mapping.

        ``change_epochs`` is evaluated over the full ``num_inferences``
        horizon; the optional ``[start, stop)`` window restricts the yielded
        spans to a sub-range of it — the scenario driver walks one phase's
        window at a time while the leveler's schedule spans the whole
        timeline.
        """
        starts, lengths = self._span_bounds(num_inferences, start, stop)
        for span_start, length in zip(starts, lengths):
            yield int(span_start), int(length)

    def _span_bounds(self, num_inferences: int, start: int = 0,
                     stop: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Cut ``change_epochs`` down to the ``[start, stop)`` window."""
        check_positive_int(num_inferences, "num_inferences")
        start = int(start)
        stop = num_inferences if stop is None else int(stop)
        changes = np.asarray(self.change_epochs(num_inferences), dtype=np.int64)
        inner = changes[(changes > start) & (changes < stop)]
        if stop > start:
            starts = np.concatenate([np.asarray([start], dtype=np.int64), inner])
            ends = np.concatenate([inner, np.asarray([stop], dtype=np.int64)])
            keep = ends > starts
            starts, lengths = starts[keep], (ends - starts)[keep]
        else:
            starts = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        if _VALIDATE_SPANS:
            _check_span_tiling(starts, lengths, start, stop, self.name)
        return starts, lengths

    def span_table(self, num_inferences: int, start: int = 0,
                   stop: Optional[int] = None) -> SpanTable:
        """Vectorized :meth:`spans`: the window's full table in one shot.

        Returns a :class:`SpanTable` whose spans tile ``[start, stop)``
        exactly, carrying the per-span region-rotation ``offsets`` closed
        form (evaluated through :meth:`_offset_at` over the span starts).
        Schedule-driven levelers — everything whose mapping is a function of
        the epoch alone — emit the whole window at once; feedback-driven
        levelers cannot (their mapping depends on observed wear) and raise
        here: drivers walk :meth:`span_tables` instead, which chunks the
        window at ``observe()`` boundaries.
        """
        if self.uses_feedback:
            raise NotImplementedError(
                f"leveler '{self.name}' is feedback-driven: its span table "
                "depends on observed wear; iterate span_tables() instead")
        starts, lengths = self._span_bounds(num_inferences, start, stop)
        offsets = np.broadcast_to(
            np.asarray(self._offset_at(starts), dtype=np.int64), starts.shape)
        return SpanTable(self, starts, lengths, offsets=offsets)

    def span_tables(self, num_inferences: int, start: int = 0,
                    stop: Optional[int] = None) -> Iterator[SpanTable]:
        """Yield the window's span tables, chunked at feedback boundaries.

        The driver contract of the batched composition path: compose every
        yielded table, then (for :attr:`uses_feedback` levelers) call
        :meth:`observe` with the accumulated physical stress *before* pulling
        the next chunk — the generator resolves the next chunk's mapping only
        after control returns, so feedback-driven tables see exactly the
        stress the iterative :meth:`spans` walk would have shown them.
        Schedule-driven levelers yield the whole window as a single table.
        """
        yield self.span_table(num_inferences, start=start, stop=stop)

    # ------------------------------------------------------------------ #
    # Rotation helpers (shared by the offset-based subclasses)
    # ------------------------------------------------------------------ #
    def _offset_at(self, epoch):
        """Per-region rotation offset in force during ``epoch`` (0 = identity)."""
        return np.zeros_like(np.asarray(epoch, dtype=np.int64))

    def _region_rotation(self, offset: int) -> np.ndarray:
        """Permutation rotating every region's rows down by ``offset``."""
        offset = int(offset) % self.region_rows
        if offset == 0:
            return self._identity
        cached = self._rotation_cache.get(offset)
        if cached is None:
            within = (self._identity % self.region_rows + offset) % self.region_rows
            cached = (self._identity // self.region_rows) * self.region_rows + within
            self._rotation_cache[offset] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Description
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Machine-readable description (serialised into result payloads)."""
        return {"leveler": self.name,
                "fifo_depth_tiles": self.fifo_depth_tiles,
                "rows": self.rows}
