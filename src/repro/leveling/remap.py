"""Row-remap machinery shared by every wear-leveling policy.

A *wear leveler* maintains a logical-to-physical row permutation for a weight
memory: the accelerator's dataflow keeps addressing *logical* rows (block
``b`` still targets rows ``region * words_per_block ...``), while the leveler
decides which *physical* rows actually store them.  The mapping is constant
within one inference epoch and may change between epochs, which is exactly
the granularity both simulation paths consume it at:

* the fast packed engine (:class:`repro.core.simulation.AgingSimulator`)
  splits the inference range into :meth:`WearLeveler.spans` of constant
  mapping, evaluates each span's closed-form duty counts once, and gathers
  the logical counts into physical rows through the span's permutation;
* the explicit paths (:class:`repro.core.simulation.ExplicitAgingSimulator`
  and :meth:`repro.memory.trace.WriteTrace.replay`) query
  :meth:`WearLeveler.permutation` every epoch and route each block write
  through it.

Feedback-driven policies (the wear-map-guided swap) additionally receive the
accumulated per-physical-row stress through :meth:`WearLeveler.observe`; both
simulation paths report the same quantity (:func:`mean_duty_per_row` over
exact integral counts), so the permutations they derive are bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.memory.geometry import MemoryGeometry
from repro.utils.validation import check_positive_int

__all__ = ["WearLeveler", "check_permutation", "mean_duty_per_row"]


def check_permutation(permutation: np.ndarray, rows: int) -> np.ndarray:
    """Validate a logical-to-physical row map: a bijection over ``rows`` rows."""
    permutation = np.asarray(permutation, dtype=np.int64).reshape(-1)
    if permutation.size != rows:
        raise ValueError(f"permutation covers {permutation.size} rows, "
                         f"expected {rows}")
    if permutation.size and (permutation.min() < 0 or permutation.max() >= rows):
        raise ValueError("permutation entries must lie in [0, rows)")
    if np.unique(permutation).size != rows:
        raise ValueError("permutation must be a bijection (duplicate targets)")
    return permutation


def mean_duty_per_row(ones: np.ndarray, hold_per_row: np.ndarray) -> np.ndarray:
    """Per-physical-row mean duty-cycle: the stress signal of guided levelers.

    ``ones`` is the accumulated per-cell ones count/time (``(rows, bits)``)
    and ``hold_per_row`` the accumulated per-row cell-hold total.  Both
    simulation paths accumulate exact integers in float64, so the ratio — and
    therefore any ordering a leveler derives from it — is bit-identical
    between the packed and explicit engines.  Never-written rows report 0.
    """
    ones = np.asarray(ones, dtype=np.float64)
    hold = np.asarray(hold_per_row, dtype=np.float64).reshape(-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(hold > 0, ones.sum(axis=1) / hold, 0.0)


class WearLeveler:
    """Base wear leveler: the identity mapping (no leveling).

    Subclasses override :meth:`_offset_at` (pure per-region rotations) or
    :meth:`permutation` / :meth:`observe` (table-driven policies) and
    :meth:`change_epochs`.  The mapping contract:

    * :meth:`permutation` returns the logical→physical row map in force for
      ``epoch``; drivers call it with non-decreasing epochs;
    * :meth:`observe` feeds the accumulated per-physical-row stress after
      ``epoch`` epochs (only consulted when :attr:`uses_feedback`);
    * :meth:`change_epochs` lists every epoch at which the map may differ
      from the previous epoch's, so the fast engine can batch the constant
      stretches; :meth:`spans` turns that into ``(start, length)`` segments.
    """

    #: Registry name of the policy (overridden by subclasses).
    name = "none"
    #: Whether :meth:`observe` feedback influences the mapping.
    uses_feedback = False

    def __init__(self, geometry: MemoryGeometry, fifo_depth_tiles: int = 1):
        self.geometry = geometry
        self.fifo_depth_tiles = check_positive_int(fifo_depth_tiles, "fifo_depth_tiles")
        if geometry.rows % self.fifo_depth_tiles != 0:
            raise ValueError(f"{geometry.rows} rows cannot be divided into "
                             f"{fifo_depth_tiles} FIFO tiles")
        self.rows = geometry.rows
        #: Rows per FIFO region — the rotation policies remap within regions
        #: (a per-tile remap table), so a tile's rows stay inside the tile.
        self.region_rows = geometry.rows // self.fifo_depth_tiles
        self._identity = np.arange(self.rows, dtype=np.int64)
        self._rotation_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Mapping interface
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return to the initial (identity) mapping and drop any feedback."""

    def permutation(self, epoch: int) -> np.ndarray:
        """The logical→physical row map in force during ``epoch``."""
        return self._region_rotation(self._offset_at(epoch))

    def observe(self, epoch: int, row_stress: np.ndarray) -> None:
        """Report per-physical-row stress accumulated over the first ``epoch`` epochs."""

    def change_epochs(self, num_inferences: int) -> np.ndarray:
        """Epochs in ``[0, num_inferences)`` at which the mapping may change."""
        if num_inferences <= 1:
            return np.zeros(1, dtype=np.int64)
        offsets = self._offset_at(np.arange(num_inferences, dtype=np.int64))
        offsets = np.broadcast_to(offsets, (num_inferences,))
        changes = np.flatnonzero(np.diff(offsets)) + 1
        return np.concatenate([[0], changes]).astype(np.int64)

    def spans(self, num_inferences: int, start: int = 0,
              stop: Optional[int] = None) -> Iterator[Tuple[int, int]]:
        """Yield ``(start_epoch, length)`` stretches of constant mapping.

        ``change_epochs`` is evaluated over the full ``num_inferences``
        horizon; the optional ``[start, stop)`` window restricts the yielded
        spans to a sub-range of it — the scenario driver walks one phase's
        window at a time while the leveler's schedule spans the whole
        timeline.
        """
        check_positive_int(num_inferences, "num_inferences")
        stop = num_inferences if stop is None else stop
        changes = [int(epoch) for epoch in self.change_epochs(num_inferences)
                   if start < epoch < stop]
        bounds = [start] + changes + [stop]
        for low, high in zip(bounds[:-1], bounds[1:]):
            if high > low:
                yield low, high - low

    # ------------------------------------------------------------------ #
    # Rotation helpers (shared by the offset-based subclasses)
    # ------------------------------------------------------------------ #
    def _offset_at(self, epoch):
        """Per-region rotation offset in force during ``epoch`` (0 = identity)."""
        return np.zeros_like(np.asarray(epoch, dtype=np.int64))

    def _region_rotation(self, offset: int) -> np.ndarray:
        """Permutation rotating every region's rows down by ``offset``."""
        offset = int(offset) % self.region_rows
        if offset == 0:
            return self._identity
        cached = self._rotation_cache.get(offset)
        if cached is None:
            within = (self._identity % self.region_rows + offset) % self.region_rows
            cached = (self._identity // self.region_rows) * self.region_rows + within
            self._rotation_cache[offset] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Description
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Machine-readable description (serialised into result payloads)."""
        return {"leveler": self.name,
                "fifo_depth_tiles": self.fifo_depth_tiles,
                "rows": self.rows}
