"""Multi-phase lifetime scenarios (composable stress timelines).

The single-stream simulators answer "what if the accelerator ran *this*
network forever at one temperature".  This package composes that primitive
into whole deployments: a :class:`~repro.scenario.phases.LifetimeScenario`
is an ordered list of :class:`~repro.scenario.phases.Phase` objects — model
swaps (OTA updates, multi-tenant time-sharing), idle stretches with retained
weights, thermal corners — each with its own workload, mitigation policy,
duration and DVFS :class:`~repro.scenario.operating_point.OperatingPoint`
(voltage, frequency, temperature).

Two engines evaluate a scenario:

* :class:`~repro.scenario.driver.ScenarioAgingSimulator` — the fast driver.
  Each phase is accounted through its policy's closed-form
  ``counts(start, n)`` kernel (:meth:`repro.core.simulation.AgingSimulator.counts_kernel`),
  wear-leveling remap state persists across phase boundaries, the exact
  last-written value of every cell is tracked closed-form
  (:meth:`repro.core.simulation.AgingSimulator.last_bits_kernel`) for the
  idle-phase retention reports, and the per-phase duty-cycles are folded
  into one effective (duty, years) pair via :mod:`repro.aging.stress` —
  with each phase's voltage and frequency weighting stress-time and
  wall-clock time respectively.
* :class:`~repro.scenario.driver.ExplicitScenarioSimulator` — the exact
  phase-replay cross-check, built on the same
  :func:`repro.core.simulation.replay_inference` primitive as the classic
  explicit engine; bit-identical to the fast driver for deterministic
  policies, retention reports included.

Scenarios are described programmatically or through the phase-spec
mini-language (``dnn-life scenario --spec ...``)::

    lenet5:int8:dnn_life:1000@85C@0.72V:0.5GHz,idle:500@45C@0.6V:0.1GHz
"""

from repro.scenario.driver import (
    ExplicitScenarioSimulator,
    ScenarioAgingSimulator,
    ScenarioResult,
    scenario_stream_factory,
)
from repro.scenario.operating_point import (
    OperatingPoint,
    RetentionModel,
    reference_operating_point,
)
from repro.scenario.phases import (
    DEFAULT_PHASE_TEMPERATURE_C,
    LifetimeScenario,
    Phase,
    merge_adjacent_phases,
    parse_scenario_spec,
)

__all__ = [
    "DEFAULT_PHASE_TEMPERATURE_C",
    "ExplicitScenarioSimulator",
    "LifetimeScenario",
    "OperatingPoint",
    "Phase",
    "RetentionModel",
    "ScenarioAgingSimulator",
    "ScenarioResult",
    "merge_adjacent_phases",
    "parse_scenario_spec",
    "reference_operating_point",
    "scenario_stream_factory",
]
