"""Scenario evaluation engines: packed timeline driver + explicit cross-check.

Both engines walk a :class:`~repro.scenario.phases.LifetimeScenario` under
one shared contract:

* **mitigation policy state resets at every phase boundary** — the encoding
  policy is part of the per-workload accelerator configuration, and a model
  swap (OTA update, tenant switch) reloads it;
* **wear-leveling remap state persists across phase boundaries** — the remap
  table lives in the memory controller, and its epoch counter advances only
  during active phases (remap events are write-triggered);
* **idle phases retain weights**: no writes land, and each cell's retention
  stress-duty is modelled by the *preceding active phase's* per-cell duty —
  the expected value of the bit the cell is left holding.  Additionally both
  engines track the **exact last-written value** of every physical cell
  (closed-form per policy via
  :meth:`repro.core.simulation.AgingSimulator.last_bits_kernel` on the
  packed side, write-by-write on the explicit side), so idle phases report a
  per-cell data-retention failure probability at their operating point —
  low-voltage idle corners are where retention margins collapse;
* **operating points weight time, not duty**: each phase contributes
  ``(duty, years, temperature, voltage)`` to the :mod:`repro.aging.stress`
  aggregation, which folds the timeline into the single effective
  ``(duty, years)`` pair every SNM model consumes; the phase's clock
  frequency already entered through the wall-clock share
  (:meth:`~repro.scenario.phases.LifetimeScenario.phase_years`).

The fast driver evaluates each active phase through the policy's closed-form
``counts(start, n)`` kernel (:meth:`repro.core.simulation.AgingSimulator.counts_kernel`)
— one kernel build per phase, one cheap combination per leveling span, never
a per-block Python loop.  The explicit engine replays every phase write by
write via :func:`repro.core.simulation.replay_inference`; for deterministic
policies the two agree bit-for-bit, and a degenerate single-phase scenario at
the reference temperature reproduces :class:`~repro.core.simulation.AgingSimulator`
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.aging.snm import SnmDegradationModel, default_snm_model
from repro.aging.stress import (
    DEFAULT_REFERENCE_VOLTAGE_V,
    ArrheniusTimeScaling,
    PhaseStress,
    aggregate_stress,
    scaling_for_model,
)
from repro.core.policies import MitigationPolicy, make_policy
from repro.core.simulation import (
    AgingResult,
    AgingSimulator,
    _duty_from_counts,
    replay_inference,
)
from repro.core.span_compose import SpanComposer
from repro.leveling.remap import mean_duty_from_row_counts, mean_duty_per_row
from repro.scenario.operating_point import RetentionModel
from repro.scenario.phases import LifetimeScenario, Phase
from repro.utils.rng import SeedLike, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.experiments.common import ExperimentScale
    from repro.leveling.remap import SpanTable, WearLeveler

__all__ = [
    "ScenarioResult",
    "ScenarioAgingSimulator",
    "ExplicitScenarioSimulator",
    "scenario_stream_factory",
]

#: A stream factory maps an active :class:`Phase` to a scheduler-compatible
#: weight stream (anything exposing ``geometry`` / ``iter_blocks`` / ...).
StreamFactory = Callable[[Phase], object]


def scenario_stream_factory(accelerator: Optional[object] = None,
                            scale: Optional["ExperimentScale"] = None,
                            seed: int = 0,
                            reuse: bool = True) -> StreamFactory:
    """The default stream factory: model-zoo networks on one accelerator.

    Streams are built through the experiment layer's process-local stream
    cache (:func:`repro.experiments.aging_runner.build_workload_stream`), so
    a scenario that revisits a (network, format) pair — and sweep jobs with
    stream affinity — quantize and bit-unpack each workload exactly once per
    process.
    """
    from repro.accelerator.baseline import BaselineAccelerator

    accelerator = accelerator if accelerator is not None else BaselineAccelerator()

    def factory(phase: Phase) -> object:
        from repro.experiments.aging_runner import build_workload_stream
        from repro.experiments.common import ExperimentScale

        resolved_scale = scale or ExperimentScale.quick()
        return build_workload_stream(phase.network, accelerator,
                                     phase.data_format, resolved_scale,
                                     seed=seed, reuse=reuse)

    return factory


@dataclass
class ScenarioResult:
    """Outcome of evaluating one lifetime scenario.

    ``effective`` is an :class:`~repro.core.simulation.AgingResult` whose
    duty-cycles and ``years`` are the timeline's *effective* stress pair —
    every downstream consumer (histograms, summaries, wear maps, lifetime
    estimation) works on it unchanged.  ``phase_stress`` keeps the raw
    per-phase ``(duty, years, temperature)`` timeline and ``phase_results``
    the per-phase aging results (``None`` for idle phases).
    """

    scenario: Dict[str, object]
    engine: str
    effective: AgingResult
    phase_stress: List[PhaseStress]
    phase_results: List[Optional[AgingResult]]
    scaling: ArrheniusTimeScaling
    wall_years: float
    #: Per-phase retention report (``None`` for active phases and for idle
    #: phases with nothing held), aligned with ``phase_stress``.
    phase_retention: Optional[List[Optional[Dict[str, object]]]] = None
    #: Set when rebuilt from a payload: the original per-phase report rows
    #: (the per-phase ``AgingResult`` objects are not round-tripped, so the
    #: kind/num_inferences columns cannot be re-derived from placeholders).
    _phase_rows_override: Optional[List[Dict[str, object]]] = None

    @property
    def effective_years(self) -> float:
        """Reference-temperature-equivalent years of the whole timeline."""
        return self.effective.years

    def phase_rows(self) -> List[Dict[str, object]]:
        """One JSON-safe report row per phase of the timeline."""
        if self._phase_rows_override is not None:
            return [dict(row) for row in self._phase_rows_override]
        rows = []
        retention = self.phase_retention or [None] * len(self.phase_stress)
        for stress, result, held in zip(self.phase_stress, self.phase_results,
                                        retention):
            duty = stress.duty.reshape(-1)
            row = {
                "label": stress.label,
                "kind": "idle" if result is None else "active",
                "years": stress.years,
                "temperature_c": stress.temperature_c,
                "voltage_v": stress.voltage_v,
                "time_factor": self.scaling.time_factor(stress.temperature_c,
                                                        stress.voltage_v),
                "num_inferences": None if result is None else result.num_inferences,
                "mean_duty": float(duty.mean()),
                "max_abs_deviation_from_half": float(np.abs(duty - 0.5).max()),
            }
            if held is not None:
                row["retention"] = dict(held)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, object]:
        """Headline metrics: the effective view plus the per-phase timeline."""
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "wall_years": self.wall_years,
            "effective_years": self.effective_years,
            "scaling": self.scaling.describe(),
            "effective": self.effective.summary(),
            "phases": self.phase_rows(),
        }

    # ------------------------------------------------------------------ #
    # Serialization (orchestration cache / sweep-worker transport)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation of the result.

        Carries the effective result in full (via
        :meth:`AgingResult.to_payload`) plus the exact per-phase stress
        timeline; per-phase :class:`AgingResult` objects are summarised, not
        round-tripped.  An idle phase holds the *same* duty array as the
        phase it retains (by reference), so its entry carries a ``duty_ref``
        back-reference instead of a duplicate of the (possibly multi-MB)
        duty list; :meth:`from_payload` restores the alias.
        """
        stress_entries: List[Dict[str, object]] = []
        for index, stress in enumerate(self.phase_stress):
            entry: Dict[str, object] = {
                "label": stress.label,
                "years": stress.years,
                "temperature_c": stress.temperature_c,
                "voltage_v": stress.voltage_v,
            }
            reference = next((j for j in range(index)
                              if self.phase_stress[j].duty is stress.duty), None)
            if reference is not None:
                entry["duty_ref"] = reference
            else:
                entry["duty_shape"] = list(stress.duty.shape)
                entry["duty"] = stress.duty.reshape(-1).tolist()
            stress_entries.append(entry)
        return {
            "scenario": dict(self.scenario),
            "engine": self.engine,
            "wall_years": self.wall_years,
            "scaling": self.scaling.describe(),
            "effective": self.effective.to_payload(),
            "phases": self.phase_rows(),
            "phase_stress": stress_entries,
            "phase_retention": (None if self.phase_retention is None else
                                [None if entry is None else dict(entry)
                                 for entry in self.phase_retention]),
            "phase_summaries": [None if result is None else result.summary()
                                for result in self.phase_results],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_payload` output.

        Per-phase ``AgingResult`` objects are not reconstructed (the payload
        carries their summaries only); ``phase_results`` aligns with the
        stress timeline and holds ``None`` placeholders, while
        :meth:`phase_rows` serves the original report rows verbatim.
        """
        stress = []
        for entry in payload["phase_stress"]:
            if "duty_ref" in entry:
                duty = stress[int(entry["duty_ref"])].duty
            else:
                duty = np.asarray(entry["duty"], dtype=np.float64)
                duty = duty.reshape([int(dim) for dim in entry["duty_shape"]])
            voltage = entry.get("voltage_v", DEFAULT_REFERENCE_VOLTAGE_V)
            stress.append(PhaseStress(duty=duty, years=float(entry["years"]),
                                      temperature_c=float(entry["temperature_c"]),
                                      label=str(entry["label"]),
                                      voltage_v=float(voltage)))
        retention = payload.get("phase_retention")
        return cls(
            scenario=dict(payload["scenario"]),
            engine=str(payload["engine"]),
            effective=AgingResult.from_payload(payload["effective"]),
            phase_stress=stress,
            phase_results=[None] * len(stress),
            scaling=ArrheniusTimeScaling(**dict(payload["scaling"])),
            wall_years=float(payload["wall_years"]),
            phase_retention=(None if retention is None else
                             [None if entry is None else dict(entry)
                              for entry in retention]),
            _phase_rows_override=[dict(row) for row in payload["phases"]],
        )


# --------------------------------------------------------------------------- #
# Shared engine plumbing
# --------------------------------------------------------------------------- #
class _ScenarioEngineBase:
    """State shared by the packed and explicit scenario engines."""

    engine_name = "scenario"

    def __init__(self, scenario: LifetimeScenario,
                 stream_factory: Optional[StreamFactory] = None,
                 seed: SeedLike = 0,
                 snm_model: Optional[SnmDegradationModel] = None,
                 leveler: Optional["WearLeveler"] = None,
                 scaling: Optional[ArrheniusTimeScaling] = None,
                 retention_model: Optional[RetentionModel] = None):
        self.scenario = scenario
        self.seed = seed
        self.snm_model = snm_model or default_snm_model()
        self.leveler = leveler
        self.scaling = scaling or self._default_scaling()
        self.retention_model = retention_model or RetentionModel()
        self.stream_factory = stream_factory or scenario_stream_factory(seed=_factory_seed(seed))
        self._streams: Optional[Dict[Tuple[str, str], object]] = None
        #: Exact last-written value of every physical cell (NaN = never
        #: written); allocated by :func:`_run_timeline` only for timelines
        #: with idle phases (the retention reports' sole consumer), updated
        #: per active phase.
        self._held: Optional[np.ndarray] = None

    def _default_scaling(self) -> ArrheniusTimeScaling:
        base = scaling_for_model(self.snm_model)
        if base.reference_temperature_c != self.scenario.reference_temperature_c:
            base = ArrheniusTimeScaling(
                activation_energy_ev=base.activation_energy_ev,
                time_exponent=base.time_exponent,
                reference_temperature_c=self.scenario.reference_temperature_c)
        return base

    # ------------------------------------------------------------------ #
    # Streams and geometry
    # ------------------------------------------------------------------ #
    def streams(self) -> Dict[Tuple[str, str], object]:
        """One stream per distinct (network, data_format) pair, geometry-checked."""
        if self._streams is not None:
            return self._streams
        streams: Dict[Tuple[str, str], object] = {}
        reference: Optional[Tuple[str, int, int]] = None
        for index, phase in enumerate(self.scenario.phases):
            if phase.is_idle:
                continue
            key = (phase.network, phase.data_format)
            if key not in streams:
                streams[key] = self.stream_factory(phase)
            geometry = streams[key].geometry
            signature = (phase.label(index), geometry.rows, geometry.word_bits)
            if reference is None:
                reference = signature
            elif signature[1:] != reference[1:]:
                raise ValueError(
                    f"{signature[0]} maps to {signature[1]} rows x "
                    f"{signature[2]}-bit words but {reference[0]} established "
                    f"{reference[1]} rows x {reference[2]}-bit words; all "
                    "phases of a scenario must share one weight-memory geometry")
        if self.leveler is not None and self.leveler.rows != reference[1]:
            raise ValueError(f"leveler covers {self.leveler.rows} rows but the "
                             f"scenario memory has {reference[1]}")
        self._streams = streams
        return streams

    def _geometry(self) -> Tuple[int, int]:
        streams = self.streams()
        stream = next(iter(streams.values()))
        return stream.geometry.rows, stream.geometry.word_bits

    # ------------------------------------------------------------------ #
    # Packaging
    # ------------------------------------------------------------------ #
    def _package(self, phase_stress: List[PhaseStress],
                 phase_results: List[Optional[AgingResult]],
                 phase_retention: Optional[List[Optional[Dict[str, object]]]] = None
                 ) -> ScenarioResult:
        effective_duty, effective_years = aggregate_stress(phase_stress, self.scaling)
        description: Dict[str, object] = {"scenario": self.scenario.describe(),
                                          "engine": self.engine_name}
        if self.leveler is not None:
            description["leveling"] = self.leveler.describe()
        effective = AgingResult(
            policy_name="scenario",
            policy_description=description,
            duty_cycles=effective_duty,
            num_inferences=self.scenario.active_epochs,
            num_blocks=sum(result.num_blocks for result in phase_results
                           if result is not None),
            snm_model=self.snm_model,
            years=effective_years,
        )
        return ScenarioResult(
            scenario=self.scenario.describe(),
            engine=self.engine_name,
            effective=effective,
            phase_stress=phase_stress,
            phase_results=phase_results,
            scaling=self.scaling,
            wall_years=float(self.scenario.years),
            phase_retention=phase_retention,
        )

    def _phase_policy(self, phase: Phase, word_bits: int,
                      rng: np.random.Generator) -> MitigationPolicy:
        return make_policy(phase.policy, word_bits, seed=rng,
                           **dict(phase.policy_options))

    def _retention_report(self, phase: Phase, idle_years: float,
                          stress_so_far: List[PhaseStress],
                          label: str) -> Optional[Dict[str, object]]:
        """Retention-failure report of one idle phase (``None`` if nothing held).

        The cells' margin is evaluated at the stress they have accumulated by
        the *end* of the idle window (conservative), at the idle phase's
        operating point, against the exact last-written value each physical
        cell holds.  For deterministic policies the report is bit-identical
        between the engines; for the stochastic DNN-Life policy the packed
        engine holds expectations where the explicit engine holds samples.
        """
        held = self._held
        if held is None or not np.any(np.isfinite(held)):
            return None
        point = phase.operating_point
        duty, effective_years = aggregate_stress(stress_so_far, self.scaling)
        probability = self.retention_model.failure_probability(
            held, duty, self.snm_model, effective_years,
            point.voltage_v, point.temperature_c, idle_years)
        finite = probability[np.isfinite(probability)]
        return {
            "label": label,
            "operating_point": point.describe(),
            "model": self.retention_model.describe(),
            "idle_years": float(idle_years),
            "cells_tracked": int(np.isfinite(held).sum()),
            "failure_probability_mean": float(finite.mean()),
            "failure_probability_max": float(finite.max()),
            "expected_bit_flips": float(np.nansum(probability)),
            "cells_at_risk_fraction": float((finite > 1e-6).mean()),
        }

    # ------------------------------------------------------------------ #
    # Engine hooks (the template method :func:`_run_timeline` drives these)
    # ------------------------------------------------------------------ #
    def _prepare(self, total_active: int) -> None:
        """One-time setup before the timeline walk (after leveler reset).

        The base hook records the timeline horizon (the leveler's change
        schedule spans all active epochs) and whether the leveler consumes
        the scenario-cumulative wear feedback; engines allocate their own
        feedback accumulators on top — the packed engine keeps ``(rows,)``
        physical row totals, the explicit engine full count matrices.  Both
        accumulate exact integers in float64, so the stress ratios they feed
        to :meth:`WearLeveler.observe` are bit-identical.
        """
        self._total_active = total_active
        self._track_feedback = (self.leveler is not None
                                and self.leveler.uses_feedback)

    def _phase_counts(self, stream: object, policy: MitigationPolicy,
                      phase: Phase, cursor: int, rng: np.random.Generator
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Compute one active phase's physical ``(ones, writes)`` counts.

        ``cursor`` is the phase's first global active epoch; implementations
        must route writes through the (persistent) leveler, and — for
        feedback-driven levelers — maintain their scenario-cumulative
        physical wear accumulators and feed the accumulated stress to
        :meth:`WearLeveler.observe`.
        """
        raise NotImplementedError


def _factory_seed(seed: SeedLike) -> int:
    """Reduce a seed-like input to the integer the stream factory caches on.

    Integers pass through; a ``SeedSequence`` is reduced deterministically
    (distinct sequences yield distinct stream seeds without consuming any
    state).  ``None`` and ``Generator`` inputs fall back to 0 — the stream
    cache needs a stable hashable key, and a generator's state cannot be
    read without mutating it — so only the *policy* randomness varies for
    those inputs.
    """
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, dtype=np.uint32)[0])
    return 0


# --------------------------------------------------------------------------- #
# The shared timeline walk (template method on the engine base)
# --------------------------------------------------------------------------- #
def _run_timeline(engine: "_ScenarioEngineBase") -> ScenarioResult:
    """Walk the scenario's phases under the shared engine contract.

    Everything that defines the scenario semantics — idle phases holding the
    preceding duty, per-phase policy construction/reset, the global
    active-epoch cursor, leveler lifetime, stress packaging — lives here
    once; the two engines only differ in how one active phase's ``(ones,
    writes)`` counts are computed (:meth:`_ScenarioEngineBase._phase_counts`).
    Keeping the contract single-sourced is what makes their bit-for-bit
    equivalence a property of the count kernels alone.
    """
    streams = engine.streams()
    rows, word_bits = engine._geometry()
    scenario = engine.scenario
    leveler = engine.leveler
    if leveler is not None:
        leveler.reset()
    # Last-written values only feed the idle retention reports; tracking is
    # skipped entirely for timelines without idle phases and dropped once
    # the last idle phase has been reported (phases after it would compute
    # held values nothing ever reads) — pre-DVFS scenarios pay nothing for
    # the new layer, and mixed timelines only pay up to their last idle.
    last_idle_index = max((position
                           for position, phase in enumerate(scenario.phases)
                           if phase.is_idle), default=-1)
    engine._held = (np.full((rows, word_bits), np.nan, dtype=np.float64)
                    if last_idle_index >= 0 else None)
    engine._prepare(scenario.active_epochs)
    rngs = spawn_rngs(engine.seed, len(scenario.active_phases))
    phase_years = scenario.phase_years()
    phase_stress: List[PhaseStress] = []
    phase_results: List[Optional[AgingResult]] = []
    phase_retention: List[Optional[Dict[str, object]]] = []
    previous_duty: Optional[np.ndarray] = None
    cursor = 0
    active_index = 0
    for index, phase in enumerate(scenario.phases):
        if index > last_idle_index:
            engine._held = None
        label = phase.label(index)
        voltage = phase.operating_point.voltage_v
        if phase.is_idle:
            phase_stress.append(PhaseStress(previous_duty, phase_years[index],
                                            phase.temperature_c, label=label,
                                            voltage_v=voltage))
            phase_results.append(None)
            phase_retention.append(engine._retention_report(
                phase, phase_years[index], phase_stress, label))
            continue
        stream = streams[(phase.network, phase.data_format)]
        policy = engine._phase_policy(phase, word_bits, rngs[active_index])
        ones, writes = engine._phase_counts(
            stream, policy, phase, cursor, rngs[active_index])
        duty = _duty_from_counts(ones, writes)
        result = AgingResult(
            policy_name=policy.name,
            policy_description={**policy.describe(), "phase": label},
            duty_cycles=duty,
            num_inferences=phase.duration,
            num_blocks=stream.num_blocks,
            snm_model=engine.snm_model,
            years=phase_years[index],
        )
        phase_results.append(result)
        phase_stress.append(PhaseStress(duty, phase_years[index],
                                        phase.temperature_c, label=label,
                                        voltage_v=voltage))
        phase_retention.append(None)
        previous_duty = duty
        cursor += phase.duration
        active_index += 1
    return engine._package(phase_stress, phase_results, phase_retention)


# --------------------------------------------------------------------------- #
# Fast (packed, closed-form) scenario driver
# --------------------------------------------------------------------------- #
class ScenarioAgingSimulator(_ScenarioEngineBase):
    """Evaluates a lifetime scenario through the packed closed-form kernels.

    Per active phase, one :class:`~repro.core.simulation.AgingSimulator` is
    built on the phase's (cached) stream and its
    :meth:`~repro.core.simulation.AgingSimulator.counts_kernel` evaluated —
    once for the whole phase without a leveler, or once per constant-mapping
    leveling span with one.  Kernel ``start`` arguments are phase-local
    (policy state resets at boundaries) while leveler permutations are
    addressed by the global active-epoch cursor (remap state persists).
    """

    engine_name = "packed"

    def run(self) -> ScenarioResult:
        """Evaluate the whole timeline; returns the scenario result."""
        return _run_timeline(self)

    def _prepare(self, total_active: int) -> None:
        # The leveler's change schedule spans the whole timeline; per-phase
        # span tables are cut out of it through the (start, stop) window of
        # :meth:`WearLeveler.span_tables`.  Feedback runs on (rows,) physical
        # row totals persisted across phases.
        super()._prepare(total_active)
        if self._track_feedback:
            rows, _ = self._geometry()
            self._row_acc_ones = np.zeros(rows, dtype=np.float64)
            self._row_acc_writes = np.zeros(rows, dtype=np.float64)

    def _phase_counts(self, stream: object, policy: MitigationPolicy,
                      phase: Phase, cursor: int, rng: np.random.Generator
                      ) -> Tuple[np.ndarray, np.ndarray]:
        simulator = AgingSimulator(stream, policy,
                                   num_inferences=phase.duration,
                                   seed=rng, snm_model=self.snm_model)
        kernel = simulator.counts_kernel()
        track_held = self._held is not None
        if track_held:
            last_bits, written = simulator.last_bits_kernel()
        leveler = self.leveler
        if leveler is None:
            if track_held:
                # The value each written row holds after the phase is
                # whatever its final write of the final epoch stored.
                self._held[written] = last_bits(phase.duration - 1)[written]
            return kernel(0, phase.duration)
        if not kernel.supports_batch:
            return self._phase_counts_loop(kernel, phase, cursor,
                                           last_bits if track_held else None,
                                           written if track_held else None)
        rows, word_bits = self._geometry()
        track_feedback = self._track_feedback
        composer = SpanComposer(rows, word_bits, leveler.region_rows,
                                track_feedback=track_feedback)
        tables: List["SpanTable"] = []
        for table in leveler.span_tables(self._total_active, start=cursor,
                                         stop=cursor + phase.duration):
            if not table.num_spans:
                continue
            # Kernel starts are phase-local (policy state resets at phase
            # boundaries); the table's global starts keep addressing the
            # persistent leveler schedule.
            composer.add_table(
                table, kernel.counts_batch(table.starts - cursor,
                                           table.lengths))
            tables.append(table)
            if track_feedback:
                row_ones, row_writes = composer.row_totals()
                leveler.observe(
                    int(table.starts[-1] + table.lengths[-1]),
                    mean_duty_from_row_counts(
                        self._row_acc_ones + row_ones,
                        (self._row_acc_writes + row_writes)
                        * float(word_bits)))
        if track_held:
            self._scatter_held(tables, cursor, last_bits, written)
        ones, writes = composer.finalize()
        if track_feedback:
            row_ones, row_writes = composer.row_totals()
            self._row_acc_ones += row_ones
            self._row_acc_writes += row_writes
        return ones, writes

    def _scatter_held(self, tables: List["SpanTable"], cursor: int,
                      last_bits: Callable[[int], np.ndarray],
                      written: np.ndarray) -> None:
        """Batched ``last_bits`` scatter over a phase's span tables.

        The iterative walk overwrites each physical cell span after span, so
        the final state only keeps the *newest* span covering each cell.
        Walking the spans newest-first and filling each physical row at most
        once reproduces that state while evaluating the (expensive)
        ``last_bits`` closed form only for spans that still contribute —
        one call in the common case where the newest span covers every
        written row.
        """
        logical = np.flatnonzero(written)
        if not logical.size:
            return
        filled = np.zeros(self._held.shape[0], dtype=bool)
        remaining = int(filled.size)
        for table in reversed(tables):
            for index in range(table.num_spans - 1, -1, -1):
                permutation = table.permutation(index)
                targets = permutation[logical]
                need = ~filled[targets]
                if need.any():
                    local_end = int(table.starts[index] - cursor
                                    + table.lengths[index] - 1)
                    stored = last_bits(local_end)
                    self._held[targets[need]] = stored[logical[need]]
                    filled[targets[need]] = True
                    remaining -= int(np.count_nonzero(need))
                if remaining <= 0:
                    return

    def _phase_counts_loop(self, kernel: Callable, phase: Phase, cursor: int,
                           last_bits: Optional[Callable[[int], np.ndarray]],
                           written: Optional[np.ndarray]
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-span reference walk for kernels without a batched form.

        The stochastic DNN-Life kernel draws fresh randomness per span in
        call order, so its leveled composition keeps the original span loop
        (the batched path would reorder the draws).  Feedback still runs on
        the persistent ``(rows,)`` physical totals — the row reduction of a
        span's exact-integer counts commutes with the permutation scatter, so
        the observed stress is unchanged bit for bit.
        """
        leveler = self.leveler
        rows, word_bits = self._geometry()
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.float64)
        for start, length in leveler.spans(self._total_active, start=cursor,
                                           stop=cursor + phase.duration):
            permutation = leveler.permutation(start)
            span_ones, span_writes = kernel(start - cursor, length)
            ones[permutation] += span_ones
            writes[permutation] += span_writes
            if last_bits is not None:
                # Within a constant-mapping span every written row's last
                # write is in the span's final epoch; later spans overwrite
                # earlier ones in stream order, so after the loop each
                # physical cell holds exactly its last-written value.
                stored = last_bits(start - cursor + length - 1)
                self._held[permutation[written]] = stored[written]
            if self._track_feedback:
                self._row_acc_ones[permutation] += span_ones.sum(axis=1)
                self._row_acc_writes[permutation] += span_writes
                leveler.observe(start + length, mean_duty_from_row_counts(
                    self._row_acc_ones,
                    self._row_acc_writes * float(word_bits)))
        return ones, writes


# --------------------------------------------------------------------------- #
# Explicit (exact, slow) phase-replay engine
# --------------------------------------------------------------------------- #
class ExplicitScenarioSimulator(_ScenarioEngineBase):
    """Replays every phase write-by-write for bit-exact cross-checks.

    Built on the same :func:`repro.core.simulation.replay_inference`
    primitive as :class:`~repro.core.simulation.ExplicitAgingSimulator`,
    under the scenario contract (policy resets per phase, leveler persists,
    global active-epoch addressing for permutations).  For deterministic
    policies its duty-cycles — per phase and effective — match
    :class:`ScenarioAgingSimulator` bit-for-bit.
    """

    engine_name = "explicit"

    def run(self) -> ScenarioResult:
        """Replay the whole timeline; returns the scenario result."""
        return _run_timeline(self)

    def _prepare(self, total_active: int) -> None:
        # Scenario-cumulative physical count matrices: the wear-map stress
        # signal feedback-driven levelers observe.  The packed engine keeps
        # only the (rows,) reductions of the same exact-integer counts, so
        # the observed ratios — and every swap decision derived from them —
        # are bit-identical between the engines.
        super()._prepare(total_active)
        if self._track_feedback:
            rows, word_bits = self._geometry()
            self._acc_ones = np.zeros((rows, word_bits), dtype=np.float64)
            self._acc_writes = np.zeros(rows, dtype=np.float64)

    def _phase_counts(self, stream: object, policy: MitigationPolicy,
                      phase: Phase, cursor: int, rng: np.random.Generator
                      ) -> Tuple[np.ndarray, np.ndarray]:
        rows, word_bits = self._geometry()
        leveler = self.leveler
        track_feedback = self._track_feedback
        policy.reset()
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.float64)
        for local_epoch in range(phase.duration):
            epoch = cursor + local_epoch
            remap = None if leveler is None else leveler.permutation(epoch)
            replay_inference(stream, policy, ones, writes, remap,
                             stored=self._held)
            if track_feedback:
                leveler.observe(epoch + 1, mean_duty_per_row(
                    self._acc_ones + ones,
                    (self._acc_writes + writes) * float(word_bits)))
        if track_feedback:
            self._acc_ones += ones
            self._acc_writes += writes
        return ones, writes
