"""DVFS operating points for lifetime phases, plus idle retention modeling.

The PR-4 scenario engine assumed every inference epoch represents the same
wall-clock time at one fixed voltage corner.  Real deployments duty-cycle
through DVFS states: a phase throttled to half the reference clock takes
twice the wall-clock time per epoch, and a phase at a lowered supply ages
(and retains) very differently.  This module provides the per-phase
:class:`OperatingPoint` — ``(voltage, frequency, temperature)`` — and the two
pieces of physics the scenario layer composes it with:

* **aging acceleration** — voltage enters the stress aggregation through
  :meth:`repro.aging.stress.ArrheniusTimeScaling.time_factor` (an
  ``exp(gamma * dV)`` prefactor absorbed into the ``t ** n`` damage power,
  exactly like the thermal Arrhenius term);
* **retention failures** — :class:`RetentionModel` maps the *exact
  last-written value* each cell holds through an idle phase, the supply the
  phase idles at and the cell's accumulated SNM degradation to a
  data-retention failure probability.  Retention margins are a
  low-voltage-idle phenomenon: at the nominal supply the probability is
  negligible by construction.

The spec mini-language grows an optional ``@V:F`` suffix
(``NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F]``), parsed here by
:func:`parse_point_suffix`; ``V`` is volts with an optional ``V`` suffix and
``F`` is GHz with an optional ``GHz``/``MHz`` suffix.  Phases that omit the
suffix resolve to :func:`reference_operating_point`, and every factor this
module introduces is exactly ``1.0`` there — pre-DVFS scenarios reproduce
their PR-4 results bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

import numpy as np

from repro.aging.nbti import BOLTZMANN_EV
from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    DEFAULT_REFERENCE_TEMPERATURE_C,
    DEFAULT_REFERENCE_VOLTAGE_V,
)
from repro.utils.validation import (
    check_positive,
    check_positive_finite,
    check_temperature_celsius,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.aging.snm import SnmDegradationModel

__all__ = [
    "OperatingPoint",
    "RetentionModel",
    "format_point_suffix",
    "parse_point_suffix",
    "reference_operating_point",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS corner: supply voltage, clock frequency and temperature.

    ``frequency_ghz`` scales the epoch→wall-clock mapping (an epoch at half
    the reference clock spans twice the wall-clock time); ``voltage_v``
    scales the NBTI damage rate and the idle retention margin;
    ``temperature_c`` keeps its PR-4 Arrhenius role.  The defaults are the
    reference corner the paper's anchors are stated at.
    """

    voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V
    frequency_ghz: float = DEFAULT_REFERENCE_FREQUENCY_GHZ
    temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        check_positive_finite(self.voltage_v, "voltage_v")
        check_positive_finite(self.frequency_ghz, "frequency_ghz")
        check_temperature_celsius(self.temperature_c, "temperature_c")

    @property
    def is_reference(self) -> bool:
        """Whether this is exactly the reference corner (all three values)."""
        return (self.voltage_v == DEFAULT_REFERENCE_VOLTAGE_V
                and self.frequency_ghz == DEFAULT_REFERENCE_FREQUENCY_GHZ
                and self.temperature_c == DEFAULT_REFERENCE_TEMPERATURE_C)

    @property
    def relative_frequency(self) -> float:
        """Clock relative to the reference (exactly ``1.0`` at the reference).

        This is the per-phase epochs/year scale: a phase at relative
        frequency ``f`` completes ``f`` times the reference epochs per
        wall-clock year, i.e. each of its epochs spans ``1/f`` reference
        epoch-times.
        """
        if self.frequency_ghz == DEFAULT_REFERENCE_FREQUENCY_GHZ:
            return 1.0
        return self.frequency_ghz / DEFAULT_REFERENCE_FREQUENCY_GHZ

    def describe(self) -> Dict[str, float]:
        """JSON-safe description (serialised into scenario payloads)."""
        return {
            "voltage_v": self.voltage_v,
            "frequency_ghz": self.frequency_ghz,
            "temperature_c": self.temperature_c,
        }

    @classmethod
    def from_description(cls, payload: Mapping[str, object]) -> "OperatingPoint":
        """Rebuild a point from :meth:`describe` output."""
        return cls(voltage_v=float(payload["voltage_v"]),
                   frequency_ghz=float(payload["frequency_ghz"]),
                   temperature_c=float(payload["temperature_c"]))


def reference_operating_point() -> OperatingPoint:
    """The corner omitted spec suffixes resolve to (nominal V, F and T)."""
    return OperatingPoint()


# --------------------------------------------------------------------------- #
# Spec mini-language: the ``@V:F`` suffix
# --------------------------------------------------------------------------- #
def parse_point_suffix(text: str, token: str) -> Tuple[float, float]:
    """Parse one ``V:F`` spec suffix into ``(voltage_v, frequency_ghz)``.

    ``V`` is volts with an optional ``V`` suffix, ``F`` is GHz with an
    optional ``GHz`` suffix (``MHz`` divides by 1000): ``0.72V:0.5GHz``,
    ``0.72:500MHz`` and ``0.72:0.5`` all parse to ``(0.72, 0.5)``.  Raises
    single-line ``ValueError`` messages naming the offending token.
    """
    voltage_text, colon, frequency_text = text.partition(":")
    if not colon or not voltage_text.strip() or not frequency_text.strip():
        raise ValueError(f"phase '{token}': invalid operating point '{text}' "
                         "(expected 'V:F', e.g. '0.72V:0.5GHz')")
    stripped = voltage_text.strip()
    if stripped.lower().endswith("v"):
        stripped = stripped[:-1]
    try:
        voltage = float(stripped)
    except ValueError:
        raise ValueError(f"phase '{token}': invalid voltage '{voltage_text}' "
                         "(expected volts, e.g. '0.72V')") from None
    stripped = frequency_text.strip()
    scale = 1.0
    if stripped.lower().endswith("ghz"):
        stripped = stripped[:-3]
    elif stripped.lower().endswith("mhz"):
        stripped, scale = stripped[:-3], 1e-3
    try:
        frequency = float(stripped) * scale
    except ValueError:
        raise ValueError(f"phase '{token}': invalid frequency '{frequency_text}' "
                         "(expected GHz, e.g. '0.5GHz' or '500MHz')") from None
    prefix = f"phase '{token}': operating point '{text}'"
    try:
        check_positive_finite(voltage, "voltage")
        check_positive_finite(frequency, "frequency")
    except ValueError as error:
        raise ValueError(f"{prefix}: {error}") from None
    return voltage, frequency


def format_point_suffix(voltage_v: float, frequency_ghz: float) -> str:
    """The canonical ``@V:F`` suffix (inverse of :func:`parse_point_suffix`)."""
    return f"@{voltage_v:g}V:{frequency_ghz:g}GHz"


# --------------------------------------------------------------------------- #
# Idle retention
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetentionModel:
    """Data-retention failure probability of cells holding through an idle phase.

    A 6T cell retains its value while the inverter holding it keeps a
    positive static noise margin at the idle supply.  The model composes
    three effects, each stylised but monotone in the physically right
    direction:

    * **voltage headroom** — the margin is proportional to how far the idle
      supply sits above the (fresh-cell) minimum retention voltage
      ``retention_voltage_v``; failure attempts succeed at a rate
      exponential in the margin deficit (``voltage_scale_v`` is the
      exponential slope);
    * **value-dependent aging** — NBTI is asymmetric: holding value ``b``
      leans on the PMOS that was stressed for a lifetime duty of ``b ? d :
      1 - d``.  That side's one-sided degradation (the SNM model's
      power law evaluated on the held side's stress fraction) erodes the
      margin at ``margin_loss_v_per_percent`` volts per percent, so the
      *exact last-written value* matters: a cell parked on its worn side is
      the first to flip;
    * **thermal activation** — upsets are thermally activated with
      ``activation_energy_ev`` relative to the reference temperature.

    Probabilities are per idle phase: ``1 - exp(-rate * idle_years)``.  The
    defaults grade realistically across corners: at the nominal 0.9 V supply
    even a worst-case-aged cell sits below ~1e-5/year, a 0.72 V retention
    corner separates fresh (~2%/year) from worn (~50%/year) cells, and
    idling below ~0.6 V is unsafe for aged data — which is exactly the
    "when is the low-voltage idle corner too low" question the scenario
    reports answer.
    """

    retention_voltage_v: float = 0.5
    voltage_scale_v: float = 0.02
    margin_loss_v_per_percent: float = 0.003
    attempts_per_year: float = 1e3
    activation_energy_ev: float = 0.25
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        check_positive(self.retention_voltage_v, "retention_voltage_v")
        check_positive(self.voltage_scale_v, "voltage_scale_v")
        check_positive(self.attempts_per_year, "attempts_per_year")
        if self.margin_loss_v_per_percent < 0:
            raise ValueError("margin_loss_v_per_percent must be >= 0")
        check_temperature_celsius(self.reference_temperature_c,
                                  "reference_temperature_c")

    def _thermal_factor(self, temperature_c: float) -> float:
        kelvin = check_temperature_celsius(temperature_c) + 273.15
        reference = self.reference_temperature_c + 273.15
        return float(np.exp((self.activation_energy_ev / BOLTZMANN_EV)
                            * (1.0 / reference - 1.0 / kelvin)))

    @staticmethod
    def _side_degradation(snm_model: "SnmDegradationModel",
                          stress_fraction: np.ndarray,
                          years: float) -> np.ndarray:
        """One-sided SNM degradation of the inverter stressed at ``stress_fraction``.

        Derived model-agnostically from the model's two anchors: the
        symmetric model reports ``worst * max(d, 1-d) ** gamma``; the side
        holding the value degrades as ``worst * s ** gamma`` where ``s`` is
        *that* side's lifetime stress duty (for
        :class:`~repro.aging.snm.CalibratedSnmModel` this is exactly its
        internal power law, one-sided).
        """
        worst = snm_model.worst_case_percent(years)
        best = snm_model.best_case_percent(years)
        gamma = float(np.log2(worst / best)) if worst > best else 1.0
        with np.errstate(invalid="ignore"):
            return worst * np.power(np.clip(stress_fraction, 0.0, 1.0), gamma)

    def failure_rate_per_year(self, degradation_percent: np.ndarray,
                              voltage_v: float,
                              temperature_c: float) -> np.ndarray:
        """Per-cell upset rate (1/year) at the idle corner."""
        check_positive_finite(voltage_v, "voltage_v")
        margin = ((voltage_v - self.retention_voltage_v)
                  - self.margin_loss_v_per_percent
                  * np.asarray(degradation_percent, dtype=np.float64))
        with np.errstate(over="ignore", invalid="ignore"):
            rate = self.attempts_per_year * np.exp(-margin / self.voltage_scale_v)
        return rate * self._thermal_factor(temperature_c)

    def failure_probability(self, held_one_probability: np.ndarray,
                            duty: np.ndarray, snm_model: "SnmDegradationModel",
                            stressed_years: float,
                            voltage_v: float, temperature_c: float,
                            idle_years: float) -> np.ndarray:
        """Per-cell probability of losing the held value during the idle phase.

        ``held_one_probability`` is the probability each cell holds a '1'
        entering the phase — exactly 0/1 for deterministic policies, the
        TRBG expectation for the stochastic one, NaN for never-written
        cells (propagated so aggregations stay NaN-aware).  ``duty`` and
        ``stressed_years`` describe the stress accumulated *before* the
        phase ends (the margin the cells actually have at that point of the
        lifetime).
        """
        held = np.asarray(held_one_probability, dtype=np.float64)
        duty = np.asarray(duty, dtype=np.float64)
        check_positive(idle_years, "idle_years")
        probability = np.zeros_like(held)
        for value_probability, side_stress in ((held, duty),
                                               ((1.0 - held), 1.0 - duty)):
            degradation = self._side_degradation(snm_model, side_stress,
                                                 stressed_years)
            rate = self.failure_rate_per_year(degradation, voltage_v,
                                              temperature_c)
            with np.errstate(over="ignore", invalid="ignore"):
                probability = probability + value_probability * (
                    1.0 - np.exp(-rate * idle_years))
        return np.clip(probability, 0.0, 1.0)

    def describe(self) -> Dict[str, float]:
        """JSON-safe description (serialised into scenario payloads)."""
        return {
            "retention_voltage_v": self.retention_voltage_v,
            "voltage_scale_v": self.voltage_scale_v,
            "margin_loss_v_per_percent": self.margin_loss_v_per_percent,
            "attempts_per_year": self.attempts_per_year,
            "activation_energy_ev": self.activation_energy_ev,
            "reference_temperature_c": self.reference_temperature_c,
        }
