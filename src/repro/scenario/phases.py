"""Lifetime phases, scenarios and the phase-spec mini-language.

A :class:`Phase` is one homogeneous stretch of a deployment: either an
*active* phase (a network inferred under one data format, mitigation policy
and thermal corner for a number of inference epochs) or an *idle* phase (the
accelerator powered but not inferring, weights retained).  A
:class:`LifetimeScenario` is an ordered, validated sequence of phases plus
the wall-clock span the whole timeline represents.

The CLI addresses scenarios through a compact spec string, one token per
phase::

    lenet5:int8:dnn_life:1000@85C,idle:500,alexnet:int8:inversion:1000@45C

* active token — ``NETWORK:FORMAT:POLICY:DURATION[@TEMP]``
* idle token   — ``idle:DURATION[@TEMP]``

``FORMAT`` accepts the registered format names plus the shorthands in
:data:`FORMAT_ALIASES`; ``TEMP`` is degrees Celsius with an optional ``C``
suffix and defaults to :data:`DEFAULT_PHASE_TEMPERATURE_C`.  Parse errors are
single-line ``ValueError`` messages naming the offending token, which the CLI
surfaces verbatim instead of a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.aging.stress import DEFAULT_REFERENCE_TEMPERATURE_C
from repro.core.policies import POLICY_NAMES
from repro.nn.models import MODEL_ZOO
from repro.quantization.formats import available_formats, get_format
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_temperature_celsius,
)

__all__ = [
    "DEFAULT_PHASE_TEMPERATURE_C",
    "FORMAT_ALIASES",
    "Phase",
    "LifetimeScenario",
    "parse_scenario_spec",
]

#: Temperature assumed for phases that do not name one (the paper's nominal
#: worst-case operating corner).
DEFAULT_PHASE_TEMPERATURE_C = DEFAULT_REFERENCE_TEMPERATURE_C

#: Spec-token shorthands for registered data-format names.
FORMAT_ALIASES: Dict[str, str] = {
    "int8": "int8_symmetric",
    "fp32": "float32",
}

_ACTIVE_GRAMMAR = "NETWORK:FORMAT:POLICY:DURATION[@TEMP]"
_IDLE_GRAMMAR = "idle:DURATION[@TEMP]"


@dataclass(frozen=True)
class Phase:
    """One homogeneous stretch of a lifetime timeline.

    ``network``/``data_format``/``policy`` are ``None`` exactly for idle
    phases.  ``duration`` counts inference epochs for active phases and
    epoch-equivalents of wall-clock time for idle ones (the scenario converts
    both to years through the same epoch→time mapping).
    ``policy_options`` are extra keyword arguments forwarded to
    :func:`repro.core.policies.make_policy` (not expressible in the spec
    mini-language; available to programmatic callers).
    """

    network: Optional[str]
    data_format: Optional[str]
    policy: Optional[str]
    duration: int
    temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C
    policy_options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        check_positive_int(self.duration, "phase duration")
        check_temperature_celsius(self.temperature_c, "phase temperature")
        active_fields = (self.network, self.data_format, self.policy)
        if any(value is None for value in active_fields) and \
                any(value is not None for value in active_fields):
            raise ValueError("network, data_format and policy must either all "
                             "be set (active phase) or all be None (idle phase)")
        if self.is_idle and self.policy_options:
            raise ValueError("idle phases accept no policy options")
        object.__setattr__(self, "policy_options",
                           tuple((str(key), value)
                                 for key, value in tuple(self.policy_options)))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def active(cls, network: str, data_format: str, policy: str, duration: int,
               temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C,
               policy_options: Optional[Mapping[str, object]] = None) -> "Phase":
        """An inference phase; names are validated against the registries."""
        if network not in MODEL_ZOO:
            raise ValueError(f"unknown network '{network}' "
                             f"(known: {', '.join(sorted(MODEL_ZOO))})")
        data_format = FORMAT_ALIASES.get(data_format, data_format)
        if data_format not in available_formats():
            raise ValueError(f"unknown data format '{data_format}' "
                             f"(known: {', '.join(available_formats())}"
                             f"; aliases: {', '.join(sorted(FORMAT_ALIASES))})")
        if policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy '{policy}' "
                             f"(known: {', '.join(POLICY_NAMES)})")
        return cls(network=network, data_format=data_format, policy=policy,
                   duration=duration, temperature_c=float(temperature_c),
                   policy_options=tuple((policy_options or {}).items()))

    @classmethod
    def idle(cls, duration: int,
             temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C) -> "Phase":
        """A retention phase: powered, weights held, no writes."""
        return cls(network=None, data_format=None, policy=None,
                   duration=duration, temperature_c=float(temperature_c))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def is_idle(self) -> bool:
        """Whether this is a retention (no-write) phase."""
        return self.network is None

    @property
    def word_bits(self) -> Optional[int]:
        """Word width of the phase's data format (``None`` for idle phases)."""
        return None if self.is_idle else get_format(self.data_format).word_bits

    def label(self, index: int) -> str:
        """Human-readable phase label used in reports and error messages."""
        if self.is_idle:
            return f"phase {index}: idle x{self.duration} @{self.temperature_c:g}C"
        return (f"phase {index}: {self.network}/{self.data_format}/"
                f"{self.policy} x{self.duration} @{self.temperature_c:g}C")

    def to_token(self) -> str:
        """The spec mini-language token describing this phase."""
        if self.is_idle:
            return f"idle:{self.duration}@{self.temperature_c:g}C"
        return (f"{self.network}:{self.data_format}:{self.policy}:"
                f"{self.duration}@{self.temperature_c:g}C")

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the phase."""
        return {
            "kind": "idle" if self.is_idle else "active",
            "network": self.network,
            "data_format": self.data_format,
            "policy": self.policy,
            "policy_options": dict(self.policy_options),
            "duration": self.duration,
            "temperature_c": self.temperature_c,
        }


def _parse_temperature(text: str, token: str) -> float:
    """Parse the ``@TEMP`` suffix (``85``, ``85C``, ``85.5c``)."""
    stripped = text.strip()
    if stripped.lower().endswith("c"):
        stripped = stripped[:-1]
    try:
        return float(stripped)
    except ValueError:
        raise ValueError(f"phase '{token}': invalid temperature '{text}' "
                         "(expected degrees Celsius, e.g. '85C')") from None


def _parse_duration(text: str, token: str) -> int:
    try:
        duration = int(text)
    except ValueError:
        raise ValueError(f"phase '{token}': invalid duration '{text}' "
                         "(expected a positive integer of inference epochs)") from None
    if duration <= 0:
        raise ValueError(f"phase '{token}': phase duration must be > 0, got {duration}")
    return duration


def _parse_phase_token(token: str) -> Phase:
    """Parse one comma-separated phase token of the spec mini-language."""
    head, at_sign, temp_text = token.partition("@")
    if at_sign and not temp_text.strip():
        raise ValueError(f"phase '{token}': '@' must be followed by a "
                         "temperature (e.g. '@85C')")
    temperature = (_parse_temperature(temp_text, token) if temp_text
                   else DEFAULT_PHASE_TEMPERATURE_C)
    fields = [part.strip() for part in head.split(":")]
    try:
        if fields and fields[0].lower() == "idle":
            if len(fields) != 2:
                raise ValueError(f"expected '{_IDLE_GRAMMAR}'")
            return Phase.idle(_parse_duration(fields[1], token), temperature)
        if len(fields) != 4:
            raise ValueError(f"expected '{_ACTIVE_GRAMMAR}' or '{_IDLE_GRAMMAR}'")
        network, data_format, policy, duration_text = fields
        duration = _parse_duration(duration_text, token)
        return Phase.active(network, data_format, policy, duration, temperature)
    except ValueError as error:
        message = str(error)
        prefix = f"phase '{token}': "
        if message.startswith(prefix):  # _parse_duration already names the token
            raise
        raise ValueError(prefix + message) from None


def parse_scenario_spec(spec: str) -> Tuple[Phase, ...]:
    """Parse a comma-separated phase-spec string into validated phases."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("scenario spec is empty; expected comma-separated "
                         f"'{_ACTIVE_GRAMMAR}' / '{_IDLE_GRAMMAR}' tokens")
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ValueError("scenario spec contains no phases")
    return tuple(_parse_phase_token(token) for token in tokens)


@dataclass
class LifetimeScenario:
    """An ordered, validated sequence of lifetime phases.

    ``years`` is the wall-clock span of the whole timeline; each phase's
    share is proportional to its duration in epochs (one epoch represents
    the same wall-clock time in every phase, inferring or idle).
    ``reference_temperature_c`` anchors the Arrhenius equivalent-time
    composition — at the reference temperature one phase-year counts as
    exactly one effective year.
    """

    phases: Tuple[Phase, ...]
    years: float = 7.0
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    name: str = ""

    def __post_init__(self) -> None:
        self.phases = tuple(self.phases)
        if not self.phases:
            raise ValueError("a scenario requires at least one phase")
        if self.phases[0].is_idle:
            raise ValueError("a scenario cannot start with an idle phase: the "
                             "retained-weight content is undefined before the "
                             "first active phase")
        check_positive(self.years, "years")
        check_temperature_celsius(self.reference_temperature_c,
                                  "reference_temperature_c")
        # The word width of each phase is static in its data format, and the
        # memory geometry (rows = capacity / word width) is scenario-wide —
        # mixed widths are caught here as a one-line schema error instead of
        # a stream-build failure deep inside the engines.
        widths = {}
        for index, phase in enumerate(self.phases):
            if not phase.is_idle:
                widths.setdefault(phase.word_bits, phase.label(index))
        if len(widths) > 1:
            described = "; ".join(f"{bits}-bit words from {label}"
                                  for bits, label in sorted(widths.items()))
            raise ValueError(
                f"all phases of a scenario must share one word width "
                f"(the weight-memory geometry is scenario-wide), got {described}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str, years: float = 7.0,
                  reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C,
                  name: str = "") -> "LifetimeScenario":
        """Build a scenario from a phase-spec mini-language string."""
        return cls(phases=parse_scenario_spec(spec), years=years,
                   reference_temperature_c=reference_temperature_c, name=name)

    @classmethod
    def from_description(cls, payload: Mapping[str, object]) -> "LifetimeScenario":
        """Rebuild a scenario from :meth:`describe` output (payload transport)."""
        phases = []
        for entry in payload["phases"]:  # type: ignore[index]
            if entry["kind"] == "idle":
                phases.append(Phase.idle(int(entry["duration"]),
                                         float(entry["temperature_c"])))
            else:
                phases.append(Phase.active(
                    str(entry["network"]), str(entry["data_format"]),
                    str(entry["policy"]), int(entry["duration"]),
                    float(entry["temperature_c"]),
                    policy_options=dict(entry.get("policy_options") or {})))
        return cls(phases=tuple(phases), years=float(payload["years"]),
                   reference_temperature_c=float(payload["reference_temperature_c"]),
                   name=str(payload.get("name", "")))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def total_epochs(self) -> int:
        """Epochs across all phases (active and idle)."""
        return sum(phase.duration for phase in self.phases)

    @property
    def active_epochs(self) -> int:
        """Inference epochs across the active phases."""
        return sum(phase.duration for phase in self.phases if not phase.is_idle)

    @property
    def active_phases(self) -> List[Phase]:
        """The active (inference) phases, in order."""
        return [phase for phase in self.phases if not phase.is_idle]

    def phase_years(self) -> List[float]:
        """Wall-clock years of each phase (duration-proportional).

        Computed as ``years * (duration / total)`` so a single-phase scenario
        gets exactly ``years`` (the fraction is exactly ``1.0``), keeping the
        degenerate case bit-identical to the single-stream accounting.
        """
        total = self.total_epochs
        return [self.years * (phase.duration / total) for phase in self.phases]

    def to_spec(self) -> str:
        """Canonical spec string (loses programmatic ``policy_options``)."""
        return ",".join(phase.to_token() for phase in self.phases)

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the whole timeline."""
        return {
            "name": self.name,
            "spec": self.to_spec(),
            "years": self.years,
            "reference_temperature_c": self.reference_temperature_c,
            "num_phases": len(self.phases),
            "total_epochs": self.total_epochs,
            "active_epochs": self.active_epochs,
            "phases": [phase.describe() for phase in self.phases],
        }
