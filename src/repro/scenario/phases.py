"""Lifetime phases, scenarios and the phase-spec mini-language.

A :class:`Phase` is one homogeneous stretch of a deployment: either an
*active* phase (a network inferred under one data format, mitigation policy
and thermal corner for a number of inference epochs) or an *idle* phase (the
accelerator powered but not inferring, weights retained).  A
:class:`LifetimeScenario` is an ordered, validated sequence of phases plus
the wall-clock span the whole timeline represents.

The CLI addresses scenarios through a compact spec string, one token per
phase::

    lenet5:int8:dnn_life:1000@85C@0.72V:0.5GHz,idle:500@45C@0.6V:0.1GHz

* active token — ``NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F]``
* idle token   — ``idle:DURATION[@TEMP][@V:F]``

``FORMAT`` accepts the registered format names plus the shorthands in
:data:`FORMAT_ALIASES`; ``TEMP`` is degrees Celsius with an optional ``C``
suffix and defaults to :data:`DEFAULT_PHASE_TEMPERATURE_C`; ``V:F`` is a
DVFS operating point (volts / GHz, see
:mod:`repro.scenario.operating_point`) and defaults to the reference corner.
The two ``@`` suffixes are recognised by shape (an operating point contains
a colon), so either order parses.  Parse errors are single-line
``ValueError`` messages naming the offending token, which the CLI surfaces
verbatim instead of a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    DEFAULT_REFERENCE_TEMPERATURE_C,
    DEFAULT_REFERENCE_VOLTAGE_V,
)
from repro.core.policies import POLICY_NAMES
from repro.nn.models import MODEL_ZOO
from repro.quantization.formats import available_formats, get_format
from repro.scenario.operating_point import (
    OperatingPoint,
    format_point_suffix,
    parse_point_suffix,
)
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_temperature_celsius,
)

__all__ = [
    "DEFAULT_PHASE_TEMPERATURE_C",
    "FORMAT_ALIASES",
    "Phase",
    "LifetimeScenario",
    "merge_adjacent_phases",
    "parse_scenario_spec",
]

#: Temperature assumed for phases that do not name one (the paper's nominal
#: worst-case operating corner).
DEFAULT_PHASE_TEMPERATURE_C = DEFAULT_REFERENCE_TEMPERATURE_C

#: Spec-token shorthands for registered data-format names.
FORMAT_ALIASES: Dict[str, str] = {
    "int8": "int8_symmetric",
    "fp32": "float32",
}

_ACTIVE_GRAMMAR = "NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F]"
_IDLE_GRAMMAR = "idle:DURATION[@TEMP][@V:F]"


@dataclass(frozen=True)
class Phase:
    """One homogeneous stretch of a lifetime timeline.

    ``network``/``data_format``/``policy`` are ``None`` exactly for idle
    phases.  ``duration`` counts inference epochs for active phases and
    epoch-equivalents of wall-clock time for idle ones (the scenario converts
    both to years through the same epoch→time mapping, scaled by the phase's
    clock frequency).  ``voltage_v``/``frequency_ghz`` pin the phase's DVFS
    operating point; ``None`` (the default) resolves to the reference corner,
    and naming either pins both (the omitted one at its reference value) so
    a phase's point is always a complete corner.
    ``policy_options`` are extra keyword arguments forwarded to
    :func:`repro.core.policies.make_policy` (not expressible in the spec
    mini-language; available to programmatic callers).
    """

    network: Optional[str]
    data_format: Optional[str]
    policy: Optional[str]
    duration: int
    temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C
    policy_options: Tuple[Tuple[str, object], ...] = ()
    voltage_v: Optional[float] = None
    frequency_ghz: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive_int(self.duration, "phase duration")
        check_temperature_celsius(self.temperature_c, "phase temperature")
        active_fields = (self.network, self.data_format, self.policy)
        if any(value is None for value in active_fields) and \
                any(value is not None for value in active_fields):
            raise ValueError("network, data_format and policy must either all "
                             "be set (active phase) or all be None (idle phase)")
        if self.is_idle and self.policy_options:
            raise ValueError("idle phases accept no policy options")
        object.__setattr__(self, "policy_options",
                           tuple((str(key), value)
                                 for key, value in tuple(self.policy_options)))
        if self.voltage_v is not None or self.frequency_ghz is not None:
            if self.voltage_v is None:
                object.__setattr__(self, "voltage_v", DEFAULT_REFERENCE_VOLTAGE_V)
            if self.frequency_ghz is None:
                object.__setattr__(self, "frequency_ghz",
                                   DEFAULT_REFERENCE_FREQUENCY_GHZ)
            # OperatingPoint validates voltage/frequency (positive, finite).
            self.operating_point

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def active(cls, network: str, data_format: str, policy: str, duration: int,
               temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C,
               policy_options: Optional[Mapping[str, object]] = None,
               voltage_v: Optional[float] = None,
               frequency_ghz: Optional[float] = None) -> "Phase":
        """An inference phase; names are validated against the registries."""
        if network not in MODEL_ZOO:
            raise ValueError(f"unknown network '{network}' "
                             f"(known: {', '.join(sorted(MODEL_ZOO))})")
        data_format = FORMAT_ALIASES.get(data_format, data_format)
        if data_format not in available_formats():
            raise ValueError(f"unknown data format '{data_format}' "
                             f"(known: {', '.join(available_formats())}"
                             f"; aliases: {', '.join(sorted(FORMAT_ALIASES))})")
        if policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy '{policy}' "
                             f"(known: {', '.join(POLICY_NAMES)})")
        return cls(network=network, data_format=data_format, policy=policy,
                   duration=duration, temperature_c=float(temperature_c),
                   policy_options=tuple((policy_options or {}).items()),
                   voltage_v=voltage_v, frequency_ghz=frequency_ghz)

    @classmethod
    def idle(cls, duration: int,
             temperature_c: float = DEFAULT_PHASE_TEMPERATURE_C,
             voltage_v: Optional[float] = None,
             frequency_ghz: Optional[float] = None) -> "Phase":
        """A retention phase: powered, weights held, no writes."""
        return cls(network=None, data_format=None, policy=None,
                   duration=duration, temperature_c=float(temperature_c),
                   voltage_v=voltage_v, frequency_ghz=frequency_ghz)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def is_idle(self) -> bool:
        """Whether this is a retention (no-write) phase."""
        return self.network is None

    @property
    def has_explicit_point(self) -> bool:
        """Whether the phase names its own DVFS point (vs. the reference)."""
        return self.voltage_v is not None

    @property
    def operating_point(self) -> OperatingPoint:
        """The phase's resolved DVFS corner (reference values where omitted)."""
        return OperatingPoint(
            voltage_v=(DEFAULT_REFERENCE_VOLTAGE_V if self.voltage_v is None
                       else self.voltage_v),
            frequency_ghz=(DEFAULT_REFERENCE_FREQUENCY_GHZ
                           if self.frequency_ghz is None else self.frequency_ghz),
            temperature_c=self.temperature_c)

    @property
    def word_bits(self) -> Optional[int]:
        """Word width of the phase's data format (``None`` for idle phases)."""
        return None if self.is_idle else get_format(self.data_format).word_bits

    def _point_suffix(self) -> str:
        """The ``@V:F`` token suffix (empty at the implicit reference point)."""
        if not self.has_explicit_point:
            return ""
        return format_point_suffix(self.voltage_v, self.frequency_ghz)

    def label(self, index: int) -> str:
        """Human-readable phase label used in reports and error messages."""
        suffix = self._point_suffix()
        if self.is_idle:
            return (f"phase {index}: idle x{self.duration} "
                    f"@{self.temperature_c:g}C{suffix}")
        return (f"phase {index}: {self.network}/{self.data_format}/"
                f"{self.policy} x{self.duration} @{self.temperature_c:g}C{suffix}")

    def to_token(self) -> str:
        """The spec mini-language token describing this phase."""
        if self.is_idle:
            head = f"idle:{self.duration}"
        else:
            head = (f"{self.network}:{self.data_format}:{self.policy}:"
                    f"{self.duration}")
        return f"{head}@{self.temperature_c:g}C{self._point_suffix()}"

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the phase.

        The operating-point keys appear only when the phase pins an explicit
        ``@V:F`` point: omitted points resolve to the reference corner, and
        omitting the keys keeps reference-corner descriptions — and hence the
        ``AgingResult`` payloads embedding them — byte-identical to their
        pre-DVFS form.
        """
        description: Dict[str, object] = {
            "kind": "idle" if self.is_idle else "active",
            "network": self.network,
            "data_format": self.data_format,
            "policy": self.policy,
            "policy_options": dict(self.policy_options),
            "duration": self.duration,
            "temperature_c": self.temperature_c,
        }
        if self.has_explicit_point:
            description["voltage_v"] = self.voltage_v
            description["frequency_ghz"] = self.frequency_ghz
        return description


def _parse_temperature(text: str, token: str) -> float:
    """Parse the ``@TEMP`` suffix (``85``, ``85C``, ``85.5c``)."""
    stripped = text.strip()
    if stripped.lower().endswith("c"):
        stripped = stripped[:-1]
    try:
        return float(stripped)
    except ValueError:
        raise ValueError(f"phase '{token}': invalid temperature '{text}' "
                         "(expected degrees Celsius, e.g. '85C')") from None


def _parse_duration(text: str, token: str) -> int:
    try:
        duration = int(text)
    except ValueError:
        raise ValueError(f"phase '{token}': invalid duration '{text}' "
                         "(expected a positive integer of inference epochs)") from None
    if duration <= 0:
        raise ValueError(f"phase '{token}': phase duration must be > 0, got {duration}")
    return duration


def _parse_phase_suffixes(
        token: str) -> Tuple[str, float, Optional[float], Optional[float]]:
    """Split a token into its head and the ``@TEMP`` / ``@V:F`` suffixes.

    Suffixes are classified by shape — an operating point contains a colon —
    so either order is accepted; duplicates of a kind are rejected.
    """
    head, *suffixes = token.split("@")
    temperature: Optional[float] = None
    point: Optional[Tuple[float, float]] = None
    for suffix in suffixes:
        if not suffix.strip():
            raise ValueError(f"phase '{token}': '@' must be followed by a "
                             "temperature (e.g. '@85C') or an operating "
                             "point (e.g. '@0.72V:0.5GHz')")
        if ":" in suffix:
            if point is not None:
                raise ValueError(f"phase '{token}': multiple operating-point "
                                 "suffixes (at most one '@V:F' is allowed)")
            point = parse_point_suffix(suffix, token)
        else:
            if temperature is not None:
                raise ValueError(f"phase '{token}': multiple temperature "
                                 "suffixes (at most one '@TEMP' is allowed)")
            temperature = _parse_temperature(suffix, token)
    if temperature is None:
        temperature = DEFAULT_PHASE_TEMPERATURE_C
    voltage, frequency = point if point is not None else (None, None)
    return head, temperature, voltage, frequency


def _parse_phase_token(token: str) -> Phase:
    """Parse one phase token of the spec mini-language."""
    head, temperature, voltage, frequency = _parse_phase_suffixes(token)
    fields = [part.strip() for part in head.split(":")]
    try:
        if fields and fields[0].lower() == "idle":
            if len(fields) != 2:
                raise ValueError(f"expected '{_IDLE_GRAMMAR}'")
            return Phase.idle(_parse_duration(fields[1], token), temperature,
                              voltage_v=voltage, frequency_ghz=frequency)
        if len(fields) != 4:
            raise ValueError(f"expected '{_ACTIVE_GRAMMAR}' or '{_IDLE_GRAMMAR}'")
        network, data_format, policy, duration_text = fields
        duration = _parse_duration(duration_text, token)
        return Phase.active(network, data_format, policy, duration, temperature,
                            voltage_v=voltage, frequency_ghz=frequency)
    except ValueError as error:
        message = str(error)
        prefix = f"phase '{token}': "
        if message.startswith(prefix):  # _parse_duration already names the token
            raise
        raise ValueError(prefix + message) from None


def merge_adjacent_phases(phases: Tuple[Phase, ...]) -> Tuple[Phase, ...]:
    """Coalesce runs of configuration-identical phases by summing durations.

    Two phases merge when every field but ``duration`` agrees — kind,
    network/format/policy (and options), temperature and pinned operating
    point.  Timeline compilers (e.g. the stochastic workload generator,
    which emits one slot per day/night half) use this to keep phase counts
    proportional to the number of *configuration changes* rather than the
    sampling resolution; the merged timeline is semantically identical
    because every scenario quantity is linear in a phase's duration.
    """
    from dataclasses import replace as _replace

    merged: List[Phase] = []
    for phase in phases:
        if merged:
            last = merged[-1]
            if (_replace(last, duration=phase.duration) == phase):
                merged[-1] = _replace(last,
                                      duration=last.duration + phase.duration)
                continue
        merged.append(phase)
    return tuple(merged)


def parse_scenario_spec(spec: str) -> Tuple[Phase, ...]:
    """Parse a comma-separated phase-spec string into validated phases."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("scenario spec is empty; expected comma-separated "
                         f"'{_ACTIVE_GRAMMAR}' / '{_IDLE_GRAMMAR}' tokens")
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ValueError("scenario spec contains no phases")
    return tuple(_parse_phase_token(token) for token in tokens)


@dataclass
class LifetimeScenario:
    """An ordered, validated sequence of lifetime phases.

    ``years`` is the wall-clock span of the whole timeline; each phase's
    share is proportional to its duration in epochs *divided by its relative
    clock frequency* — epochs/year is a per-phase quantity, so a phase
    throttled to half the reference clock spans twice the wall-clock time
    per epoch (inferring or idle).  With every phase at the reference
    frequency this degenerates to plain duration-proportional shares,
    bit-for-bit.  ``reference_temperature_c`` anchors the Arrhenius
    equivalent-time composition — at the reference corner one phase-year
    counts as exactly one effective year.
    """

    phases: Tuple[Phase, ...]
    years: float = 7.0
    reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C
    name: str = ""

    def __post_init__(self) -> None:
        self.phases = tuple(self.phases)
        if not self.phases:
            raise ValueError("a scenario requires at least one phase")
        if self.phases[0].is_idle:
            raise ValueError("a scenario cannot start with an idle phase: the "
                             "retained-weight content is undefined before the "
                             "first active phase")
        check_positive(self.years, "years")
        check_temperature_celsius(self.reference_temperature_c,
                                  "reference_temperature_c")
        # The word width of each phase is static in its data format, and the
        # memory geometry (rows = capacity / word width) is scenario-wide —
        # mixed widths are caught here as a one-line schema error instead of
        # a stream-build failure deep inside the engines.
        widths = {}
        for index, phase in enumerate(self.phases):
            if not phase.is_idle:
                widths.setdefault(phase.word_bits, phase.label(index))
        if len(widths) > 1:
            described = "; ".join(f"{bits}-bit words from {label}"
                                  for bits, label in sorted(widths.items()))
            raise ValueError(
                f"all phases of a scenario must share one word width "
                f"(the weight-memory geometry is scenario-wide), got {described}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str, years: float = 7.0,
                  reference_temperature_c: float = DEFAULT_REFERENCE_TEMPERATURE_C,
                  name: str = "") -> "LifetimeScenario":
        """Build a scenario from a phase-spec mini-language string."""
        return cls(phases=parse_scenario_spec(spec), years=years,
                   reference_temperature_c=reference_temperature_c, name=name)

    @classmethod
    def from_description(cls, payload: Mapping[str, object]) -> "LifetimeScenario":
        """Rebuild a scenario from :meth:`describe` output (payload transport)."""
        phases = []
        for entry in payload["phases"]:  # type: ignore[index]
            voltage = entry.get("voltage_v")
            frequency = entry.get("frequency_ghz")
            point = {"voltage_v": None if voltage is None else float(voltage),
                     "frequency_ghz": (None if frequency is None
                                       else float(frequency))}
            if entry["kind"] == "idle":
                phases.append(Phase.idle(int(entry["duration"]),
                                         float(entry["temperature_c"]), **point))
            else:
                phases.append(Phase.active(
                    str(entry["network"]), str(entry["data_format"]),
                    str(entry["policy"]), int(entry["duration"]),
                    float(entry["temperature_c"]),
                    policy_options=dict(entry.get("policy_options") or {}),
                    **point))
        return cls(phases=tuple(phases), years=float(payload["years"]),
                   reference_temperature_c=float(payload["reference_temperature_c"]),
                   name=str(payload.get("name", "")))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def total_epochs(self) -> int:
        """Epochs across all phases (active and idle)."""
        return sum(phase.duration for phase in self.phases)

    @property
    def active_epochs(self) -> int:
        """Inference epochs across the active phases."""
        return sum(phase.duration for phase in self.phases if not phase.is_idle)

    @property
    def active_phases(self) -> List[Phase]:
        """The active (inference) phases, in order."""
        return [phase for phase in self.phases if not phase.is_idle]

    @property
    def has_dvfs(self) -> bool:
        """Whether any phase pins an explicit (non-reference) operating point."""
        return any(phase.has_explicit_point for phase in self.phases)

    def phase_years(self) -> List[float]:
        """Wall-clock years of each phase.

        Each phase's share is ``duration / relative_frequency`` (its
        wall-clock extent in reference epoch-times), normalised over the
        timeline.  With every phase at the reference frequency the weights
        are the plain durations — ``duration / 1.0`` is exact — and a
        single-phase scenario gets exactly ``years`` (the fraction is
        exactly ``1.0``), keeping the degenerate cases bit-identical to the
        pre-DVFS accounting.
        """
        weights = [phase.duration / phase.operating_point.relative_frequency
                   for phase in self.phases]
        total = sum(weights)
        return [self.years * (weight / total) for weight in weights]

    def with_default_operating_point(
            self, voltage_v: float = DEFAULT_REFERENCE_VOLTAGE_V,
            frequency_ghz: float = DEFAULT_REFERENCE_FREQUENCY_GHZ
    ) -> "LifetimeScenario":
        """Re-pin phases that omit ``@V:F`` to the given default corner.

        Phases carrying an explicit operating point keep it; a default equal
        to the reference corner returns ``self`` unchanged (preserving the
        omitted-point representation and spec round-trips exactly).  This is
        what makes voltage/frequency sweepable axes of the ``scenario``
        experiment: the grid varies the default corner while the spec stays
        one cacheable string.
        """
        voltage_v, frequency_ghz = float(voltage_v), float(frequency_ghz)
        if (voltage_v == DEFAULT_REFERENCE_VOLTAGE_V
                and frequency_ghz == DEFAULT_REFERENCE_FREQUENCY_GHZ):
            return self
        from dataclasses import replace as _replace

        phases = tuple(phase if phase.has_explicit_point
                       else _replace(phase, voltage_v=voltage_v,
                                     frequency_ghz=frequency_ghz)
                       for phase in self.phases)
        return LifetimeScenario(phases=phases, years=self.years,
                                reference_temperature_c=self.reference_temperature_c,
                                name=self.name)

    def to_spec(self) -> str:
        """Canonical spec string (loses programmatic ``policy_options``)."""
        return ",".join(phase.to_token() for phase in self.phases)

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the whole timeline.

        As with :meth:`Phase.describe`, the ``has_dvfs`` marker appears only
        on timelines that actually pin operating points, so reference-corner
        descriptions stay byte-identical to their pre-DVFS form.
        """
        description: Dict[str, object] = {
            "name": self.name,
            "spec": self.to_spec(),
            "years": self.years,
            "reference_temperature_c": self.reference_temperature_c,
            "num_phases": len(self.phases),
            "total_epochs": self.total_epochs,
            "active_epochs": self.active_epochs,
            "phases": [phase.describe() for phase in self.phases],
        }
        if self.has_dvfs:
            description["has_dvfs"] = True
        return description
