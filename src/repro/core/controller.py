"""The Aging Mitigation Controller (paper Fig. 8, right).

The controller produces the enable signal ``E`` that drives the inversion
logic of the Write Data Encoder.  For every write it samples the TRBG and
XORs the sample with the bias-balancing phase; the phase register is advanced
by the *new data block* signal, i.e. once per weight block brought into the
on-chip memory.  The same ``E`` value is stored as metadata so the Read Data
Decoder can undo the inversion when the weights are read back.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bias_balancer import BiasBalancingRegister
from repro.core.trbg import IdealTrbg, TrueRandomBitGenerator
from repro.utils.rng import SeedLike


class AgingMitigationController:
    """Generates per-write enable bits from a TRBG and a bias balancer."""

    def __init__(self, trbg: Optional[TrueRandomBitGenerator] = None,
                 bias_balancer: Optional[BiasBalancingRegister] = None,
                 seed: SeedLike = None):
        self.trbg = trbg if trbg is not None else IdealTrbg(bias=0.5, seed=seed)
        #: ``None`` disables bias balancing (the "without bias balancing"
        #: configuration of the Fig. 9 experiments).
        self.bias_balancer = bias_balancer
        self._blocks_seen = 0
        self._enables_generated = 0

    # ------------------------------------------------------------------ #
    # Hardware-facing interface
    # ------------------------------------------------------------------ #
    def new_data_block(self) -> None:
        """Signal that a new weight block is about to be written.

        Advances the bias-balancing register (its clock input in Fig. 8).
        """
        self._blocks_seen += 1
        if self.bias_balancer is not None:
            self.bias_balancer.tick()

    def enable_bits(self, count: int) -> np.ndarray:
        """Generate ``count`` enable bits for the next ``count`` write words."""
        if count < 0:
            raise ValueError("count must be non-negative")
        bits = self.trbg.bits(count)
        if self.bias_balancer is not None:
            bits = self.bias_balancer.apply_bits(bits)
        self._enables_generated += count
        return bits

    def next_enable(self) -> int:
        """Generate a single enable bit."""
        return int(self.enable_bits(1)[0])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def effective_bias(self) -> float:
        """Long-run probability of the enable signal being '1'.

        With bias balancing enabled this is 0.5 regardless of the TRBG bias;
        without it, it equals the TRBG bias.
        """
        if self.bias_balancer is not None:
            return 0.5
        return self.trbg.nominal_bias

    @property
    def blocks_seen(self) -> int:
        """Number of new-data-block signals received."""
        return self._blocks_seen

    @property
    def enables_generated(self) -> int:
        """Total number of enable bits produced (energy accounting)."""
        return self._enables_generated

    @property
    def has_bias_balancing(self) -> bool:
        """Whether the M-bit bias-balancing register is present."""
        return self.bias_balancer is not None

    def reset(self) -> None:
        """Reset controller state (counters and balancing register)."""
        self._blocks_seen = 0
        self._enables_generated = 0
        if self.bias_balancer is not None:
            self.bias_balancer.reset()

    def describe(self) -> dict:
        """Machine-readable configuration summary."""
        return {
            "trbg_model": type(self.trbg).__name__,
            "trbg_bias": self.trbg.nominal_bias,
            "bias_balancing": self.has_bias_balancing,
            "bias_balancer_bits": (self.bias_balancer.num_bits
                                   if self.bias_balancer is not None else None),
            "effective_bias": self.effective_bias,
        }
