"""Duty-cycle / aging simulation engines.

Two engines evaluate a mitigation policy against the weight write stream of an
accelerator:

* :class:`ExplicitAgingSimulator` — replays every block write of every
  inference through the policy's ``encode_block``; exact but only practical
  for small networks/memories.  Used by tests to validate the fast engine and
  by the functional accelerator path.
* :class:`AgingSimulator` — the fast engine.  It exploits the periodic
  structure of the workload (the same stream repeats every inference) to
  account an arbitrary number of inferences in closed form per policy.  Its
  default ``packed`` engine operates on the
  :class:`~repro.accelerator.scheduler.PackedBitTensor` of the stream — the
  whole inference quantized and bit-unpacked once — so every kernel is a few
  whole-tensor NumPy reductions; the legacy ``blockwise`` engine walks the
  blocks in Python and is kept as the ``dnn-life bench`` reference.  This is
  what makes simulating a 512 KB weight memory under a 61M-parameter DNN for
  100 inferences tractable on a laptop, and it matches the explicit engine
  exactly for deterministic policies (and in distribution for the stochastic
  DNN-Life policy).

Both produce an :class:`AgingResult` holding per-cell duty-cycles and the
SNM-degradation statistics derived from them.

Both engines also power the multi-phase scenario layer
(:mod:`repro.scenario`): the fast engine exposes its closed-form
``counts(start, n)`` factory through :meth:`AgingSimulator.counts_kernel`,
and the explicit per-epoch replay is factored into :func:`replay_inference`
so the scenario cross-check engine shares the exact same write accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.accelerator.scheduler import (
    PackedBitTensor,
    WeightBlock,
    WeightStreamScheduler,
    as_stride_indexer,
    block_axis_sum,
)
from repro.aging.snm import (
    SnmDegradationModel,
    bin_labels,
    default_degradation_bins,
    default_snm_model,
    degradation_histogram,
)
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    MitigationPolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
)
from repro.core.span_compose import BatchedCounts, SpanComposer
from repro.quantization.bitops import unpack_bits
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.leveling.remap import WearLeveler

#: Closed-form counts factory: ``counts(start_inference, n)`` returns the
#: per-logical-cell ones numerator and the per-row write denominator
#: accumulated over inferences ``[start, start + n)``.
CountsKernel = Callable[[int, int], Tuple[np.ndarray, np.ndarray]]

#: ``last_bits(t)`` — the ``(rows, word_bits)`` matrix of bits the final
#: write of inference ``t`` leaves behind (NaN on unwritten rows).
LastBitsKernel = Callable[[int], np.ndarray]

#: Batched counts factory: ``batch(starts, lengths)`` returns the
#: :class:`~repro.core.span_compose.BatchedCounts` decomposition of the
#: per-span counts over a whole span table at once.
BatchedCountsBuilder = Callable[[np.ndarray, np.ndarray], BatchedCounts]


class PackedSpanKernel:
    """A policy's closed-form counts kernel, with an optional batched form.

    Instances are callable exactly like the legacy ``counts(start, n)``
    closures (:data:`CountsKernel`), which is how the scenario driver and the
    cross-check tests keep consuming them.  Kernels whose span counts
    decompose into fixed basis matrices with per-span scalar coefficients
    additionally expose :meth:`counts_batch`, the entry point of the fused
    leveling composition (:class:`~repro.core.span_compose.SpanComposer`);
    stochastic kernels (DNN-Life's TRBG draws fresh randomness per span, in
    call order) have no batched form and keep the per-span loop.
    """

    def __init__(self, counts: CountsKernel,
                 batch: Optional[BatchedCountsBuilder] = None):
        self._counts = counts
        self._batch = batch

    def __call__(self, start: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._counts(start, n)

    @property
    def supports_batch(self) -> bool:
        """Whether :meth:`counts_batch` is available for this kernel."""
        return self._batch is not None

    def counts_batch(self, starts: np.ndarray,
                     lengths: np.ndarray) -> BatchedCounts:
        """Per-span counts decomposition over a whole span table."""
        if self._batch is None:
            raise NotImplementedError(
                "this kernel has no batched form (stochastic per-span "
                "draws); evaluate counts(start, n) per span instead")
        starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
        return self._batch(starts, lengths)


# --------------------------------------------------------------------------- #
# Result container
# --------------------------------------------------------------------------- #
@dataclass
class AgingResult:
    """Outcome of an aging simulation for one (workload, policy) pair."""

    policy_name: str
    policy_description: Dict[str, object]
    duty_cycles: np.ndarray
    num_inferences: int
    num_blocks: int
    snm_model: SnmDegradationModel = field(default_factory=default_snm_model)
    years: float = 7.0

    def __post_init__(self) -> None:
        self.duty_cycles = np.asarray(self.duty_cycles, dtype=np.float64)

    @property
    def num_cells(self) -> int:
        """Number of 6T-SRAM cells covered by the result."""
        return int(self.duty_cycles.size)

    def snm_degradation(self) -> np.ndarray:
        """Per-cell SNM degradation (percent) after ``years`` years."""
        return self.snm_model.degradation_percent(self.duty_cycles.reshape(-1), self.years)

    def histogram(self, bin_edges: Optional[np.ndarray] = None
                  ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        """Fig. 9 / Fig. 11 style histogram: % of cells per degradation bin."""
        edges = (np.asarray(bin_edges, dtype=np.float64) if bin_edges is not None
                 else default_degradation_bins(self.snm_model))
        percentages, edges = degradation_histogram(self.snm_degradation(), edges)
        return percentages, edges, bin_labels(edges)

    def duty_cycle_statistics(self) -> Dict[str, float]:
        """Summary statistics of the per-cell duty-cycles."""
        duty = self.duty_cycles.reshape(-1)
        deviation = np.abs(duty - 0.5)
        return {
            "mean": float(duty.mean()),
            "std": float(duty.std()),
            "min": float(duty.min()),
            "max": float(duty.max()),
            "mean_abs_deviation_from_half": float(deviation.mean()),
            "max_abs_deviation_from_half": float(deviation.max()),
        }

    def summary(self) -> Dict[str, object]:
        """Headline metrics used by the experiment reports."""
        degradation = self.snm_degradation()
        best = self.snm_model.best_case_percent(self.years)
        worst = self.snm_model.worst_case_percent(self.years)
        near_best = float((degradation <= best + 0.5).mean() * 100.0)
        near_worst = float((degradation >= worst - 0.5).mean() * 100.0)
        return {
            "policy": self.policy_name,
            "num_cells": self.num_cells,
            "num_blocks": self.num_blocks,
            "num_inferences": self.num_inferences,
            "mean_snm_degradation_percent": float(degradation.mean()),
            "max_snm_degradation_percent": float(degradation.max()),
            "percent_cells_near_best": near_best,
            "percent_cells_near_worst": near_worst,
            "duty_cycle": self.duty_cycle_statistics(),
        }

    # ------------------------------------------------------------------ #
    # Serialization (orchestration cache / sweep-worker transport)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe representation of the full result.

        The payload round-trips through :meth:`from_payload` without loss:
        it carries the raw duty-cycle matrix (shape preserved) and the SNM
        model's class/parameters, so a cached or worker-transported result
        supports the same derived queries (histograms, summaries) as a
        freshly computed one.
        """
        return {
            "policy_name": self.policy_name,
            "policy_description": dict(self.policy_description),
            "duty_cycles_shape": list(self.duty_cycles.shape),
            "duty_cycles": self.duty_cycles.reshape(-1).tolist(),
            "num_inferences": self.num_inferences,
            "num_blocks": self.num_blocks,
            "years": self.years,
            "snm_model": _snm_model_to_payload(self.snm_model),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AgingResult":
        """Rebuild an :class:`AgingResult` from :meth:`to_payload` output."""
        duty = np.asarray(payload["duty_cycles"], dtype=np.float64)
        duty = duty.reshape([int(dim) for dim in payload["duty_cycles_shape"]])
        return cls(
            policy_name=str(payload["policy_name"]),
            policy_description=dict(payload["policy_description"]),
            duty_cycles=duty,
            num_inferences=int(payload["num_inferences"]),
            num_blocks=int(payload["num_blocks"]),
            snm_model=_snm_model_from_payload(payload["snm_model"]),
            years=float(payload["years"]),
        )


def _snm_model_to_payload(model: SnmDegradationModel) -> Dict[str, object]:
    """Serialize an SNM model (a frozen dataclass) to class name + fields."""
    import dataclasses

    if not dataclasses.is_dataclass(model):
        raise TypeError(f"cannot serialize SNM model of type {type(model).__name__}; "
                        "expected a dataclass-based model")
    fields = {}
    for spec in dataclasses.fields(model):
        value = getattr(model, spec.name)
        fields[spec.name] = (_dataclass_fields_payload(value)
                             if dataclasses.is_dataclass(value) else value)
    return {"class": type(model).__name__, "fields": fields}


def _dataclass_fields_payload(obj: object) -> Dict[str, object]:
    import dataclasses

    return {"class": type(obj).__name__,
            "fields": {spec.name: getattr(obj, spec.name)
                       for spec in dataclasses.fields(obj)}}


def _known_snm_payload_classes() -> Dict[str, type]:
    """Every class an SNM payload may name: all shipped degradation models.

    Discovered by walking ``SnmDegradationModel``'s subclass tree (after
    importing the shipped model modules) plus the nested device dataclass, so
    a newly shipped model round-trips without touching this registry.
    """
    from repro.aging.nbti import NbtiDeviceModel
    from repro.aging.snm import SnmDegradationModel

    known: Dict[str, type] = {NbtiDeviceModel.__name__: NbtiDeviceModel}
    stack = list(SnmDegradationModel.__subclasses__())
    while stack:
        cls = stack.pop()
        known[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return known


def _snm_model_from_payload(payload: Dict[str, object]) -> SnmDegradationModel:
    """Rebuild an SNM model from its class name and field values."""
    known = _known_snm_payload_classes()
    name = payload["class"]
    if name not in known:
        raise ValueError(f"unknown SNM model class '{name}' in payload "
                         f"(known: {', '.join(sorted(known))})")
    kwargs = {}
    for key, value in dict(payload["fields"]).items():
        if isinstance(value, dict) and "class" in value and "fields" in value:
            kwargs[key] = _snm_model_from_payload(value)
        else:
            kwargs[key] = value
    return known[name](**kwargs)


# --------------------------------------------------------------------------- #
# Explicit (exact, slow) engine
# --------------------------------------------------------------------------- #
def replay_inference(stream: WeightStreamScheduler, policy: MitigationPolicy,
                     ones: np.ndarray,
                     writes: np.ndarray, remap: Optional[np.ndarray] = None,
                     stored: Optional[np.ndarray] = None) -> None:
    """Replay one inference epoch's block writes through ``policy``.

    The shared explicit-path primitive: encodes every block of ``stream``,
    verifies the decode round-trip (the mitigation hardware must be
    transparent to the computation), and accumulates the stored bits and
    write counts into ``ones``/``writes`` — through the optional
    logical→physical row ``remap`` of a wear leveler.  When ``stored`` is
    given (a ``(rows, word_bits)`` float array), every write additionally
    overwrites the target rows with the bits it leaves behind, so after the
    final epoch ``stored`` holds the exact last-written value of every
    physical cell (the retention-phase input).  Both
    :class:`ExplicitAgingSimulator` and the scenario phase-replay engine
    (:class:`repro.scenario.driver.ExplicitScenarioSimulator`) are built on
    this function, so their per-epoch accounting cannot diverge.
    """
    word_bits = stream.geometry.word_bits
    words_per_block = stream.words_per_block
    for block in stream.iter_blocks():
        start_row = block.region * words_per_block
        encoded, metadata = policy.encode_block(
            block.words, block.index, start_row=start_row)
        decoded = policy.decode_block(encoded, metadata)
        if not np.array_equal(decoded, np.asarray(block.words,
                                                  dtype=np.uint64).reshape(-1)):
            raise AssertionError(
                f"policy '{policy.name}' failed to decode block {block.index}")
        bits = unpack_bits(encoded, word_bits)
        if remap is None:
            target = slice(start_row, start_row + bits.shape[0])
        else:
            target = remap[start_row:start_row + bits.shape[0]]
        ones[target] += bits
        writes[target] += 1
        if stored is not None:
            stored[target] = bits


class ExplicitAgingSimulator:
    """Replays every write of every inference through the policy.

    An optional :class:`~repro.leveling.remap.WearLeveler` remaps each
    block's rows from logical to physical before the write lands; the policy
    keeps encoding the *logical* stream (the remap table sits between the
    encoder and the array, exactly as the hardware would place it).
    """

    def __init__(self, scheduler: WeightStreamScheduler, policy: MitigationPolicy,
                 num_inferences: int = 100,
                 snm_model: Optional[SnmDegradationModel] = None,
                 leveler: Optional["WearLeveler"] = None):
        self.scheduler = scheduler
        self.policy = policy
        self.num_inferences = check_positive_int(num_inferences, "num_inferences")
        self.snm_model = snm_model or default_snm_model()
        self.leveler = leveler
        if leveler is not None and leveler.rows != scheduler.geometry.rows:
            raise ValueError(f"leveler covers {leveler.rows} rows but the memory "
                             f"has {scheduler.geometry.rows}")

    def run(self) -> AgingResult:
        """Simulate ``num_inferences`` inferences write-by-write."""
        geometry = self.scheduler.geometry
        rows, word_bits = geometry.rows, geometry.word_bits
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.int64)
        self.policy.reset()
        leveler = self.leveler
        if leveler is not None:
            leveler.reset()
            from repro.leveling.remap import mean_duty_per_row
        for epoch in range(self.num_inferences):
            remap = None if leveler is None else leveler.permutation(epoch)
            replay_inference(self.scheduler, self.policy, ones, writes, remap)
            if leveler is not None and leveler.uses_feedback:
                leveler.observe(epoch + 1,
                                mean_duty_per_row(ones, writes * float(word_bits)))
        duty = _duty_from_counts(ones, writes)
        return AgingResult(
            policy_name=self.policy.name,
            policy_description=_describe_with_leveling(self.policy, leveler),
            duty_cycles=duty,
            num_inferences=self.num_inferences,
            num_blocks=self.scheduler.num_blocks,
            snm_model=self.snm_model,
        )


# --------------------------------------------------------------------------- #
# Fast engine
# --------------------------------------------------------------------------- #
class AgingSimulator:
    """Vectorized aging simulator exploiting the periodic weight stream.

    Two fast engines share the closed-form-over-inferences math:

    * ``engine="packed"`` (default) — the whole block stream is quantized and
      bit-unpacked *once* into a :class:`~repro.accelerator.scheduler.PackedBitTensor`
      (reused across policies when the stream is a
      :class:`~repro.accelerator.scheduler.CachedWeightStream`), and every
      kernel is a handful of whole-tensor NumPy reductions with no per-block
      Python loop.  This engine also supports schedules with an unpadded
      final block.
    * ``engine="blockwise"`` — the legacy streaming kernels that walk the
      blocks of one inference in Python and unpack bits per block.  Kept as
      the reference point for the ``dnn-life bench`` perf-regression harness.

    For the deterministic policies the two engines produce byte-identical
    duty-cycles; for the stochastic DNN-Life policy they agree in
    distribution (the vectorized engine draws the same binomial law in a
    different RNG order).
    """

    ENGINES = ("packed", "blockwise")

    def __init__(self, scheduler: WeightStreamScheduler, policy: MitigationPolicy,
                 num_inferences: int = 100, seed: SeedLike = None,
                 snm_model: Optional[SnmDegradationModel] = None,
                 engine: str = "packed", leveler: Optional["WearLeveler"] = None):
        self.scheduler = scheduler
        self.policy = policy
        self.num_inferences = check_positive_int(num_inferences, "num_inferences")
        self.rng = as_rng(seed)
        self.snm_model = snm_model or default_snm_model()
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine '{engine}' "
                             f"(expected one of: {', '.join(self.ENGINES)})")
        if leveler is not None and engine != "packed":
            raise NotImplementedError(
                "wear leveling is only composed with the packed engine; the "
                "legacy blockwise kernels have no remap support")
        if leveler is not None and leveler.rows != scheduler.geometry.rows:
            raise ValueError(f"leveler covers {leveler.rows} rows but the memory "
                             f"has {scheduler.geometry.rows}")
        self.engine = engine
        self.leveler = leveler
        self._packed_tensor: Optional[PackedBitTensor] = None

    # -- public API ------------------------------------------------------- #
    def run(self) -> AgingResult:
        """Compute per-cell duty-cycles for the configured policy."""
        duty = self._simulate_duty()
        return AgingResult(
            policy_name=self.policy.name,
            policy_description=_describe_with_leveling(self.policy, self.leveler),
            duty_cycles=duty,
            num_inferences=self.num_inferences,
            num_blocks=self.scheduler.num_blocks,
            snm_model=self.snm_model,
        )

    def counts_kernel(self) -> PackedSpanKernel:
        """The policy's closed-form counts factory (public driver entry point).

        Returns the :class:`PackedSpanKernel` described in
        :meth:`_packed_kernel` — callable as ``counts(start_inference, n) ->
        (numerator, writes)``, with :meth:`PackedSpanKernel.counts_batch` on
        top for span-table batches.  This is what the scenario driver
        (:class:`repro.scenario.driver.ScenarioAgingSimulator`) evaluates per
        phase: the heavy tensor reductions run once here, and every
        phase/leveling span afterwards is a cheap combination.
        Packed engine only — the blockwise kernels have no span form.
        """
        if self.engine != "packed":
            raise NotImplementedError(
                "counts_kernel is only available on the packed engine")
        return self._packed_kernel(self.policy)

    def last_bits_kernel(self) -> Tuple[LastBitsKernel, np.ndarray]:
        """Closed-form "value left behind" factory (packed engine only).

        Returns ``(last_bits, written_rows)``.  ``written_rows`` is the
        boolean per-row mask of rows the stream writes at all, and
        ``last_bits(t)`` yields the ``(rows, word_bits)`` float64 matrix of
        the bits the *final* write of inference ``t`` (0-based since policy
        reset) leaves in each written logical row; unwritten rows hold NaN.
        For the deterministic policies the values are exact 0.0/1.0 and
        match the explicit write-by-write replay bit for bit; for the
        stochastic DNN-Life policy the matrix holds the per-cell
        *expectation* of the stored bit (the TRBG enable is marginalised),
        so the engines agree in distribution only.  This is the retention
        input of the scenario layer: idle phases hold exactly what the
        preceding phase's last epoch wrote.
        """
        if self.engine != "packed":
            raise NotImplementedError(
                "last_bits_kernel is only available on the packed engine")
        packed = self._packed()
        rows, word_bits = packed.geometry.rows, packed.word_bits
        words_per_block = packed.words_per_block
        word_in_block = np.arange(rows, dtype=np.int64) % words_per_block
        # Per row: the last block (in stream order) covering it, i.e. the
        # write whose stored value the row still holds at the epoch's end.
        last_block = np.full(rows, -1, dtype=np.int64)
        for region in range(packed.fifo_depth_tiles):
            blocks = packed.region_blocks(region)
            if not blocks.size:
                continue
            row_slice = slice(region * words_per_block,
                              (region + 1) * words_per_block)
            coverage = (packed.valid_words[blocks][:, None]
                        > np.arange(words_per_block)[None, :])
            position = np.where(coverage,
                                np.arange(blocks.size)[:, None], -1).max(axis=0)
            covered = position >= 0
            last_block[row_slice][covered] = blocks[position[covered]]
        written = last_block >= 0
        last_raw = np.full((rows, word_bits), np.nan, dtype=np.float64)
        last_raw[written] = packed.bits[last_block[written],
                                        word_in_block[written], :]
        # Write-counter index of the row's final write within one inference.
        last_offset = np.zeros(rows, dtype=np.int64)
        last_offset[written] = (packed.word_offsets[last_block[written]]
                                + word_in_block[written])
        policy = self.policy
        total_words = packed.total_words

        if isinstance(policy, NoMitigationPolicy):
            def last_bits(t: int) -> np.ndarray:
                return last_raw.copy()
        elif isinstance(policy, PeriodicInversionPolicy):
            if policy.granularity == "write":
                # Words written before the final write since policy reset:
                # t whole inferences plus the in-inference counter index.
                def parity_of(t: int) -> np.ndarray:
                    return (last_offset + t * total_words) % 2
            else:
                writes_per_row = packed.rows_writes().astype(np.int64)

                def parity_of(t: int) -> np.ndarray:
                    prior = t * writes_per_row + (writes_per_row - 1)
                    return prior % 2

            def last_bits(t: int) -> np.ndarray:
                parity = parity_of(t)[:, None]
                return np.where(parity == 1, 1.0 - last_raw, last_raw)
        elif isinstance(policy, BarrelShifterPolicy):
            column = np.arange(word_bits, dtype=np.int64)

            def last_bits(t: int) -> np.ndarray:
                shift = np.where(written,
                                 (last_offset + t * total_words) % word_bits, 0)
                index = (column[None, :] + shift[:, None]) % word_bits
                return np.take_along_axis(last_raw, index, axis=1)
        elif isinstance(policy, DnnLifePolicy):
            bias = policy.controller.trbg.nominal_bias
            balancer = policy.controller.bias_balancer
            num_blocks = packed.num_blocks

            def last_bits(t: int) -> np.ndarray:
                if balancer is None:
                    inverted = np.full(rows, bias)
                else:
                    register = (t * num_blocks + last_block + 1) % balancer.period
                    phase_one = (register >> (balancer.num_bits - 1)) & 0x1
                    inverted = np.where(phase_one == 1, 1.0 - bias, bias)
                inverted = inverted[:, None]
                return last_raw * (1.0 - inverted) + (1.0 - last_raw) * inverted
        else:
            raise NotImplementedError(
                f"no last-bits fast path for policy type {type(policy).__name__}; "
                "use ExplicitAgingSimulator instead")
        return last_bits, written

    # -- dispatch ---------------------------------------------------------- #
    def _simulate_duty(self) -> np.ndarray:
        policy = self.policy
        if self.engine == "packed":
            kernel = self._packed_kernel(policy)
            if self.leveler is None:
                numerator, writes = kernel(0, self.num_inferences)
                return _duty_from_counts(numerator, writes)
            return self._packed_with_leveling(kernel)
        if isinstance(policy, NoMitigationPolicy):
            return self._blockwise_no_mitigation()
        if isinstance(policy, PeriodicInversionPolicy):
            return self._blockwise_periodic_inversion(policy)
        if isinstance(policy, BarrelShifterPolicy):
            return self._blockwise_barrel_shifter(policy)
        if isinstance(policy, DnnLifePolicy):
            return self._blockwise_dnn_life(policy)
        raise NotImplementedError(
            f"no fast path for policy type {type(policy).__name__}; "
            "use ExplicitAgingSimulator instead")

    def _packed_kernel(self, policy: MitigationPolicy) -> PackedSpanKernel:
        """Resolve the policy's closed-form counts kernel.

        A kernel is a :class:`PackedSpanKernel`: callable as
        ``counts(start_inference, n) -> (numerator, writes)`` returning the
        per-logical-cell ones numerator and per-row write denominator
        accumulated over inferences ``[start, start + n)``, and (for the
        deterministic policies) exposing the batched
        :meth:`PackedSpanKernel.counts_batch` decomposition over whole span
        tables.  The heavy tensor reductions happen once in the factory; each
        call is a cheap combination, which is what lets the leveling driver
        evaluate many constant-mapping spans without re-reducing the packed
        tensor.
        """
        if isinstance(policy, NoMitigationPolicy):
            return self._packed_no_mitigation_kernel()
        if isinstance(policy, PeriodicInversionPolicy):
            return self._packed_periodic_inversion_kernel(policy)
        if isinstance(policy, BarrelShifterPolicy):
            return self._packed_barrel_shifter_kernel(policy)
        if isinstance(policy, DnnLifePolicy):
            return self._packed_dnn_life_kernel(policy)
        raise NotImplementedError(
            f"no fast path for policy type {type(policy).__name__}; "
            "use ExplicitAgingSimulator instead")

    def _packed_with_leveling(self, kernel: PackedSpanKernel) -> np.ndarray:
        """Compose the counts kernel with the leveler's permutation spans.

        The batched fast path: the leveler's :meth:`~repro.leveling.remap.WearLeveler.span_tables`
        chunks feed a :class:`~repro.core.span_compose.SpanComposer`, which
        collapses the whole composition — per-region rotation spans and
        explicit permutation chunks alike — into a constant number of NumPy
        passes, bit-identically to the iterative span walk.  Feedback-driven
        levelers observe the accumulated physical stress between chunks, from
        the composer's ``(rows,)`` running totals.  Kernels without a batched
        form (the stochastic DNN-Life policy) keep the legacy per-span loop.
        """
        from repro.leveling.remap import mean_duty_from_row_counts

        if not kernel.supports_batch:
            return self._packed_with_leveling_loop(kernel)
        packed = self._packed()
        rows, word_bits = packed.geometry.rows, packed.word_bits
        leveler = self.leveler
        leveler.reset()
        composer = SpanComposer(rows, word_bits, leveler.region_rows,
                                track_feedback=leveler.uses_feedback)
        for table in leveler.span_tables(self.num_inferences):
            if not table.num_spans:
                continue
            composer.add_table(
                table, kernel.counts_batch(table.starts, table.lengths))
            if leveler.uses_feedback:
                row_ones, row_writes = composer.row_totals()
                leveler.observe(
                    int(table.starts[-1] + table.lengths[-1]),
                    mean_duty_from_row_counts(row_ones,
                                              row_writes * float(word_bits)))
        ones, writes = composer.finalize()
        return _duty_from_counts(ones, writes)

    def _packed_with_leveling_loop(self, kernel: PackedSpanKernel) -> np.ndarray:
        """Per-span reference composition (and the stochastic-kernel path).

        Each constant-mapping span contributes its closed-form logical counts,
        gathered into physical rows through the span's permutation — one fancy
        row-gather per span, never a per-block Python loop.  Feedback-driven
        levelers observe the accumulated physical stress at span boundaries.
        Kept verbatim as the RNG-draw-order-preserving path for DNN-Life and
        as the cross-check reference for the batched composition.
        """
        from repro.leveling.remap import mean_duty_per_row

        packed = self._packed()
        rows, word_bits = packed.geometry.rows, packed.word_bits
        leveler = self.leveler
        leveler.reset()
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.float64)
        for start, length in leveler.spans(self.num_inferences):
            permutation = leveler.permutation(start)
            span_ones, span_writes = kernel(start, length)
            ones[permutation] += span_ones
            writes[permutation] += span_writes
            if leveler.uses_feedback:
                leveler.observe(start + length,
                                mean_duty_per_row(ones, writes * float(word_bits)))
        return _duty_from_counts(ones, writes)

    def _geometry(self) -> Tuple[int, int, int]:
        geometry = self.scheduler.geometry
        return geometry.rows, geometry.word_bits, self.scheduler.words_per_block

    # ------------------------------------------------------------------ #
    # Packed engine: whole-tensor kernels over the PackedBitTensor
    # ------------------------------------------------------------------ #
    def _packed(self) -> PackedBitTensor:
        """The stream's packed bit tensor (shared via the stream's cache)."""
        if self._packed_tensor is None:
            from repro.accelerator.scheduler import packed_bit_tensor

            packed = packed_bit_tensor(self.scheduler)
            rows = self.scheduler.geometry.rows
            if packed.words_per_block * packed.fifo_depth_tiles != rows:
                raise ValueError(
                    f"packed tensor covers {packed.words_per_block} words x "
                    f"{packed.fifo_depth_tiles} tiles but the memory has {rows} rows")
            self._packed_tensor = packed
        return self._packed_tensor

    def _packed_no_mitigation_kernel(self) -> PackedSpanKernel:
        packed = self._packed()
        ones = packed.rows_ones()
        writes = packed.rows_writes()

        def counts(start: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
            return ones * n, writes * n

        # Batched form: one channel, coefficient = span length.
        bases = [np.ascontiguousarray(ones, dtype=np.float64)]
        row_bases = [bases[0].sum(axis=1)]
        writes_base = np.ascontiguousarray(writes, dtype=np.float64)

        def batch(starts: np.ndarray, lengths: np.ndarray) -> BatchedCounts:
            return BatchedCounts(bases, lengths.astype(np.float64)[None, :],
                                 writes_base, row_bases)

        return PackedSpanKernel(counts, batch)

    def _packed_periodic_inversion_kernel(
            self, policy: PeriodicInversionPolicy) -> PackedSpanKernel:
        packed = self._packed()
        rows, word_bits = packed.geometry.rows, packed.word_bits
        valid = packed.valid_mask()
        # Inversion parity of write (block b, word w) in inference t is
        # P(b, w) + t * d (mod 2): P is the base parity in the first inference
        # and d the per-inference drift of the policy's toggle counter(s).
        # P decomposes into a per-block parity class plus (for the "write"
        # granularity) an alternation along the word index, so the tensor is
        # reduced once, partitioned by block class — no per-word weighting.
        if policy.granularity == "write":
            # One global word-write counter: P = (block's start count + w) % 2.
            block_class = (packed.word_offsets % 2).astype(np.int64)
            alternates_within_block = True
        else:
            # One counter per memory row: P = number of earlier writes to the
            # row within the inference.  With only the stream's final block
            # allowed to be short, that is the block's ordinal in its region.
            block_class = np.zeros(packed.num_blocks, dtype=np.int64)
            for region in range(packed.fifo_depth_tiles):
                blocks = packed.region_blocks(region)
                if blocks.size and np.any(packed.valid_words[blocks[:-1]]
                                          < packed.words_per_block):
                    raise NotImplementedError(
                        "per-location inversion requires at most the final "
                        "block of the stream to be short")
                block_class[blocks] = np.arange(blocks.size) % 2
            alternates_within_block = False

        # One class sum per region is derived by subtraction from the cached
        # whole-region sums, so the policy costs a single pass over the
        # minority class — zero extra passes when a region is single-class.
        ones = packed.rows_ones()
        writes = packed.rows_writes()
        ones_by_class = np.zeros((2, rows, word_bits), dtype=np.float64)
        writes_by_class = np.zeros((2, rows), dtype=np.float64)
        for row_slice, indexer in packed.region_indexers():
            blocks = np.arange(packed.num_blocks)[indexer]
            if not blocks.size:
                continue
            classes = block_class[blocks]
            minority = 0 if np.count_nonzero(classes) * 2 >= blocks.size else 1
            selected = as_stride_indexer(blocks[classes == minority])
            view = packed.bits[selected]
            if view.shape[0]:
                ones_by_class[minority][row_slice] = block_axis_sum(view, max_value=1)
                writes_by_class[minority][row_slice] = block_axis_sum(valid[selected])
            majority = 1 - minority
            ones_by_class[majority][row_slice] = (
                ones[row_slice] - ones_by_class[minority][row_slice])
            writes_by_class[majority][row_slice] = (
                writes[row_slice] - writes_by_class[minority][row_slice])
        if alternates_within_block:
            # Word w of a class-c block has parity (c + w) % 2: odd-parity
            # writes come from the *other* class on even word offsets.
            word_parity = (np.arange(packed.words_per_block, dtype=np.int64) % 2)
            word_parity = np.tile(word_parity, packed.fifo_depth_tiles)
            odd_is_class = np.where(word_parity == 0, 1, 0)
        else:
            odd_is_class = np.ones(rows, dtype=np.int64)
        take = np.arange(rows)
        ones_odd = ones_by_class[odd_is_class, take]
        writes_odd = writes_by_class[odd_is_class, take]
        # Stored value: plain when the parity is even, inverted when odd:
        # base = (ones - ones_odd) + (writes_odd - ones_odd).
        base = ones - 2.0 * ones_odd
        base += writes_odd[:, None]

        if policy.granularity == "write":
            drift = packed.total_words % 2
            drift_per_row = None if drift == 0 else np.ones(rows, dtype=np.int64)
        else:
            drift_per_row = writes.astype(np.int64) % 2
            if not drift_per_row.any():
                drift_per_row = None
        # flipped = (writes - base): every write's stored value inverts.
        flipped = None if drift_per_row is None else writes[:, None] - base

        def counts(start: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
            if drift_per_row is None:
                return base * n, writes * n
            # Inference t adds a parity offset of (t * d_r) mod 2, so a row
            # with drift sees the flipped pattern on every odd t in
            # [start, start + n).
            odd = (start + n) // 2 - start // 2
            odd_per_row = (drift_per_row * odd)[:, None]
            numerator = base * (n - odd_per_row) + flipped * odd_per_row
            return numerator, writes * n

        # Batched form.  Rewriting the span counts as
        #   base * (n - d_r * odd) + flipped * (d_r * odd)
        #     = n * base + odd * [(flipped - base) * d_r]
        # exposes two fixed channels with per-span scalar coefficients
        # (n, odd); every term is an exact integer in float64, so the
        # regrouping is bitwise-neutral.
        bases = [np.ascontiguousarray(base, dtype=np.float64)]
        if drift_per_row is not None:
            drifted = (flipped - base) * drift_per_row[:, None].astype(np.float64)
            bases.append(np.ascontiguousarray(drifted, dtype=np.float64))
        row_bases = [channel.sum(axis=1) for channel in bases]
        writes_base = np.ascontiguousarray(writes, dtype=np.float64)

        def batch(starts: np.ndarray, lengths: np.ndarray) -> BatchedCounts:
            coeff_rows = [lengths.astype(np.float64)]
            if drift_per_row is not None:
                odd = (starts + lengths) // 2 - starts // 2
                coeff_rows.append(odd.astype(np.float64))
            return BatchedCounts(bases, np.stack(coeff_rows), writes_base,
                                 row_bases)

        return PackedSpanKernel(counts, batch)

    def _packed_barrel_shifter_kernel(
            self, policy: BarrelShifterPolicy) -> PackedSpanKernel:
        packed = self._packed()
        word_bits = packed.word_bits
        words = packed.words_per_block
        # The write counter rotates every word by its cumulative index mod n;
        # one inference advances it by the total word count, so inference t
        # adds an extra rotation of (t * drift) mod n.
        drift = packed.total_words % word_bits
        # Align each block's bits to its base rotation and accumulate per row.
        # Blocks sharing (region, start-offset mod n) see identical per-word
        # rotations, so they are reduced together; a padded stream whose block
        # size is a multiple of the word width has exactly one such class.
        aligned = np.zeros((packed.geometry.rows, word_bits), dtype=np.float64)
        offset_class = (packed.word_offsets % word_bits).astype(np.int64)
        word_index = np.arange(words, dtype=np.int64)
        column = np.arange(word_bits, dtype=np.int64)
        region_ones = packed.rows_ones()
        for row_slice, indexer in packed.region_indexers():
            blocks = np.arange(packed.num_blocks)[indexer]
            if not blocks.size:
                continue
            offsets = offset_class[blocks]
            distinct = np.unique(offsets)
            # The largest class's sum is derived by subtracting the others
            # from the cached region total: zero extra passes for the common
            # single-class (padded, word-aligned) stream.
            largest = distinct[np.argmax([np.count_nonzero(offsets == o)
                                          for o in distinct])]
            class_sums = {}
            if distinct.size == 1:
                class_sums[int(largest)] = region_ones[row_slice]
            else:
                remainder = region_ones[row_slice].copy()
                for offset in distinct:
                    if offset == largest:
                        continue
                    class_sum = block_axis_sum(
                        packed.bits[as_stride_indexer(blocks[offsets == offset])],
                        max_value=1)
                    class_sums[int(offset)] = class_sum
                    remainder -= class_sum
                class_sums[int(largest)] = remainder
            for offset, class_sum in class_sums.items():
                index = (column[None, :] + offset + word_index[:, None]) % word_bits
                aligned[row_slice] += np.take_along_axis(class_sum, index, axis=1)
        writes = packed.rows_writes()

        def counts(start: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
            if drift == 0:
                # Every inference repeats the same rotations — no correlation.
                return aligned * n, writes * n
            # Count how many of the span's inferences land on each extra
            # rotation k, then fold them in via a circular correlation with
            # the rotation histogram.
            extra = np.bincount(((start + np.arange(n, dtype=np.int64)) * drift)
                                % word_bits, minlength=word_bits).astype(np.float64)
            correlation = extra[(column[:, None] - column[None, :]) % word_bits]
            return aligned @ correlation, writes * n

        # Batched form.  The correlation fold is a weighted sum of the
        # word_bits column-rolls of ``aligned``: one channel per extra
        # rotation j, with coefficient |{t in span : (t * drift) % word_bits
        # == j}|.  The per-rotation counts are closed-form over the schedule's
        # period word_bits/gcd(drift, word_bits) via a prefix-count table, so
        # no per-inference work remains; integer exactness again makes the
        # regrouping (rolls vs matmul) bitwise-neutral.
        writes_base = np.ascontiguousarray(writes, dtype=np.float64)
        if drift == 0:
            bases = [np.ascontiguousarray(aligned)]
            row_bases = [bases[0].sum(axis=1)]

            def batch(starts: np.ndarray, lengths: np.ndarray) -> BatchedCounts:
                return BatchedCounts(bases, lengths.astype(np.float64)[None, :],
                                     writes_base, row_bases)
        else:
            period = word_bits // int(np.gcd(drift, word_bits))
            hits = np.zeros((period, word_bits), dtype=np.int64)
            hits[np.arange(period),
                 (np.arange(period, dtype=np.int64) * drift) % word_bits] = 1
            prefix = np.zeros((period + 1, word_bits), dtype=np.int64)
            np.cumsum(hits, axis=0, out=prefix[1:])
            rotations = np.flatnonzero(prefix[period])
            bases = [np.ascontiguousarray(np.roll(aligned, -int(j), axis=1))
                     for j in rotations]
            row_bases = [channel.sum(axis=1) for channel in bases]

            def rotation_counts(epochs: np.ndarray) -> np.ndarray:
                # F[t, j]: rotations j seen by inferences [0, t).
                full = (epochs // period)[:, None] * prefix[period][None, :]
                return full + prefix[epochs % period]

            def batch(starts: np.ndarray, lengths: np.ndarray) -> BatchedCounts:
                spans = (rotation_counts(starts + lengths)
                         - rotation_counts(starts))[:, rotations]
                return BatchedCounts(bases, spans.T.astype(np.float64),
                                     writes_base, row_bases)

        return PackedSpanKernel(counts, batch)

    def _packed_dnn_life_kernel(self, policy: DnnLifePolicy) -> PackedSpanKernel:
        packed = self._packed()
        num_blocks = packed.num_blocks
        words = packed.words_per_block
        bias = policy.controller.trbg.nominal_bias
        balancer = policy.controller.bias_balancer
        group = policy.words_per_enable
        num_groups = (words + group - 1) // group
        valid = packed.valid_mask()
        ones = packed.rows_ones()
        writes = packed.rows_writes()
        rng = self.rng

        def counts(start: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
            # Deterministic bias-balancing phase of every (inference, block)
            # pair in the span: the register ticks once per block, its MSB is
            # the inversion phase.
            if balancer is not None:
                global_index = ((start + np.arange(n))[:, None] * num_blocks
                                + np.arange(num_blocks)[None, :])
                register = (global_index + 1) % balancer.period
                phases = (register >> (balancer.num_bits - 1)) & 0x1
                inferences_in_phase_one = phases.sum(axis=0)
            else:
                inferences_in_phase_one = np.zeros(num_blocks, dtype=np.int64)
            t_one = inferences_in_phase_one

            # Number of inferences (out of the span's n) in which each group's
            # enable bit comes out as 1 — one binomial draw per (block, group).
            # An unbiased TRBG is phase-independent (B(t0, .5) + B(t1, .5) is
            # B(T, .5)), and biased ones share t_one across at most one
            # balancer period of distinct values, so all draws run through
            # numpy's scalar-n binomial fast path.
            if bias == 0.5:
                group_enables = _unbiased_binomial(rng, n, (num_blocks, num_groups))
            else:
                group_enables = np.empty((num_blocks, num_groups), dtype=np.int64)
                for phase_count in np.unique(t_one):
                    selected = t_one == phase_count
                    count = (int(selected.sum()), num_groups)
                    group_enables[selected] = (
                        rng.binomial(int(n - phase_count), bias, size=count)
                        + rng.binomial(int(phase_count), 1.0 - bias, size=count))
            if n <= 255:
                group_enables = group_enables.astype(np.uint8, copy=False)
            word_enables = np.repeat(group_enables, group, axis=1)[:, :words]
            word_enables = word_enables * valid

            enables_total = packed.rows_sum(word_enables, max_value=n)
            crossed = packed.rows_sum(packed.bits, weights=word_enables, max_value=1)
            numerator = (ones * n + enables_total[:, None] - 2.0 * crossed)
            return numerator, writes * n

        # No batched form: the TRBG draws fresh randomness per span, in call
        # order, so the leveled composition keeps the per-span loop (which
        # preserves the RNG draw sequence the blockwise/packed cross-checks
        # and golden results pin down).
        return PackedSpanKernel(counts)

    # ------------------------------------------------------------------ #
    # Blockwise engine: the legacy per-block streaming kernels
    # ------------------------------------------------------------------ #
    def _iter_block_bits(self) -> Iterator[Tuple[WeightBlock, np.ndarray, slice]]:
        """Yield (block, bit matrix, row slice) for one inference."""
        rows, word_bits, words_per_block = self._geometry()
        for block in self.scheduler.iter_blocks():
            if block.num_words != words_per_block:
                raise ValueError(
                    "the blockwise simulator requires memory-sized (padded) "
                    "blocks; rebuild the scheduler with pad_final_block=True "
                    "or use the packed engine")
            bits = unpack_bits(block.words, word_bits)
            start_row = block.region * words_per_block
            yield block, bits, slice(start_row, start_row + words_per_block)

    def _blockwise_no_mitigation(self) -> np.ndarray:
        rows, word_bits, _ = self._geometry()
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.int64)
        for _, bits, row_slice in self._iter_block_bits():
            ones[row_slice] += bits
            writes[row_slice] += 1
        return _duty_from_counts(ones, writes)

    def _blockwise_periodic_inversion(self, policy: PeriodicInversionPolicy) -> np.ndarray:
        rows, word_bits, words_per_block = self._geometry()
        depth = self.scheduler.fifo_depth_tiles
        num_blocks = self.scheduler.num_blocks
        # Sums of raw bits split by the parity class of each block: for
        # granularity "write" the class is the parity of the block's first
        # word-write index (block_index * words_per_block); for "location" it
        # is the parity of the block's ordinal within its memory region.
        sums = {0: np.zeros((rows, word_bits), dtype=np.float64),
                1: np.zeros((rows, word_bits), dtype=np.float64)}
        counts = {0: np.zeros(rows, dtype=np.int64), 1: np.zeros(rows, dtype=np.int64)}
        for block, bits, row_slice in self._iter_block_bits():
            if policy.granularity == "write":
                parity_class = (block.index * words_per_block) % 2
            else:
                parity_class = (block.index // depth) % 2
            sums[parity_class][row_slice] += bits
            counts[parity_class][row_slice] += 1
        writes = counts[0] + counts[1]

        # Inversion parity of a word = parity_class + row_offset (granularity
        # "write" only) + per-inference drift offset.
        if policy.granularity == "write":
            # The parity a word sees depends on its offset within the block,
            # i.e. the row index *within its memory region*.
            row_parity = ((np.arange(rows) % words_per_block) % 2)[:, None]
            drift = (num_blocks * words_per_block) % 2
        else:
            row_parity = np.zeros((rows, 1), dtype=np.int64)
            # For per-location inversion the drift depends on the number of
            # writes each row receives per inference.
            drift = None

        def pattern(offset: np.ndarray) -> np.ndarray:
            """Duty numerator when the global parity offset is ``offset``."""
            # A block of class c is stored inverted when (c + offset) is odd.
            offset = np.broadcast_to(offset, (rows, 1))
            class0_inverted = (offset % 2) == 1
            class1_inverted = ((1 + offset) % 2) == 1
            numerator = np.where(class0_inverted,
                                 counts[0][:, None] - sums[0], sums[0])
            numerator = numerator + np.where(class1_inverted,
                                             counts[1][:, None] - sums[1], sums[1])
            return numerator

        if policy.granularity == "write":
            if drift == 0:
                numerator = pattern(row_parity) * self.num_inferences
            else:
                t_even = (self.num_inferences + 1) // 2
                t_odd = self.num_inferences // 2
                numerator = (pattern(row_parity) * t_even
                             + pattern(row_parity + 1) * t_odd)
        else:
            writes_per_row = writes  # K_r: writes per row per inference
            drift_per_row = (writes_per_row % 2)[:, None]
            t_even = (self.num_inferences + 1) // 2
            t_odd = self.num_inferences - t_even
            numerator_no_drift = pattern(np.zeros((rows, 1), dtype=np.int64))
            numerator_drift = (pattern(np.zeros((rows, 1), dtype=np.int64)) * t_even
                               + pattern(np.ones((rows, 1), dtype=np.int64)) * t_odd)
            numerator = np.where(drift_per_row == 0,
                                 numerator_no_drift * self.num_inferences,
                                 numerator_drift)
        duty = _duty_from_counts(numerator, writes * self.num_inferences)
        return duty

    def _blockwise_barrel_shifter(self, policy: BarrelShifterPolicy) -> np.ndarray:
        rows, word_bits, words_per_block = self._geometry()
        if words_per_block % word_bits != 0:
            raise NotImplementedError(
                "the blockwise barrel-shifter path requires the block size to "
                "be a multiple of the word width; use the packed engine or "
                "ExplicitAgingSimulator for this configuration")
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.int64)
        for _, bits, row_slice in self._iter_block_bits():
            ones[row_slice] += bits
            writes[row_slice] += 1
        # Every word written to row r is rotated left by (r mod n); the bit
        # stored in column p therefore originates from column (p + r) mod n.
        row_shift = np.arange(rows) % word_bits
        column = (np.arange(word_bits)[None, :] + row_shift[:, None]) % word_bits
        rotated = np.take_along_axis(ones, column, axis=1)
        return _duty_from_counts(rotated, writes)

    def _blockwise_dnn_life(self, policy: DnnLifePolicy) -> np.ndarray:
        rows, word_bits, words_per_block = self._geometry()
        num_blocks = self.scheduler.num_blocks
        num_inferences = self.num_inferences
        bias = policy.controller.trbg.nominal_bias
        balancer = policy.controller.bias_balancer

        # Deterministic bias-balancing phase of every (inference, block) pair:
        # the register ticks once per block, its MSB is the inversion phase.
        if balancer is not None:
            global_index = (np.arange(num_inferences)[:, None] * num_blocks
                            + np.arange(num_blocks)[None, :])
            counts = (global_index + 1) % balancer.period
            phases = (counts >> (balancer.num_bits - 1)) & 0x1
            inferences_in_phase_one = phases.sum(axis=0)
        else:
            inferences_in_phase_one = np.zeros(num_blocks, dtype=np.int64)

        group = policy.words_per_enable
        ones = np.zeros((rows, word_bits), dtype=np.float64)
        enables_total = np.zeros(rows, dtype=np.float64)
        crossed = np.zeros((rows, word_bits), dtype=np.float64)
        writes = np.zeros(rows, dtype=np.int64)
        for block, bits, row_slice in self._iter_block_bits():
            t_one = int(inferences_in_phase_one[block.index])
            t_zero = num_inferences - t_one
            num_groups = (words_per_block + group - 1) // group
            # Number of inferences (out of num_inferences) in which this
            # group's enable bit comes out as 1.
            group_enables = (self.rng.binomial(t_zero, bias, size=num_groups)
                             + self.rng.binomial(t_one, 1.0 - bias, size=num_groups))
            word_enables = np.repeat(group_enables, group)[:words_per_block].astype(np.float64)
            ones[row_slice] += bits
            enables_total[row_slice] += word_enables
            crossed[row_slice] += bits * word_enables[:, None]
            writes[row_slice] += 1
        numerator = (ones * num_inferences + enables_total[:, None] - 2.0 * crossed)
        return _duty_from_counts(numerator, writes * num_inferences)


def _describe_with_leveling(policy: MitigationPolicy,
                            leveler: Optional["WearLeveler"]) -> Dict[str, object]:
    """Policy description, extended with the wear leveler's when one is active."""
    description = dict(policy.describe())
    if leveler is not None:
        description["leveling"] = leveler.describe()
    return description


def _unbiased_binomial(rng: np.random.Generator, trials: int,
                       size: Tuple[int, ...]) -> np.ndarray:
    """Draw Binomial(trials, 0.5) samples through the fastest available path.

    For p = 1/2 a binomial sample is exactly the popcount of ``trials``
    uniform random bits, which numpy >= 2.0 computes ~40% faster than its
    binomial sampler; older numpy falls back to the scalar-n binomial.
    """
    if hasattr(np, "bitwise_count") and 0 < trials <= 512:
        full_words, tail_bits = divmod(trials, 64)
        draws = full_words + (1 if tail_bits else 0)
        words = rng.integers(0, np.iinfo(np.uint64).max, size=size + (draws,),
                             dtype=np.uint64, endpoint=True)
        if tail_bits:
            words[..., -1] &= np.uint64((1 << tail_bits) - 1)
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return rng.binomial(trials, 0.5, size=size)


#: Tolerance above 1.0 (and below 0.0) past which a computed duty-cycle is
#: treated as a numerator-accounting bug rather than float round-off.
_DUTY_TOLERANCE = 1e-9


def _duty_from_counts(ones: np.ndarray, writes: np.ndarray) -> np.ndarray:
    """Duty-cycle = accumulated ones / accumulated writes; unwritten rows hold 0.

    Every closed-form kernel accounts integral (one, write) counts, so a
    ratio outside ``[0, 1]`` can only come from a numerator-accounting bug.
    Such values are reported loudly instead of being clipped away silently;
    the final clip only absorbs genuine float round-off within
    :data:`_DUTY_TOLERANCE`.
    """
    writes_matrix = np.asarray(writes, dtype=np.float64)
    if writes_matrix.ndim == 1:
        writes_matrix = writes_matrix[:, None]
    with np.errstate(invalid="ignore", divide="ignore"):
        duty = np.where(writes_matrix > 0, ones / writes_matrix, 0.0)
    if duty.size:
        low, high = float(duty.min()), float(duty.max())
        if high > 1.0 + _DUTY_TOLERANCE or low < -_DUTY_TOLERANCE:
            out_of_range = int(np.count_nonzero((duty > 1.0 + _DUTY_TOLERANCE)
                                                | (duty < -_DUTY_TOLERANCE)))
            raise FloatingPointError(
                f"duty-cycle accounting produced {out_of_range} value(s) outside "
                f"[0, 1] (min {low!r}, max {high!r}); this indicates a numerator "
                "bug in a closed-form kernel, not float round-off")
    return np.clip(duty, 0.0, 1.0)
